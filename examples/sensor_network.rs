//! Sensor/mobile-network scenario (Section 1.1.4, random geometric graphs).
//!
//! Random geometric graphs have no induced 6-star, hence a spanning forest of
//! degree at most 6 (Δ* ≤ 6) regardless of size, so the paper's algorithm achieves
//! additive error Õ(ln ln n / ε) — essentially independent of n. This example
//! verifies the structural fact and reports the error as n grows.
//!
//! Run with: `cargo run --release --example sensor_network`

use ccdp::prelude::*;
use forest::delta_star_upper_bound;
use stars::induced_star_number;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let epsilon = 1.0;
    println!("Random geometric graphs (radius chosen so the graph is fragmented), ε = {epsilon}");
    println!(
        "\n{:>6} {:>8} {:>8} {:>6} {:>10} {:>12} {:>12}",
        "n", "edges", "f_cc", "s(G)", "Δ* bound", "mean error", "rel. error"
    );
    for n in [250usize, 500, 1000, 2000] {
        let radius = 0.6 / (n as f64).sqrt();
        let graph = generators::random_geometric(n, radius, &mut rng);
        let truth = graph.num_connected_components() as f64;
        let star = induced_star_number(&graph);
        let delta_ub = delta_star_upper_bound(&graph);
        let estimator = PrivateCcEstimator::from_config(EstimatorConfig::new(epsilon))?;
        let trials = 5;
        let mut err = 0.0;
        for _ in 0..trials {
            err += (estimator.estimate(&graph, &mut rng)?.value() - truth).abs();
        }
        err /= trials as f64;
        println!(
            "{:>6} {:>8} {:>8} {:>6} {:>10} {:>12.1} {:>12.4}",
            n,
            graph.num_edges(),
            truth,
            star.value(),
            delta_ub,
            err,
            err / truth
        );
    }
    println!("\ns(G) ≤ 5 and the spanning-forest degree bound stays ≤ 6 for every size,");
    println!("so the additive error does not grow with n (Theorem 1.3 + Section 1.1.4).");
    Ok(())
}
