//! Estimating the number of classes in a population (Goodman 1949; Syrian-conflict
//! entity resolution, Chen–Shrivastava–Steorts 2018) under node-privacy.
//!
//! Duplicate records of the same underlying entity are linked by a match graph;
//! the number of distinct entities is the number of connected components. Each
//! record belongs to a person, so node-privacy is the right protection. This
//! example builds a synthetic match graph with skewed cluster sizes and compares
//! the private estimate of the number of entities to the truth across ε.
//!
//! Run with: `cargo run --release --example population_classes`

use ccdp::prelude::*;

/// Builds a synthetic record-linkage graph: clusters of duplicate records with a
/// skewed size distribution, each cluster internally connected by a sparse chain
/// plus a few extra matches.
fn synthetic_match_graph(num_entities: usize, rng: &mut StdRng) -> Graph {
    let mut edges = Vec::new();
    let mut next_vertex = 0usize;
    for _ in 0..num_entities {
        // Cluster sizes follow a skewed distribution: most entities have a single
        // record, a few have many duplicates.
        let size = match rng.gen_range(0..100) {
            0..=59 => 1,
            60..=84 => 2,
            85..=94 => 3,
            95..=98 => 5,
            _ => 8,
        };
        let base = next_vertex;
        next_vertex += size;
        for i in 1..size {
            edges.push((base + i - 1, base + i));
        }
        // A few redundant matches inside larger clusters.
        if size >= 4 {
            edges.push((base, base + size - 1));
            edges.push((base, base + size / 2));
        }
    }
    Graph::from_edges(next_vertex, &edges)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1234);
    let num_entities = 3000;
    let graph = synthetic_match_graph(num_entities, &mut rng);
    let truth = graph.num_connected_components();
    println!(
        "record-linkage graph: {} records, {} match edges, {} true entities",
        graph.num_vertices(),
        graph.num_edges(),
        truth
    );

    println!(
        "\n{:>8} {:>14} {:>14} {:>12}",
        "epsilon", "estimate", "abs error", "rel error"
    );
    for epsilon in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let estimator = PrivateCcEstimator::from_config(EstimatorConfig::new(epsilon))?;
        let trials = 5;
        let mut err = 0.0;
        let mut last = 0.0;
        for _ in 0..trials {
            last = estimator.estimate(&graph, &mut rng)?.value();
            err += (last - truth as f64).abs();
        }
        err /= trials as f64;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>12.4}",
            epsilon,
            last,
            err,
            err / truth as f64
        );
    }
    println!("\nEven at ε = 0.25 the entity count is recovered to within a small fraction,");
    println!("because match-graph clusters have small spanning-forest degree (small Δ*).");
    Ok(())
}
