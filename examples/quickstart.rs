//! Quickstart: release the number of connected components of a graph with
//! node-differential privacy, through the `ccdp` facade.
//!
//! Run with: `cargo run --release --example quickstart`

use ccdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2023);

    // A small synthetic population: 80 family groups (stars of size 3) plus 40
    // isolated individuals -> 120 connected components.
    let graph = generators::planted_star_forest(80, 3, 40);
    let true_cc = graph.num_connected_components();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("true number of connected components: {true_cc}");

    // Release the count with ε = 1 node-differential privacy.
    let estimator = PrivateCcEstimator::from_config(EstimatorConfig::new(1.0))?;
    let release = estimator.estimate(&graph, &mut rng)?;
    println!("ε = 1 node-private estimate:        {:.1}", release.value());

    // Non-private diagnostics exist for experiments, but reading them takes an
    // explicit acknowledgement — they must never be published.
    let diagnostics = release.diagnostics(DiagnosticsAccess::acknowledge_non_private());
    println!(
        "  (GEM selected Δ̂ = {}, Laplace scale = {:.2})",
        diagnostics.selected_delta.unwrap_or(0),
        diagnostics.noise_scale.unwrap_or(f64::NAN),
    );

    // The Lipschitz extensions underlying the algorithm can be evaluated directly.
    println!(
        "\nLipschitz extension family f_Δ(G) (underestimates of f_sf = {}):",
        graph.spanning_forest_size()
    );
    for delta in [1usize, 2, 3, 4, 8] {
        let value = LipschitzExtension::new(delta).evaluate(&graph)?;
        println!("  f_{delta:<2} = {value:.2}");
    }

    Ok(())
}
