//! Quickstart: release the number of connected components of a graph with
//! node-differential privacy.
//!
//! Run with: `cargo run --release -p ccdp-core --example quickstart`

use ccdp_core::{LipschitzExtension, PrivateCcEstimator};
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2023);

    // A small synthetic population: 80 family groups (stars of size 3) plus 40
    // isolated individuals -> 120 connected components.
    let graph = generators::planted_star_forest(80, 3, 40);
    let true_cc = graph.num_connected_components();
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());
    println!("true number of connected components: {true_cc}");

    // Release the count with ε = 1 node-differential privacy.
    let estimator = PrivateCcEstimator::new(1.0);
    let released = estimator.estimate(&graph, &mut rng)?;
    println!("ε = 1 node-private estimate:        {:.1}", released.value);
    println!(
        "  (GEM selected Δ̂ = {}, Laplace scale = {:.2})",
        released.spanning_forest.selected_delta, released.spanning_forest.noise_scale
    );

    // The Lipschitz extensions underlying the algorithm can be evaluated directly.
    println!("\nLipschitz extension family f_Δ(G) (underestimates of f_sf = {}):",
        graph.spanning_forest_size());
    for delta in [1usize, 2, 3, 4, 8] {
        let value = LipschitzExtension::new(delta).evaluate(&graph)?;
        println!("  f_{delta:<2} = {value:.2}");
    }

    Ok(())
}
