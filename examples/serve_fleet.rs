//! Drive the serving tier with the deterministic CI load spec.
//!
//! Runs 64 closed-loop clients against a 4-worker server holding an 8-graph
//! fleet, with 4 tenants metering their ε quotas through the shared budget
//! ledger (one of them, `burst`, is deliberately under-provisioned so typed
//! budget refusals show up in the mix). Prints the throughput / latency /
//! cache summary and, with `--json PATH`, writes the metrics JSON the CI
//! smoke job archives as `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release --example serve_fleet
//! cargo run --release --example serve_fleet -- --requests 512 --clients 32
//! cargo run --release --example serve_fleet -- --json BENCH_serve.json
//! ```

use ccdp::prelude::*;

fn main() {
    let mut spec = LoadSpec::ci_smoke();
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                spec.requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--clients" => {
                spec.clients = value(i).parse().expect("--clients takes a count");
                i += 2;
            }
            "--workers" => {
                let workers = value(i).parse().expect("--workers takes a count");
                spec.server = spec.server.clone().with_workers(workers);
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}` (try --requests/--clients/--workers/--json)"),
        }
    }

    println!(
        "serve_fleet: {} requests from {} clients over {} graphs, {} tenants",
        spec.requests,
        spec.clients,
        spec.graphs.len(),
        spec.tenants.len()
    );
    let report = spec.run();

    println!();
    println!("  completed            {:>8}", report.completed);
    println!("  budget refusals      {:>8}", report.budget_refusals);
    println!("  failed               {:>8}", report.failed);
    println!("  backpressure retries {:>8}", report.backpressure_retries);
    println!(
        "  wall clock           {:>8.3} s",
        report.wall_clock.as_secs_f64()
    );
    println!(
        "  throughput           {:>8.1} req/s",
        report.throughput_rps
    );
    println!(
        "  latency p50 / p99    {:>8.2} / {:.2} ms",
        report.snapshot.p50_latency.as_secs_f64() * 1e3,
        report.snapshot.p99_latency.as_secs_f64() * 1e3
    );
    println!(
        "  peak queue depth     {:>8}",
        report.snapshot.peak_queue_depth
    );
    println!(
        "  cache                {:>8} hits, {} coalesced, {} misses, {} evictions",
        report.cache.hits, report.cache.coalesced, report.cache.misses, report.cache.evictions
    );
    println!(
        "  cache hit rate       {:>8.1} %",
        report.cache_hit_rate() * 100.0
    );

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("writing the JSON report");
        println!("\nwrote {path}");
    }

    assert!(report.is_complete(), "some requests were never answered");
    assert_eq!(report.failed, 0, "no request may fail outright");
    assert!(
        report.cache_hit_rate() > 0.5,
        "repeated-graph mix must be served mostly from cache (got {:.1} %)",
        report.cache_hit_rate() * 100.0
    );
}
