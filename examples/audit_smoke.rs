//! Audit-tier acceptance smoke: the budget audit journal, replay equality,
//! and burn-rate alerting, exercised over real sockets and gated on the
//! journal's own overhead.
//!
//! Runs a deliberately refusal-heavy wire workload (quotas shrunk far below
//! what the schedule wants to spend) against a listener with the audit
//! journal and a hair-trigger burn-rate SLO, then asserts the invariants
//! the CI `audit-smoke` job relies on:
//!
//! * **replay equality**: for every tenant, `GET /audit/{tenant}` reports
//!   `replay.matches == true` — folding the journaled events reconstructs
//!   the live [`BudgetLedger`] accountant bit-for-bit — and the ledger's
//!   own bitwise verifier accepts the journal for all tenants at once;
//! * **refusals are audited**: the workload drives real refusals and every
//!   one is visible as a `budget_refusal` event with matching counts;
//! * **the burn-rate alert fires**: the scrape of `GET /slo` evaluates the
//!   hair-trigger spec, at least one `burn_rate` alert fires, and the
//!   alert is retrievable both from `/slo` and as an `slo_alert` event in
//!   the breaching tenant's `GET /audit/{tenant}` stream;
//! * **the JSONL sink is a faithful log**: every event recorded while the
//!   sink was attached is one parseable JSON line;
//! * **the journal stays within its 5% budget**: the serve schedule runs
//!   in-process against one long-lived pool, toggling only the journal
//!   between fine-grained request chunks (the obs-smoke paired-chunk
//!   methodology), and the median per-chunk-pair on/off throughput ratio
//!   must be ≥ 0.95.
//!
//! With `--json PATH`, writes the measurements archived as
//! `BENCH_audit.json` — the ratio in that file is the number the budget is
//! gated on.
//!
//! ```text
//! cargo run --release --example audit_smoke
//! cargo run --release --example audit_smoke -- --requests 512 --json BENCH_audit.json
//! ```

use ccdp::obs::{SloObjective, SloSpec};
use ccdp::prelude::*;
use ccdp::serve::json::JsonValue;
use std::sync::Arc;

/// Overhead passes; the gate takes the median over every pass's
/// per-chunk-pair ratios (see `obs_smoke` for why this shape).
const OVERHEAD_RUNS: usize = 9;
/// Requests per journal toggle: short enough that ambient machine noise
/// lands on both modes of a pair and cancels out of the ratio.
const OVERHEAD_CHUNK: usize = 64;
/// The overhead passes run a longer schedule than the scrape run.
const OVERHEAD_REQUEST_FACTOR: usize = 16;
/// Floor on the journal-on/off throughput ratio.
const MIN_THROUGHPUT_RATIO: f64 = 0.95;

/// Median of a sample set (mutates order).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures the journal throughput ratio on ONE long-lived server,
/// interleaving journal-on and journal-off at [`OVERHEAD_CHUNK`]-request
/// granularity — the paired-chunk construction from `obs_smoke`, with
/// [`AuditJournal::set_enabled`] as the only thing differing between
/// chunks.
fn measure_journal_ratio(spec: &LoadSpec, passes: usize) -> (f64, f64, f64) {
    let mut base = spec.clone();
    base.requests *= OVERHEAD_REQUEST_FACTOR;
    // Fund every tenant far beyond the measurement: refusals are cheaper
    // than releases, and a quota exhausted partway through would flatter
    // whichever mode hit it.
    for t in &mut base.tenants {
        t.quota_epsilon = 1e12;
    }
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    let graph_ids = base.provision(&registry, &ledger);
    let schedule = base.schedule(&graph_ids);
    let server = Server::start(base.server.clone().with_seed(base.seed), registry, ledger);
    let mut pair_ratios: Vec<f64> = Vec::new();
    let run_pass = |parity: usize, pairs: Option<&mut Vec<f64>>| -> (f64, f64) {
        let (mut secs, mut reqs) = ([0.0f64; 2], [0usize; 2]);
        let mut chunk_rps = Vec::with_capacity(schedule.len() / OVERHEAD_CHUNK + 1);
        for (c, chunk) in schedule.chunks(OVERHEAD_CHUNK).enumerate() {
            let journal_on = (c + parity) % 2 == 1;
            server.journal().set_enabled(journal_on);
            let started = std::time::Instant::now();
            for request in chunk {
                let response = server
                    .submit(request.clone())
                    .expect("sequential submissions never overflow the queue")
                    .wait();
                assert!(
                    response.result.is_ok(),
                    "overhead chunk request failed: {:?}",
                    response.result.err()
                );
            }
            let elapsed = started.elapsed().as_secs_f64();
            secs[journal_on as usize] += elapsed;
            reqs[journal_on as usize] += chunk.len();
            chunk_rps.push((journal_on, chunk.len() as f64 / elapsed));
        }
        if let Some(pairs) = pairs {
            for w in chunk_rps.chunks_exact(2) {
                let ((a_on, a_rps), (_, b_rps)) = (w[0], w[1]);
                let (off_rps, on_rps) = if a_on { (b_rps, a_rps) } else { (a_rps, b_rps) };
                pairs.push(on_rps / off_rps);
            }
        }
        (reqs[0] as f64 / secs[0], reqs[1] as f64 / secs[1])
    };
    run_pass(0, None); // warm the family cache so no mode leads evaluations
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for pass in 0..passes {
        let (off_rps, on_rps) = run_pass(pass % 2, Some(&mut pair_ratios));
        println!(
            "pass {pass}: journal off {off_rps:.0} req/s, on {on_rps:.0} req/s, ratio {:.3}",
            on_rps / off_rps
        );
        off.push(off_rps);
        on.push(on_rps);
    }
    (median(&mut off), median(&mut on), median(&mut pair_ratios))
}

fn json_array<'a>(value: &'a JsonValue, key: &str) -> &'a [JsonValue] {
    match value.get(key) {
        Some(JsonValue::Array(items)) => items.as_slice(),
        _ => &[],
    }
}

fn main() {
    let mut spec = WireLoadSpec::ci_smoke();
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                spec.base.requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    // Refusal-heavy: the schedule wants ~requests/tenants * ε per tenant;
    // quotas a quarter of that guarantee every tenant hits its wall.
    let per_tenant_demand =
        spec.base.requests as f64 / spec.base.tenants.len() as f64 * spec.base.epsilon_per_request;
    for t in &mut spec.base.tenants {
        t.quota_epsilon = (per_tenant_demand / 4.0).max(spec.base.epsilon_per_request);
    }
    println!(
        "audit-smoke: {} clients x {} requests, quotas {:.2} ε vs ~{:.2} ε demand, \
journal gated at ratio ≥ {MIN_THROUGHPUT_RATIO}",
        spec.base.clients,
        spec.base.requests,
        spec.base.tenants[0].quota_epsilon,
        per_tenant_demand
    );

    // ------------------------------------------------------------------
    // Part 1: the audited, alerted, refusal-heavy run.
    // ------------------------------------------------------------------
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    spec.provision(&registry, &ledger);
    let server = Arc::new(Server::start(
        spec.base.server.clone().with_seed(spec.base.seed),
        registry,
        ledger,
    ));
    // Hair-trigger burn-rate SLO: any spend at all against a 1 h horizon
    // breaches burn 0.001 — the alert is guaranteed, not probabilistic.
    server.slo().add_spec(SloSpec::new(
        "budget-burn",
        SloObjective::BurnRate {
            horizon_micros: 3_600_000_000,
            max_burn: 0.001,
        },
        60_000_000,
    ));
    // JSONL sink attached before any traffic: the file is the full log of
    // everything from here on.
    let sink_path = std::env::temp_dir().join("ccdp_audit_smoke.jsonl");
    let sink_path = sink_path.to_str().expect("temp path is utf-8").to_string();
    server
        .journal()
        .set_sink_path(&sink_path)
        .expect("sink file must open");
    let recorded_at_attach = server.journal().recorded();

    let net = NetServer::start(
        NetConfig::new().with_max_connections(spec.base.clients + 8),
        Arc::clone(&server),
    )
    .expect("loopback listener must bind");
    let addr = net.local_addr();
    let report = spec.run(addr);
    assert!(report.is_complete(), "workload incomplete: {report:?}");
    assert!(
        report.budget_refusals > 0,
        "the shrunken quotas must drive refusals: {report:?}"
    );
    println!(
        "refusal-heavy run: {}/{} completed, {} budget refusals, {:.0} req/s",
        report.completed, report.spec_requests, report.budget_refusals, report.throughput_rps
    );

    // Replay equality, tenant by tenant over the wire, then all at once
    // through the ledger's bitwise verifier.
    let mut probe = NetClient::connect(addr);
    let mut total_charges = 0u64;
    let mut total_refusals = 0u64;
    for t in &spec.base.tenants {
        let audit = probe.audit(&t.name).expect("/audit/{tenant} answers");
        let replay = audit.get("replay").expect("replay block");
        assert_eq!(
            replay.get("matches").and_then(JsonValue::as_bool),
            Some(true),
            "tenant {} replay must match the live ledger: {replay:?}",
            t.name
        );
        let account = audit.get("account").expect("account block");
        total_charges += account
            .get("charges")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        total_refusals += account
            .get("refusals")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert!(
            json_array(&audit, "events")
                .iter()
                .any(|e| e.get("kind").and_then(JsonValue::as_str) == Some("budget_refusal")),
            "tenant {} must have journaled refusals",
            t.name
        );
    }
    assert_eq!(
        total_refusals, report.budget_refusals,
        "audited refusals must equal the workload's count"
    );
    let verified = server
        .ledger()
        .verify_replay(server.journal())
        .expect("bitwise replay verification");
    assert_eq!(verified, spec.base.tenants.len());
    println!(
        "replay: {verified} tenants verified bit-for-bit ({total_charges} charges, \
{total_refusals} refusals journaled)"
    );

    // The burn-rate alert: fired on the /slo scrape, visible in /slo and
    // as an slo_alert audit event.
    let slo = probe.slo().expect("/slo answers");
    let alerts = json_array(&slo, "alerts");
    let burn_alerts: Vec<&JsonValue> = alerts
        .iter()
        .filter(|a| a.get("objective").and_then(JsonValue::as_str) == Some("burn_rate"))
        .collect();
    assert!(
        !burn_alerts.is_empty(),
        "the hair-trigger burn-rate spec must fire: {slo:?}"
    );
    let breacher = burn_alerts[0]
        .get("tenant")
        .and_then(JsonValue::as_str)
        .expect("alert names its tenant")
        .to_string();
    let audit = probe.audit(&breacher).expect("breacher's audit answers");
    assert!(
        json_array(&audit, "events")
            .iter()
            .any(|e| e.get("kind").and_then(JsonValue::as_str) == Some("slo_alert")),
        "tenant {breacher}'s audit stream must carry the slo_alert event"
    );
    println!(
        "alerting: {} burn-rate alert(s) fired, tenant {breacher}'s audit trail shows the breach",
        burn_alerts.len()
    );

    // The JSONL sink: one parseable line per event recorded since attach.
    server.journal().close_sink();
    let sink = std::fs::read_to_string(&sink_path).expect("sink file readable");
    let recorded_since_attach = server.journal().recorded() - recorded_at_attach;
    let lines: Vec<&str> = sink.lines().collect();
    assert_eq!(
        lines.len() as u64,
        recorded_since_attach,
        "sink must hold one line per recorded event"
    );
    for line in &lines {
        let event = ccdp::serve::json::parse(line).expect("sink line parses as JSON");
        assert!(
            event.get("kind").is_some(),
            "sink line without kind: {line}"
        );
    }
    println!(
        "sink: {} JSONL lines at {sink_path}, all parseable",
        lines.len()
    );
    let _ = std::fs::remove_file(&sink_path);

    // The drop-accounting satellite on the same scrape.
    let metrics = probe.metrics().expect("/metrics answers");
    assert!(metrics.contains("ccdp_obs_audit_dropped_total"));
    assert!(metrics.contains("ccdp_obs_trace_dropped_total"));
    assert!(
        metrics.ends_with("# EOF\n"),
        "exposition must end with # EOF"
    );
    net.shutdown();

    // ------------------------------------------------------------------
    // Part 2: the overhead gate.
    // ------------------------------------------------------------------
    let (median_off, median_on, ratio) = measure_journal_ratio(&spec.base, OVERHEAD_RUNS);
    println!(
        "overhead: median off {median_off:.0} req/s, median on {median_on:.0} req/s, \
median paired ratio {ratio:.3}"
    );

    if let Some(path) = &json_path {
        let json = format!(
            "{{\"requests\":{},\"overhead_requests\":{},\"clients\":{},\
\"charges\":{},\"refusals\":{},\"replay_verified_tenants\":{},\"burn_alerts\":{},\
\"sink_lines\":{},\
\"throughput_off_rps\":{:.1},\"throughput_on_rps\":{:.1},\"journal_ratio\":{:.4},\
\"min_ratio\":{}}}",
            spec.base.requests,
            spec.base.requests * OVERHEAD_REQUEST_FACTOR,
            spec.base.clients,
            total_charges,
            total_refusals,
            verified,
            burn_alerts.len(),
            lines.len(),
            median_off,
            median_on,
            ratio,
            MIN_THROUGHPUT_RATIO,
        );
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    assert!(
        ratio >= MIN_THROUGHPUT_RATIO,
        "journal overhead over budget: on/off throughput ratio {ratio:.3} < {MIN_THROUGHPUT_RATIO}"
    );
    println!("audit smoke OK");
}
