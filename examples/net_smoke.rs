//! Drive the wire tier end to end with the deterministic net-smoke workload.
//!
//! Starts a real listener on a loopback port, provisions the CI fleet and
//! tenant mix, then runs 32 socket clients through 512 requests of the
//! serve tier's deterministic schedule — every request a real HTTP/1.1
//! round trip through [`NetClient`]. Asserts the acceptance invariants the
//! CI `net-smoke` job relies on:
//!
//! * the workload completes: zero hard failures, every non-budget request
//!   answered `200` (429 backpressure is retried, 403 budget refusals are
//!   expected for the under-provisioned `burst` tenant);
//! * `/healthz` answers `ready` while serving;
//! * shutdown drains cleanly and reports consistent wire counters.
//!
//! With `--json PATH`, writes the metrics JSON archived as `BENCH_net.json`.
//!
//! ```text
//! cargo run --release --example net_smoke
//! cargo run --release --example net_smoke -- --clients 32 --requests 512
//! cargo run --release --example net_smoke -- --json BENCH_net.json
//! ```

use ccdp::prelude::*;
use std::sync::Arc;

fn main() {
    let mut spec = WireLoadSpec::ci_smoke();
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                spec.base.requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--clients" => {
                spec.base.clients = value(i).parse().expect("--clients takes a count");
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    // Provision the fleet and put a real listener in front of the pool.
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    spec.provision(&registry, &ledger);
    let server = Arc::new(Server::start(
        spec.base.server.clone().with_seed(spec.base.seed),
        registry,
        ledger,
    ));
    let net = NetServer::start(
        NetConfig::new().with_max_connections(spec.base.clients + 8),
        server,
    )
    .expect("loopback listener must bind");
    let addr = net.local_addr();
    println!(
        "net-smoke: {} clients x {} requests against {addr}",
        spec.base.clients, spec.base.requests
    );

    // The server must be ready before a single byte of load.
    let mut probe = NetClient::connect(addr);
    let health = probe.health().expect("/healthz must answer");
    assert!(health.ready, "listener not ready: {health:?}");

    let report = spec.run(addr);
    println!(
        "completed {}/{} ({} budget refusals, {} failures, {} backpressure retries)",
        report.completed,
        report.spec_requests,
        report.budget_refusals,
        report.failed,
        report.backpressure_retries
    );
    println!(
        "throughput {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        report.throughput_rps,
        report.p50_latency.as_secs_f64() * 1e3,
        report.p99_latency.as_secs_f64() * 1e3
    );

    // Acceptance invariants — the CI job passes only if these hold.
    assert!(report.is_complete(), "workload incomplete: {report:?}");
    assert_eq!(report.failed, 0, "hard failures over the wire: {report:?}");
    assert!(
        report.budget_refusals > 0,
        "the under-provisioned `burst` tenant should have been refused"
    );

    // Still healthy after the storm.
    let health = probe.health().expect("/healthz must answer after load");
    assert!(health.ready, "listener degraded after load: {health:?}");

    if let Some(path) = &json_path {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    let stats = net.shutdown();
    assert_eq!(
        stats.refused_cap, 0,
        "connection cap hit during a sized workload: {stats:?}"
    );
    println!(
        "drained: {} connections accepted, {} requests, {} ok / {} client-err / {} server-err",
        stats.accepted,
        stats.requests,
        stats.responses_ok,
        stats.responses_client_error,
        stats.responses_server_error
    );
}
