//! Drive the wire tier end to end with the deterministic net-smoke workload.
//!
//! Starts a real listener on a loopback port, provisions the CI fleet and
//! tenant mix, then runs 32 socket clients through 512 requests of the
//! serve tier's deterministic schedule — every request a real HTTP/1.1
//! round trip through [`NetClient`]. Asserts the acceptance invariants the
//! CI `net-smoke` job relies on:
//!
//! * the workload completes: zero hard failures, every non-budget request
//!   answered `200` (429 backpressure is retried, 403 budget refusals are
//!   expected for the under-provisioned `burst` tenant);
//! * `/healthz` answers `ready` while serving;
//! * shutdown drains cleanly and reports consistent wire counters.
//!
//! The pool runs with tracing on, so at drain the example also prints the
//! five slowest traces (each id resolvable while the server lives via
//! `GET /trace/{id}` / `ccdp trace`) and the solver phase table from the
//! unified metrics registry — the same series `GET /metrics` exposes.
//!
//! With `--json PATH`, writes the metrics JSON archived as `BENCH_net.json`.
//!
//! ```text
//! cargo run --release --example net_smoke
//! cargo run --release --example net_smoke -- --clients 32 --requests 512
//! cargo run --release --example net_smoke -- --json BENCH_net.json
//! ```

use ccdp::prelude::*;
use std::sync::Arc;

fn main() {
    let mut spec = WireLoadSpec::ci_smoke();
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                spec.base.requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--clients" => {
                spec.base.clients = value(i).parse().expect("--clients takes a count");
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    // Provision the fleet and put a real listener in front of the pool.
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    spec.provision(&registry, &ledger);
    let server = Arc::new(Server::start(
        spec.base
            .server
            .clone()
            .with_seed(spec.base.seed)
            .with_tracing(true),
        registry,
        ledger,
    ));
    let net = NetServer::start(
        NetConfig::new().with_max_connections(spec.base.clients + 8),
        server,
    )
    .expect("loopback listener must bind");
    let addr = net.local_addr();
    println!(
        "net-smoke: {} clients x {} requests against {addr}",
        spec.base.clients, spec.base.requests
    );

    // The server must be ready before a single byte of load.
    let mut probe = NetClient::connect(addr);
    let health = probe.health().expect("/healthz must answer");
    assert!(health.ready, "listener not ready: {health:?}");

    let report = spec.run(addr);
    println!(
        "completed {}/{} ({} budget refusals, {} failures, {} backpressure retries)",
        report.completed,
        report.spec_requests,
        report.budget_refusals,
        report.failed,
        report.backpressure_retries
    );
    println!(
        "throughput {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        report.throughput_rps,
        report.p50_latency.as_secs_f64() * 1e3,
        report.p99_latency.as_secs_f64() * 1e3
    );

    // Acceptance invariants — the CI job passes only if these hold.
    assert!(report.is_complete(), "workload incomplete: {report:?}");
    assert_eq!(report.failed, 0, "hard failures over the wire: {report:?}");
    assert!(
        report.budget_refusals > 0,
        "the under-provisioned `burst` tenant should have been refused"
    );

    // Still healthy after the storm.
    let health = probe.health().expect("/healthz must answer after load");
    assert!(health.ready, "listener degraded after load: {health:?}");

    if let Some(path) = &json_path {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    // Where did the time go? The tracer ranks whole requests, the registry
    // attributes solver wall-clock per phase across the whole workload.
    let slowest = net.server().tracer().slowest(5);
    assert!(
        !slowest.is_empty(),
        "a traced workload must leave spans in the ring"
    );
    println!("slowest traces:");
    for t in &slowest {
        println!(
            "  {}  {:>9.3} ms  ({} spans)",
            t.id,
            t.total_nanos as f64 / 1e6,
            t.events
        );
    }
    let snapshot = net.server().metrics().snapshot();
    println!("solver phases (whole workload):");
    let mut rows: Vec<(String, f64, f64)> = snapshot
        .series
        .iter()
        .filter(|s| s.name == "ccdp_exec_phase_seconds_total")
        .filter_map(|s| {
            let phase = s
                .labels
                .iter()
                .find(|(k, _)| k == "phase")
                .map(|(_, v)| v.clone())?;
            let seconds = match s.value {
                ccdp::obs::SeriesValue::Float(v) => v,
                _ => return None,
            };
            let calls = snapshot
                .series
                .iter()
                .find(|o| o.name == "ccdp_exec_phase_invocations_total" && o.labels == s.labels)
                .map(|o| match o.value {
                    ccdp::obs::SeriesValue::Counter(v) => v as f64,
                    _ => 0.0,
                })
                .unwrap_or(0.0);
            Some((phase, seconds, calls))
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (phase, seconds, calls) in &rows {
        println!("  {phase:<24} {:>9.3} s  ({calls:.0} calls)", seconds);
    }
    assert!(
        !rows.is_empty(),
        "the registry must hold per-phase series after a served workload"
    );

    let stats = net.shutdown();
    assert_eq!(
        stats.refused_cap, 0,
        "connection cap hit during a sized workload: {stats:?}"
    );
    println!(
        "drained: {} connections accepted, {} requests, {} ok / {} client-err / {} server-err",
        stats.accepted,
        stats.requests,
        stats.responses_ok,
        stats.responses_client_error,
        stats.responses_server_error
    );
}
