//! Drive an evolving 8-graph fleet end-to-end through the streaming tier.
//!
//! Each fleet member is a [`GraphStream`] fed by the deterministic
//! [`MutationSpec`] CI script (mixed insertions and real deletions). A
//! shared [`ReleaseScheduler`] re-releases every k mutations, publishing
//! versioned snapshots into the version-aware registry, charging tenants
//! through the budget ledger, and tagging every family-cache lookup with
//! `(graph, version)`.
//!
//! The run *asserts* the acceptance invariants of the streaming subsystem:
//!
//! * zero hard failures — every scheduled release is granted and finite,
//! * every release is served from the registry snapshot whose version the
//!   release names (and its exact count matches a from-scratch recount of
//!   that snapshot — the incremental maintenance is never wrong),
//! * no cache replay across versions: the shared cache reports exactly one
//!   miss per release, zero hits, and bulk invalidations of superseded
//!   versions,
//! * registry histories stay within the retention bound (stale snapshots
//!   expire without unpublishing the frontier).
//!
//! ```text
//! cargo run --release --example stream_evolve
//! cargo run --release --example stream_evolve -- --mutations 480 --every 32
//! cargo run --release --example stream_evolve -- --json STREAM_summary.json
//! ```

use ccdp::prelude::*;
use ccdp::stream::replay;
use std::sync::Arc;
use std::time::Instant;

/// Mutations applied between scheduler observations.
const BATCH: usize = 8;

/// Registry snapshots retained per graph.
const RETAIN: usize = 6;

fn main() {
    let mut spec = MutationSpec::ci_smoke();
    let mut every_k: u64 = 16;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--graphs" => {
                spec.graphs = value(i).parse().expect("--graphs takes a count");
                i += 2;
            }
            "--mutations" => {
                spec.mutations_per_graph = value(i).parse().expect("--mutations takes a count");
                i += 2;
            }
            "--every" => {
                every_k = value(i).parse().expect("--every takes a mutation count");
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}` (try --graphs/--mutations/--every/--json)"),
        }
    }

    println!(
        "stream_evolve: {} streams × {} mutations ({}% deletes), release every {} mutations",
        spec.graphs,
        spec.mutations_per_graph,
        (spec.delete_fraction * 100.0) as u32,
        every_k
    );

    // Shared serving infrastructure: version-aware catalog, tenant quotas,
    // one family cache for the whole fleet.
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    let tenants: Vec<TenantId> = ["alpha", "beta", "gamma", "delta"]
        .iter()
        .map(|name| {
            ledger.register(*name, 1e6).unwrap();
            TenantId::new(name)
        })
        .collect();
    let cache = Arc::new(ExtensionCache::new(256));
    let scheduler = ReleaseScheduler::new(
        SchedulerConfig::new(ReleasePolicy::EveryKMutations(every_k))
            .with_epsilon(0.5)
            .with_seed(spec.seed)
            .with_retain_versions(RETAIN),
        Arc::clone(&registry),
        Arc::clone(&ledger),
        Arc::clone(&cache),
    );

    // The replay reader round-trips one member's script — an archived feed
    // is bit-identical to the generated one.
    let archived = replay::to_mutation_list(&spec.mutations(0));
    assert_eq!(
        replay::from_mutation_list(&archived).expect("archived feed parses"),
        spec.mutations(0),
        "replay round-trip must be exact"
    );

    let started = Instant::now();
    let mut streams: Vec<GraphStream> = (0..spec.graphs).map(|i| spec.stream(i)).collect();
    let mut applied: u64 = 0;
    let mut releases: Vec<ReleaseRecord> = Vec::new();

    for (index, stream) in streams.iter_mut().enumerate() {
        let tenant = &tenants[index % tenants.len()];
        let script = spec.mutations(index);
        for batch in script.chunks(BATCH) {
            applied += stream
                .apply_batch(batch)
                .map(|_| batch.len())
                .unwrap_or_else(|e| panic!("stream {index} refused a scripted mutation: {e}"))
                as u64;
            if let Some(record) = scheduler
                .observe(stream, tenant)
                .unwrap_or_else(|e| panic!("release on stream {index} failed: {e}"))
            {
                // The release names an exact snapshot: resolve it back out of
                // the registry and recount from scratch — version match and
                // incremental correctness, at every release point.
                let snapshot = registry
                    .resolve_version(&record.graph, record.version)
                    .expect("released version must be resolvable");
                assert_eq!(
                    components::num_connected_components(snapshot.as_ref()),
                    record.true_components,
                    "incremental count diverged on {}@{}",
                    record.graph,
                    record.version
                );
                assert!(record.value.is_finite(), "release value must be finite");
                releases.push(record);
            }
        }
    }
    let wall_clock = started.elapsed();

    // --- Acceptance invariants -------------------------------------------
    let cache_stats = cache.stats();
    assert_eq!(
        cache_stats.misses,
        releases.len() as u64,
        "every release must evaluate its own version exactly once: {cache_stats:?}"
    );
    assert_eq!(
        cache_stats.hits, 0,
        "a release must never replay another version's family: {cache_stats:?}"
    );
    assert!(
        cache_stats.invalidations > 0,
        "superseded versions must be bulk-invalidated: {cache_stats:?}"
    );
    for index in 0..spec.graphs {
        let id = GraphId::new(spec.graph_id(index));
        let versions = registry.versions(&id);
        assert!(
            versions.len() <= RETAIN,
            "{id}: history {} exceeds retention {RETAIN}",
            versions.len()
        );
        assert!(
            registry.resolve(&id).is_ok(),
            "{id}: expiry must never unpublish the frontier"
        );
    }
    let total_grants: usize = ledger.snapshot().iter().map(|a| a.grants).sum();
    assert_eq!(
        total_grants,
        releases.len(),
        "every release maps to exactly one ledger grant"
    );

    let mutation_rate = applied as f64 / wall_clock.as_secs_f64();
    let release_rate = releases.len() as f64 / wall_clock.as_secs_f64();
    let rebuilds: u64 = streams.iter().map(|s| s.stats().rebuilds).sum();
    let deletes: u64 = streams.iter().map(|s| s.stats().edges_deleted).sum();

    println!();
    println!("  mutations applied    {applied:>8}");
    println!("  edges deleted        {deletes:>8}");
    println!("  epoch rebuilds       {rebuilds:>8}");
    println!("  releases             {:>8}", releases.len());
    println!("  registry snapshots   {:>8}", registry.num_versions());
    println!("  wall clock           {:>8.3} s", wall_clock.as_secs_f64());
    println!("  mutation throughput  {mutation_rate:>8.0} mut/s");
    println!("  release rate         {release_rate:>8.1} rel/s");
    println!(
        "  cache                {:>8} misses, {} invalidations, {} evictions",
        cache_stats.misses, cache_stats.invalidations, cache_stats.evictions
    );

    if let Some(path) = json_path {
        let json = format!(
            concat!(
                "{{\n",
                "  \"mutations\": {},\n",
                "  \"releases\": {},\n",
                "  \"rebuilds\": {},\n",
                "  \"wall_clock_s\": {:.6},\n",
                "  \"mutation_throughput\": {:.1},\n",
                "  \"releases_per_sec\": {:.3},\n",
                "  \"cache_misses\": {},\n",
                "  \"cache_invalidations\": {}\n",
                "}}"
            ),
            applied,
            releases.len(),
            rebuilds,
            wall_clock.as_secs_f64(),
            mutation_rate,
            release_rate,
            cache_stats.misses,
            cache_stats.invalidations,
        );
        std::fs::write(&path, json).expect("writing the JSON summary");
        println!("\nwrote {path}");
    }

    println!("\nall streaming invariants held");
}
