//! Social-network scenario (Section 1.1.4, Erdős–Rényi regime).
//!
//! A sparse friendship network in the `np = c` regime has Θ(n) connected
//! components and maximum degree O(log n), so the node-private estimate has
//! additive error Õ(log n / ε) — vanishing relative error. This example sweeps ε
//! and reports the observed error of the paper's algorithm against the trivial
//! baselines.
//!
//! Run with: `cargo run --release --example social_network`

use ccdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 4000;
    let c = 0.8; // average degree (subcritical regime analyzed in Section 1.1.4)
    let graph = generators::erdos_renyi(n, c / n as f64, &mut rng);
    let truth = graph.num_connected_components() as f64;
    println!(
        "Erdős–Rényi friendship network: n = {n}, mean degree ≈ {c}, f_cc = {truth}, max degree = {}",
        graph.max_degree()
    );
    println!(
        "\n{:<8} {:>18} {:>18} {:>22}",
        "epsilon", "this paper", "edge-DP (weaker)", "naive node-DP"
    );

    for epsilon in [0.25, 0.5, 1.0, 2.0] {
        // One heterogeneous fleet behind the object-safe Estimator trait.
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(PrivateCcEstimator::from_config(EstimatorConfig::new(
                epsilon,
            ))?),
            Box::new(EdgeDpBaseline::new(epsilon)?),
            Box::new(NaiveNodeDpBaseline::new(epsilon)?),
        ];
        let trials = 5;
        let mut errs = [0.0f64; 3];
        for _ in 0..trials {
            for (err, est) in errs.iter_mut().zip(&estimators) {
                *err += (est.estimate(&graph, &mut rng)?.value() - truth).abs();
            }
        }
        let [err_ours, err_edge, err_naive] = errs;
        println!(
            "{:<8} {:>13.1} err {:>13.1} err {:>17.1} err",
            epsilon,
            err_ours / trials as f64,
            err_edge / trials as f64,
            err_naive / trials as f64
        );
    }
    println!("\nThe node-private error stays a small fraction of f_cc = {truth}, while the naive");
    println!("node-private approach (global sensitivity ≈ n) is useless — the obstacle the paper solves.");
    Ok(())
}
