//! Observability acceptance smoke: the unified registry and the tracing
//! layer, exercised over real sockets and gated on their own overhead.
//!
//! Runs the deterministic net-smoke workload against a traced listener and
//! asserts the invariants the CI `obs-smoke` job relies on:
//!
//! * `GET /metrics` is scraped before and after the load; every counter
//!   series is monotone between the two scrapes, and the after-scrape
//!   spans all five islands (net, serve, core-cache, dp-budget,
//!   exec-phase) with ≥ 20 named series;
//! * cross-island consistency: the registry's `ccdp_serve_*` counters
//!   equal the serve tier's own [`StatsSnapshot`], and the
//!   `ccdp_core_cache_*` counters equal [`CacheStats`] — one set of
//!   numbers, two surfaces;
//! * the tracer kept whole-request spans: the slowest-traces ranking is
//!   non-empty and its ids resolve through `GET /trace/{id}`;
//! * tracing stays within its 5% budget: the serve smoke's schedule runs
//!   in-process against one long-lived pool, toggling only the tracer
//!   between fine-grained request chunks (loopback TCP jitter, thread
//!   re-placement and ambient machine noise would drown the 5% being
//!   measured), and the median of the per-chunk-pair on/off throughput
//!   ratios must be ≥ 0.95.
//!
//! With `--json PATH`, writes the measurements archived as
//! `BENCH_obs.json` — the ratio in that file is the number the budget is
//! gated on, not an aspiration.
//!
//! ```text
//! cargo run --release --example obs_smoke
//! cargo run --release --example obs_smoke -- --requests 1024 --json BENCH_obs.json
//! ```

use ccdp::obs::parse_exposition;
use ccdp::prelude::*;
use std::sync::Arc;

/// Overhead passes (each pass runs the whole overhead schedule once, with
/// tracing toggled chunk by chunk); the gate takes the median over every
/// pass's per-chunk-pair ratios.
const OVERHEAD_RUNS: usize = 9;
/// Requests per tracing toggle. Modes must interleave well below the
/// timescale of ambient machine noise (CPU stolen by neighbors moves
/// throughput ±15% on a ~100 ms scale, dwarfing the 5% being measured):
/// at ~1.5 ms per 64-request chunk, any noise burst lands on both modes
/// almost equally and cancels out of the ratio.
const OVERHEAD_CHUNK: usize = 64;
/// The overhead passes run a longer schedule than the scrape run so each
/// pass holds enough chunks per mode for the interleaving to average over.
const OVERHEAD_REQUEST_FACTOR: usize = 16;
/// Floor on the tracing-on/off throughput ratio (the "≤ 5% overhead"
/// acceptance budget).
const MIN_THROUGHPUT_RATIO: f64 = 0.95;

/// Median of a sample set (mutates order).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures the tracing throughput ratio on ONE long-lived server,
/// interleaving the two modes at [`OVERHEAD_CHUNK`]-request granularity.
/// Returns `(median_off, median_on, ratio)` where the ratio is the median
/// over every adjacent (off, on) chunk pair's throughput ratio — roughly
/// a thousand pairs per measurement.
///
/// The shape is all about the noise floor — the effect being gated is 5%
/// and ambient machine noise is ±15%:
///
/// * modes toggle every ~1.5 ms chunk (parity swapped between passes, so
///   every schedule position runs both modes), and a per-pass ratio
///   compares time the two modes spent *interleaved through the same
///   seconds* — noise bursts hit both sides of the ratio and cancel;
/// * the gate runs in-process (loopback TCP jitter dwarfs the effect),
///   single-client (a 32-thread storm against a small pool measures the
///   scheduler's mood, not the pipeline), and against one pool
///   (restarting the server re-rolls thread placement) — so the only
///   thing that differs between chunks is [`Tracer::set_enabled`].
fn measure_tracing_ratio(spec: &LoadSpec, passes: usize) -> (f64, f64, f64) {
    let mut base = spec.clone();
    base.requests *= OVERHEAD_REQUEST_FACTOR;
    // Fund every tenant far beyond what the whole measurement can spend:
    // refusals are cheaper than releases, so a quota exhausted partway
    // through would flatter whichever mode hit it.
    for t in &mut base.tenants {
        t.quota_epsilon = 1e12;
    }
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    let graph_ids = base.provision(&registry, &ledger);
    let schedule = base.schedule(&graph_ids);
    let server = Server::start(
        base.server.clone().with_seed(base.seed).with_tracing(true),
        registry,
        ledger,
    );
    // One pass: the whole schedule, chunk parity choosing the mode. Each
    // adjacent (off, on) chunk pair yields one on/off throughput ratio —
    // the pair spans ~3 ms of the same machine seconds, so ambient noise
    // cancels inside it, and a scheduler stall skews one pair, which the
    // median over all pairs then discards as an outlier.
    let mut pair_ratios: Vec<f64> = Vec::new();
    let run_pass = |parity: usize, pairs: Option<&mut Vec<f64>>| -> (f64, f64) {
        let (mut secs, mut reqs) = ([0.0f64; 2], [0usize; 2]);
        let mut chunk_rps = Vec::with_capacity(schedule.len() / OVERHEAD_CHUNK + 1);
        for (c, chunk) in schedule.chunks(OVERHEAD_CHUNK).enumerate() {
            let tracing = (c + parity) % 2 == 1;
            server.tracer().set_enabled(tracing);
            let started = std::time::Instant::now();
            for request in chunk {
                let response = server
                    .submit(request.clone())
                    .expect("sequential submissions never overflow the queue")
                    .wait();
                assert!(
                    response.result.is_ok(),
                    "overhead chunk request failed: {:?}",
                    response.result.err()
                );
            }
            let elapsed = started.elapsed().as_secs_f64();
            secs[tracing as usize] += elapsed;
            reqs[tracing as usize] += chunk.len();
            chunk_rps.push((tracing, chunk.len() as f64 / elapsed));
        }
        if let Some(pairs) = pairs {
            for w in chunk_rps.chunks_exact(2) {
                let ((a_traced, a_rps), (_, b_rps)) = (w[0], w[1]);
                let (off_rps, on_rps) = if a_traced {
                    (b_rps, a_rps)
                } else {
                    (a_rps, b_rps)
                };
                pairs.push(on_rps / off_rps);
            }
        }
        (reqs[0] as f64 / secs[0], reqs[1] as f64 / secs[1])
    };
    run_pass(0, None); // warm the family cache so no mode leads evaluations
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for pass in 0..passes {
        let (off_rps, on_rps) = run_pass(pass % 2, Some(&mut pair_ratios));
        println!(
            "pass {pass}: tracing off {off_rps:.0} req/s, on {on_rps:.0} req/s, ratio {:.3}",
            on_rps / off_rps
        );
        off.push(off_rps);
        on.push(on_rps);
    }
    (median(&mut off), median(&mut on), median(&mut pair_ratios))
}

/// Sum of every series named `name` in a parsed exposition, labeled
/// variants (`name{...}`) included.
fn series_sum(series: &[(String, f64)], name: &str) -> f64 {
    series
        .iter()
        .filter(|(n, _)| n == name || (n.starts_with(name) && n[name.len()..].starts_with('{')))
        .map(|(_, v)| v)
        .sum()
}

/// Whether a series key is a monotone counter (`*_total`, with or without
/// a label block) rather than a gauge or a quantile sample.
fn is_counter_key(key: &str) -> bool {
    let base = key.split('{').next().unwrap_or(key);
    base.ends_with("_total")
}

fn main() {
    let mut spec = WireLoadSpec::ci_smoke();
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--requests" => {
                spec.base.requests = value(i).parse().expect("--requests takes a count");
                i += 2;
            }
            "--clients" => {
                spec.base.clients = value(i).parse().expect("--clients takes a count");
                i += 2;
            }
            "--json" => {
                json_path = Some(value(i).to_string());
                i += 2;
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    println!(
        "obs-smoke: {} clients x {} requests, tracing gated at ratio ≥ {MIN_THROUGHPUT_RATIO}",
        spec.base.clients, spec.base.requests
    );

    // ------------------------------------------------------------------
    // Part 1: one traced run, scraped before and after the load.
    // ------------------------------------------------------------------
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    spec.provision(&registry, &ledger);
    let server = Arc::new(Server::start(
        spec.base
            .server
            .clone()
            .with_seed(spec.base.seed)
            .with_tracing(true),
        registry,
        ledger,
    ));
    let net = NetServer::start(
        NetConfig::new().with_max_connections(spec.base.clients + 8),
        server,
    )
    .expect("loopback listener must bind");
    let addr = net.local_addr();
    let mut probe = NetClient::connect(addr);

    let before = parse_exposition(&probe.metrics().expect("/metrics before load"));
    let report = spec.run(addr);
    assert!(report.is_complete(), "workload incomplete: {report:?}");
    assert_eq!(report.failed, 0, "hard failures over the wire: {report:?}");
    let after = parse_exposition(&probe.metrics().expect("/metrics after load"));
    println!(
        "traced run: {}/{} completed, {} budget refusals, {:.0} req/s",
        report.completed, report.spec_requests, report.budget_refusals, report.throughput_rps
    );

    // Monotonicity: no counter moved backwards between the two scrapes.
    let mut counters_checked = 0;
    for (key, before_v) in before.iter().filter(|(k, _)| is_counter_key(k)) {
        let after_v = after
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter `{key}` vanished between scrapes"));
        assert!(
            after_v >= *before_v,
            "counter `{key}` moved backwards: {before_v} -> {after_v}"
        );
        counters_checked += 1;
    }
    assert!(
        counters_checked >= 10,
        "expected ≥10 counter series in the pre-load scrape, got {counters_checked}"
    );
    println!("monotone: {counters_checked} counter series, none moved backwards");

    // Coverage: ≥ 20 named series across every island.
    let names: std::collections::BTreeSet<&str> = after
        .iter()
        .map(|(k, _)| k.split('{').next().unwrap_or(k))
        .collect();
    assert!(
        names.len() >= 20,
        "expected ≥20 series, got {}",
        names.len()
    );
    for island in [
        "ccdp_net_",
        "ccdp_serve_",
        "ccdp_core_cache_",
        "ccdp_dp_budget_",
        "ccdp_exec_phase_",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(island)),
            "no `{island}*` series in the exposition"
        );
    }

    // Cross-island consistency: the registry and the tier-native snapshots
    // are the same numbers on two surfaces.
    let stats = net.server().stats();
    let cache = net.server().cache_stats();
    for (series, tier_value) in [
        ("ccdp_serve_requests_total", stats.received),
        ("ccdp_serve_completed_total", stats.completed),
        ("ccdp_serve_budget_refusals_total", stats.budget_refusals),
        (
            "ccdp_serve_rejected_queue_full_total",
            stats.rejected_queue_full,
        ),
        ("ccdp_dp_budget_refusals_total", stats.budget_refusals),
        ("ccdp_core_cache_hits_total", cache.hits),
        ("ccdp_core_cache_misses_total", cache.misses),
        ("ccdp_core_cache_coalesced_total", cache.coalesced),
    ] {
        assert_eq!(
            series_sum(&after, series),
            tier_value as f64,
            "registry `{series}` disagrees with the tier snapshot"
        );
    }
    println!(
        "consistent: serve received={} completed={} refusals={}; cache hits={} misses={} coalesced={}",
        stats.received, stats.completed, stats.budget_refusals, cache.hits, cache.misses,
        cache.coalesced
    );

    // The tracer kept whole requests, and its ids resolve over the wire.
    let slowest = net.server().tracer().slowest(5);
    assert!(!slowest.is_empty(), "traced run left no spans in the ring");
    for t in &slowest {
        let tree = probe.trace(&t.id.to_string()).expect("slowest id resolves");
        assert!(
            tree.get("spans").is_some(),
            "trace {} resolved without spans",
            t.id
        );
    }
    println!(
        "tracer: {} slowest ids all resolve (worst {:.3} ms over {} spans)",
        slowest.len(),
        slowest[0].total_nanos as f64 / 1e6,
        slowest[0].events
    );
    net.shutdown();

    // ------------------------------------------------------------------
    // Part 2: the overhead gate.
    // ------------------------------------------------------------------
    let (median_off, median_on, ratio) = measure_tracing_ratio(&spec.base, OVERHEAD_RUNS);
    println!(
        "overhead: median off {median_off:.0} req/s, median on {median_on:.0} req/s, \
median paired ratio {ratio:.3}"
    );

    if let Some(path) = &json_path {
        let json = format!(
            "{{\"requests\":{},\"overhead_requests\":{},\"clients\":{},\"series\":{},\
\"counters_monotone\":{},\
\"throughput_off_rps\":{:.1},\"throughput_on_rps\":{:.1},\"tracing_ratio\":{:.4},\
\"min_ratio\":{},\"completed\":{},\"budget_refusals\":{}}}",
            spec.base.requests,
            spec.base.requests * OVERHEAD_REQUEST_FACTOR,
            spec.base.clients,
            names.len(),
            counters_checked,
            median_off,
            median_on,
            ratio,
            MIN_THROUGHPUT_RATIO,
            report.completed,
            report.budget_refusals,
        );
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    assert!(
        ratio >= MIN_THROUGHPUT_RATIO,
        "tracing overhead over budget: on/off throughput ratio {ratio:.3} < {MIN_THROUGHPUT_RATIO}"
    );
    println!("obs smoke OK");
}
