//! End-to-end scale smoke: one full private release of the number of
//! connected components on a barely-supercritical Erdős–Rényi graph,
//! default n = 10^5, streaming-built straight into the CSR arena.
//!
//! Asserts the acceptance invariants the CI `scale-smoke` job relies on:
//!
//! * the release completes at this scale — the arena is built by
//!   [`CsrGraph::from_edge_stream`] in two counting passes, so no
//!   adjacency-list `Graph` is ever materialized and n = 10^7 fits,
//! * the sequential and 8-thread releases are **bit-for-bit identical** on
//!   the same seed (`with_threads` is a pure scheduling knob),
//! * the micro-solver and solve-dedup fast paths are **value-neutral**:
//!   every toggle combination releases the same bits,
//! * at moderate n the CSR release matches the adjacency-list `Graph`
//!   release bit-for-bit (same RNG stream, same mechanisms),
//! * the released value is in the right ballpark of the true component
//!   count (a loose, noise-tolerant sanity band — not an accuracy claim).
//!
//! With `--json PATH`, writes the measurements (including the per-phase
//! wall-clock breakdown from [`PhaseProfiler`], published through the
//! unified [`MetricsRegistry`](ccdp::MetricsRegistry) as the same
//! `ccdp_exec_phase_*` series the serving tier scrapes, and the micro/dedup
//! ablation timings) archived as `BENCH_scale.json`. With `--baseline PATH`, loads a
//! committed phase baseline and fails if any phase regressed more than 3×
//! against it — the CI regression gate.
//!
//! ```text
//! cargo run --release --example scale_smoke
//! cargo run --release --example scale_smoke -- --n 1000000 --json BENCH_scale.json
//! cargo run --release --example scale_smoke -- --n 1000000 --baseline BENCH_scale_baseline.json
//! cargo run --release --example scale_smoke -- --n 10000000 --no-ablate
//! ```

use ccdp::prelude::*;
use ccdp::{CsrGraph, PhaseProfiler};
use std::time::Instant;

const SEED_GRAPH: u64 = 20_230_605;
const SEED_NOISE: u64 = 1_729;
const AVG_DEGREE: f64 = 1.05;

/// Above this size the `Graph`-path cross-check is skipped: it would build
/// the adjacency list the streaming path exists to avoid.
const GRAPH_CROSSCHECK_MAX_N: usize = 300_000;

/// Allowed slowdown per phase against the committed baseline before the
/// regression gate trips.
const PHASE_REGRESSION_FACTOR: f64 = 3.0;
/// Phases faster than this in the baseline are too noisy to gate on.
const PHASE_GATE_FLOOR_S: f64 = 0.05;

fn config(threads: usize, micro: bool, dedup: bool) -> EstimatorConfig {
    EstimatorConfig::new(1.0)
        .with_threads(threads)
        .with_delta_max(64)
        .with_micro_solver(micro)
        .with_solve_dedup(dedup)
}

fn release_csr(
    arena: &CsrGraph,
    threads: usize,
    micro: bool,
    dedup: bool,
    profiler: Option<&PhaseProfiler>,
) -> (f64, f64) {
    let est = PrivateCcEstimator::from_config(config(threads, micro, dedup)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(SEED_NOISE);
    let start = Instant::now();
    let release = match profiler {
        Some(p) => est.estimate_csr_profiled(arena, &mut rng, p),
        None => est.estimate_csr(arena, &mut rng),
    }
    .expect("estimate completes");
    (release.value(), start.elapsed().as_secs_f64())
}

/// Pulls `"name":seconds` pairs out of the committed baseline JSON. The file
/// is written by this very example (flat, no nesting inside `"phases"`), so
/// a scanning parser is enough — no JSON dependency needed.
fn baseline_phases(raw: &str) -> Vec<(String, f64)> {
    let Some(start) = raw.find("\"phases\":{") else {
        return Vec::new();
    };
    let rest = &raw[start + "\"phases\":{".len()..];
    let Some(end) = rest.find('}') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|pair| {
            let (name, secs) = pair.split_once(':')?;
            Some((
                name.trim().trim_matches('"').to_string(),
                secs.trim().parse().ok()?,
            ))
        })
        .collect()
}

/// Renders a registry snapshot's `ccdp_exec_phase_*` series: timed phases
/// sorted by wall-clock spent, bare counts after.
fn print_phase_table(snapshot: &MetricsSnapshot) {
    use ccdp::obs::{SeriesSnapshot, SeriesValue};
    let phase_label = |s: &SeriesSnapshot| -> Option<String> {
        s.labels
            .iter()
            .find(|(k, _)| k == "phase")
            .map(|(_, v)| v.clone())
    };
    let mut timed: Vec<(String, f64, u64)> = Vec::new();
    for s in &snapshot.series {
        let SeriesValue::Float(seconds) = &s.value else {
            continue;
        };
        if s.name != "ccdp_exec_phase_seconds_total" {
            continue;
        }
        let Some(phase) = phase_label(s) else {
            continue;
        };
        let calls = snapshot
            .series
            .iter()
            .find(|o| o.name == "ccdp_exec_phase_invocations_total" && o.labels == s.labels)
            .map(|o| match o.value {
                SeriesValue::Counter(v) => v,
                _ => 0,
            })
            .unwrap_or(0);
        timed.push((phase, *seconds, calls));
    }
    timed.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (phase, seconds, calls) in &timed {
        println!("  phase {phase:<24} {seconds:>9.3}s ({calls} calls)");
    }
    for s in &snapshot.series {
        if s.name != "ccdp_exec_phase_count_total" {
            continue;
        }
        let SeriesValue::Counter(count) = s.value else {
            continue;
        };
        if let Some(phase) = phase_label(s) {
            println!("  count {phase:<24} {count:>12}");
        }
    }
}

fn main() {
    let mut n: usize = 100_000;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut ablate = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes an integer");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args[i].clone());
            }
            "--no-ablate" => ablate = false,
            other => panic!(
                "unknown flag `{other}` (use --n N, --json PATH, --baseline PATH, --no-ablate)"
            ),
        }
        i += 1;
    }

    // Barely supercritical: c = 1.05 keeps the giant component small enough
    // that its 2-core stays within the LP engines' reach, while still
    // exercising every path (giant piece, unicyclic pieces, tree fast paths).
    // The stream is re-playable from the seed, which is exactly what the
    // two-pass CSR build needs.
    let p = AVG_DEGREE / n as f64;
    let build_start = Instant::now();
    let arena = CsrGraph::from_edge_stream(n, || {
        generators::erdos_renyi_edges(n, p, StdRng::seed_from_u64(SEED_GRAPH))
    });
    let build_s = build_start.elapsed().as_secs_f64();
    let m = arena.num_edges();
    let truth = arena.num_components();
    println!("graph: n={n} m={m} components={truth} (streamed into CSR in {build_s:.2}s)");

    // Primary configuration (micro + dedup on), with the per-phase breakdown
    // attributed on the sequential run.
    let profiler = PhaseProfiler::new();
    let (v1, t1) = release_csr(&arena, 1, true, true, Some(&profiler));
    println!("threads=1: value={v1:.3} in {t1:.2}s");
    let (v8, t8) = release_csr(&arena, 8, true, true, None);
    println!("threads=8: value={v8:.3} in {t8:.2}s");
    assert_eq!(
        v1.to_bits(),
        v8.to_bits(),
        "sequential and 8-thread releases must be bit-for-bit identical"
    );

    // The breakdown flows through the same registry the serving tier
    // scrapes as `ccdp_exec_phase_*`: publish once, print from the snapshot.
    let phases = profiler.report();
    let registry = MetricsRegistry::new();
    profiler.publish(&registry);
    print_phase_table(&registry.snapshot());

    // Value-neutrality of the fast paths: every toggle combination must
    // release the same bits. (micro=off, dedup=off) is the pre-optimization
    // solver; at large n it is exactly the slow path this example exists to
    // retire, so ablations are opt-out via --no-ablate.
    let mut ablations: Vec<(bool, bool, f64)> = Vec::new();
    if ablate {
        for (micro, dedup) in [(false, true), (true, false), (false, false)] {
            let (v, t) = release_csr(&arena, 1, micro, dedup, None);
            assert_eq!(
                v1.to_bits(),
                v.to_bits(),
                "micro={micro} dedup={dedup} must release identical bits"
            );
            println!("ablation micro={micro} dedup={dedup}: {t:.2}s (bit-identical)");
            ablations.push((micro, dedup, t));
        }
    }

    // At moderate n, pin the CSR entry point against the historical
    // adjacency-list path: same RNG stream, same released bits.
    if n <= GRAPH_CROSSCHECK_MAX_N {
        let g = generators::erdos_renyi(n, p, &mut StdRng::seed_from_u64(SEED_GRAPH));
        assert!(arena.matches_graph(&g), "stream and Graph builds diverged");
        let est = PrivateCcEstimator::from_config(config(1, true, true)).expect("valid config");
        let gv = est
            .estimate(&g, &mut StdRng::seed_from_u64(SEED_NOISE))
            .expect("estimate completes")
            .value();
        assert_eq!(
            v1.to_bits(),
            gv.to_bits(),
            "CSR release must match the Graph release bit-for-bit"
        );
        println!("graph-path cross-check: bit-identical");
    }

    // Loose sanity band: ε = 1 noise at Δ̂ ≤ 64 is far below 20% of the
    // component count at this scale.
    let err = (v1 - truth as f64).abs();
    assert!(
        err < truth as f64 * 0.2,
        "released {v1:.1} strays too far from truth {truth}"
    );

    let speedup = t1 / t8.max(1e-9);
    println!("speedup (t1/t8): {speedup:.2}x");

    // The CI regression gate: no phase may run 3× slower than the committed
    // baseline (tiny phases are below measurement noise and skipped).
    if let Some(path) = baseline_path {
        let raw = std::fs::read_to_string(&path).expect("read baseline");
        let mut gated = 0;
        for (name, base_s) in baseline_phases(&raw) {
            if base_s < PHASE_GATE_FLOOR_S {
                continue;
            }
            let now_s = profiler.seconds(&name);
            assert!(
                now_s <= base_s * PHASE_REGRESSION_FACTOR,
                "phase `{name}` regressed: {now_s:.3}s vs baseline {base_s:.3}s (>{PHASE_REGRESSION_FACTOR}x)"
            );
            gated += 1;
        }
        println!("baseline check: {gated} phase(s) within {PHASE_REGRESSION_FACTOR}x of {path}");
    }

    if let Some(path) = json_path {
        let phase_json: Vec<String> = phases
            .iter()
            .filter(|p| p.invocations > 0)
            .map(|p| format!("\"{}\":{:.3}", p.name, p.seconds))
            .collect();
        let count_json: Vec<String> = phases
            .iter()
            .filter(|p| p.invocations == 0)
            .map(|p| format!("\"{}\":{}", p.name, p.count))
            .collect();
        let ablation_json: Vec<String> = ablations
            .iter()
            .map(|(micro, dedup, t)| {
                format!("{{\"micro\":{micro},\"dedup\":{dedup},\"t_s\":{t:.3},\"identical\":true}}")
            })
            .collect();
        let json = format!(
            "{{\"n\":{n},\"m\":{m},\"components\":{truth},\"build_s\":{build_s:.3},\
\"t1_s\":{t1:.3},\"t8_s\":{t8:.3},\"speedup\":{speedup:.3},\
\"value_t1\":{v1:.6},\"value_t8\":{v8:.6},\"identical\":true,\
\"phases\":{{{}}},\"counts\":{{{}}},\"ablations\":[{}]}}",
            phase_json.join(","),
            count_json.join(","),
            ablation_json.join(",")
        );
        std::fs::write(&path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
    println!("scale smoke OK");
}
