//! End-to-end scale smoke: one full private release of the number of
//! connected components on a barely-supercritical Erdős–Rényi graph at
//! n = 10^5, sequentially and with an 8-thread budget.
//!
//! Asserts the acceptance invariants the CI `scale-smoke` job relies on:
//!
//! * the release completes at this scale (the pre-CSR code path did not
//!   finish inside any reasonable CI budget),
//! * the sequential and 8-thread releases are **bit-for-bit identical** on
//!   the same seed (`with_threads` is a pure scheduling knob),
//! * the released value is in the right ballpark of the true component
//!   count (a loose, noise-tolerant sanity band — not an accuracy claim).
//!
//! With `--json PATH`, writes the measurements archived as
//! `BENCH_scale.json`. The speedup figure is honest wall-clock on whatever
//! machine runs it: on a single-core container it hovers around 1.0, on the
//! multi-core CI runners the per-component and per-Δ fan-out shows up.
//!
//! ```text
//! cargo run --release --example scale_smoke
//! cargo run --release --example scale_smoke -- --n 100000 --json BENCH_scale.json
//! ```

use ccdp::prelude::*;
use std::time::Instant;

const SEED_GRAPH: u64 = 20_230_605;
const SEED_NOISE: u64 = 1_729;

fn release_with_threads(g: &Graph, threads: usize) -> (f64, f64) {
    let cfg = EstimatorConfig::new(1.0)
        .with_threads(threads)
        .with_delta_max(64);
    let est = PrivateCcEstimator::from_config(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(SEED_NOISE);
    let start = Instant::now();
    let release = est.estimate(g, &mut rng).expect("estimate completes");
    let secs = start.elapsed().as_secs_f64();
    (release.value(), secs)
}

fn main() {
    let mut n: usize = 100_000;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes an integer");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => panic!("unknown flag `{other}` (use --n N, --json PATH)"),
        }
        i += 1;
    }

    // Barely supercritical: c = 1.05 keeps the giant component small enough
    // that its 2-core stays within the LP engines' reach, while still
    // exercising every path (giant piece, unicyclic pieces, tree fast paths).
    let mut rng = StdRng::seed_from_u64(SEED_GRAPH);
    let build_start = Instant::now();
    let g = generators::erdos_renyi(n, 1.05 / n as f64, &mut rng);
    let build_s = build_start.elapsed().as_secs_f64();
    let m = g.num_edges();
    let truth = g.num_connected_components();
    println!("graph: n={n} m={m} components={truth} (built in {build_s:.2}s)");

    let (v1, t1) = release_with_threads(&g, 1);
    println!("threads=1: value={v1:.3} in {t1:.2}s");
    let (v8, t8) = release_with_threads(&g, 8);
    println!("threads=8: value={v8:.3} in {t8:.2}s");

    assert_eq!(
        v1.to_bits(),
        v8.to_bits(),
        "sequential and 8-thread releases must be bit-for-bit identical"
    );
    // Loose sanity band: ε = 1 noise at Δ̂ ≤ 64 is far below 20% of the
    // component count at this scale.
    let err = (v1 - truth as f64).abs();
    assert!(
        err < truth as f64 * 0.2,
        "released {v1:.1} strays too far from truth {truth}"
    );

    let speedup = t1 / t8.max(1e-9);
    println!("speedup (t1/t8): {speedup:.2}x");

    if let Some(path) = json_path {
        let json = format!(
            "{{\"n\":{n},\"m\":{m},\"components\":{truth},\"build_s\":{build_s:.3},\
\"t1_s\":{t1:.3},\"t8_s\":{t8:.3},\"speedup\":{speedup:.3},\
\"value_t1\":{v1:.6},\"value_t8\":{v8:.6},\"identical\":true}}"
        );
        std::fs::write(&path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
    println!("scale smoke OK");
}
