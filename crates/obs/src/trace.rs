//! Request-scoped tracing: 128-bit trace ids minted at the serving boundary,
//! typed span events emitted into a bounded lock-free ring, and per-trace
//! assembly into a span tree.
//!
//! The hot-path contract is strict: with tracing disabled, every emission is
//! **one branch** (a relaxed load of the enabled flag) and nothing else; with
//! tracing enabled, an emission is one `fetch_add` to claim a slot plus a
//! handful of relaxed stores stamped by a per-slot sequence word (a seqlock),
//! so writers never block each other or readers. The ring is striped per
//! emitting thread (cacheline-aligned slots, thread-sticky stripes), so the
//! lines a worker dirties stay in its own core's cache rather than bouncing
//! between workers. The ring is bounded: old events are overwritten, dropped
//! counts are observable, and assembly of an evicted trace simply comes back
//! incomplete or absent — tracing is a diagnostic surface, never
//! backpressure.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// A 128-bit request trace id, rendered as 32 lowercase hex digits (the
/// `X-Ccdp-Trace` header value and the `/trace/{id}` path segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for TraceId {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        if s.is_empty() || s.len() > 32 {
            return Err(());
        }
        u128::from_str_radix(s, 16).map(TraceId).map_err(|_| ())
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic trace-id generator: a seed plus an atomic counter, so a
/// seeded test mints the same id sequence every run while production servers
/// seed from their config and stay collision-free across requests.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    counter: AtomicU64,
}

impl TraceIdGen {
    /// A generator whose mint sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TraceIdGen {
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Mints the next id (never zero).
    pub fn mint(&self) -> TraceId {
        let c = self.counter.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(self.seed ^ splitmix64(c));
        let lo = splitmix64(c.wrapping_mul(0xD131_0BA6_985F_F3A7) ^ self.seed.rotate_left(17));
        let id = ((hi as u128) << 64) | lo as u128;
        TraceId(if id == 0 { 1 } else { id })
    }
}

/// The typed span events a request emits on its way through the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Accepted into the worker queue (`aux` = queue depth after enqueue).
    Queued,
    /// Refused at submission with a full queue (the 429 path).
    QueueRefused,
    /// Picked up by a worker (`dur` = time spent queued).
    Dequeued,
    /// Budget ledger accepted the spend (`aux` = ε as `f64` bits).
    BudgetCharge,
    /// Budget ledger refused the spend (`aux` = ε as `f64` bits; 403 path).
    BudgetRefusal,
    /// Family cache hit.
    CacheHit,
    /// Family cache miss (`dur` = the family evaluation this trace led).
    CacheMiss,
    /// Family cache miss coalesced onto another trace's in-flight
    /// evaluation (`dur` = time spent waiting on the leader).
    CacheCoalesced,
    /// One solver phase (named; `dur` = phase wall clock).
    Phase,
    /// Release noise drawn (`aux` = words consumed from the prefetch batch).
    NoiseDraw,
    /// A release was produced (`dur` = worker handle time).
    Release,
    /// The request failed after dequeue (`dur` = worker handle time).
    Failed,
}

impl SpanKind {
    fn code(self) -> u64 {
        match self {
            SpanKind::Queued => 1,
            SpanKind::QueueRefused => 2,
            SpanKind::Dequeued => 3,
            SpanKind::BudgetCharge => 4,
            SpanKind::BudgetRefusal => 5,
            SpanKind::CacheHit => 6,
            SpanKind::CacheMiss => 7,
            SpanKind::CacheCoalesced => 8,
            SpanKind::Phase => 9,
            SpanKind::NoiseDraw => 10,
            SpanKind::Release => 11,
            SpanKind::Failed => 12,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => SpanKind::Queued,
            2 => SpanKind::QueueRefused,
            3 => SpanKind::Dequeued,
            4 => SpanKind::BudgetCharge,
            5 => SpanKind::BudgetRefusal,
            6 => SpanKind::CacheHit,
            7 => SpanKind::CacheMiss,
            8 => SpanKind::CacheCoalesced,
            9 => SpanKind::Phase,
            10 => SpanKind::NoiseDraw,
            11 => SpanKind::Release,
            12 => SpanKind::Failed,
            _ => return None,
        })
    }

    /// The stable span name this event assembles into.
    pub fn span_name(self) -> &'static str {
        match self {
            SpanKind::Queued => "queued",
            SpanKind::QueueRefused => "queue/refused",
            SpanKind::Dequeued => "dequeued",
            SpanKind::BudgetCharge => "budget/charge",
            SpanKind::BudgetRefusal => "budget/refusal",
            SpanKind::CacheHit => "cache/hit",
            SpanKind::CacheMiss => "cache/miss",
            SpanKind::CacheCoalesced => "cache/coalesced",
            SpanKind::Phase => "phase",
            SpanKind::NoiseDraw => "noise/draw",
            SpanKind::Release => "release",
            SpanKind::Failed => "failed",
        }
    }
}

/// One decoded event from the ring.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// What happened.
    pub kind: SpanKind,
    /// Phase name for [`SpanKind::Phase`] events, empty otherwise.
    pub name: String,
    /// Event time in microseconds since the tracer's epoch.
    pub at_micros: u64,
    /// Duration in nanoseconds (0 for instantaneous markers).
    pub dur_nanos: u64,
    /// Kind-specific payload (ε bits, queue depth, noise words).
    pub aux: u64,
}

const SLOT_WORDS: usize = 6;

/// One seqlocked ring slot: a stamp word plus the event fields. The stamp
/// holds `2·idx+1` while a writer owns the slot and `2·idx+2` once the
/// fields are complete, so readers detect both in-progress and reused slots.
///
/// Cacheline-aligned so an emission dirties exactly one line: the ring is
/// larger than cache, so every write is a read-for-ownership miss, and an
/// unaligned 56-byte slot would straddle two lines and pay that miss twice.
#[derive(Debug)]
#[repr(align(64))]
struct Slot {
    stamp: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// Ring stripes (power of two). Each emitting thread is pinned to one
/// stripe, so the cachelines a thread dirties stay in its own core's cache
/// instead of bouncing between workers: with a single shared ring,
/// consecutive slots are claimed by whichever worker emits next, and every
/// emission pays a cross-core read-for-ownership miss on a line some other
/// core wrote last.
const STRIPES: usize = 8;

/// One per-thread-group ring stripe: its own head and slot array. Aligned
/// so neighboring stripes' heads never share a cacheline.
#[repr(align(64))]
#[derive(Debug)]
struct Stripe {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// Round-robin thread → stripe coloring, assigned on a thread's first
/// emission and sticky for its lifetime. Process-global on purpose: stripe
/// affinity is about which *core* owns which cachelines, not about which
/// tracer is written.
fn thread_stripe() -> usize {
    use std::cell::Cell;
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            c.set(v);
        }
        v
    })
}

/// Default ring capacity: 64Ki events (8Ki per stripe) ≈ a few thousand
/// full request traces.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The bounded lock-free span ring plus the phase-name interner.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    stripes: Box<[Stripe]>,
    stripe_mask: u64,
    names: RwLock<Vec<String>>,
    name_ids: RwLock<HashMap<String, u32>>,
}

impl Tracer {
    /// A tracer with the default ring capacity, enabled.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer holding `capacity` events total, split evenly across the
    /// stripes (per-stripe capacity rounded up to a power of two, min 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_stripe = (capacity / STRIPES).max(8).next_power_of_two();
        Tracer {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    head: AtomicU64::new(0),
                    slots: (0..per_stripe).map(|_| Slot::new()).collect(),
                })
                .collect(),
            stripe_mask: per_stripe as u64 - 1,
            names: RwLock::new(Vec::new()),
            name_ids: RwLock::new(HashMap::new()),
        }
    }

    /// Whether emissions record anything. The load is the *entire* cost of
    /// a disabled emission.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (existing ring contents stay readable).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since this tracer's epoch.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Total events ever recorded (including since-overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.head
                    .load(Ordering::Relaxed)
                    .saturating_sub(s.slots.len() as u64)
            })
            .sum()
    }

    fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.read().unwrap().get(name) {
            return id;
        }
        let mut ids = self.name_ids.write().unwrap();
        if let Some(&id) = ids.get(name) {
            return id;
        }
        let mut names = self.names.write().unwrap();
        let id = names.len() as u32;
        names.push(name.to_string());
        ids.insert(name.to_string(), id);
        id
    }

    fn name_of(&self, id: u32) -> String {
        self.names
            .read()
            .unwrap()
            .get(id as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Emits an unnamed event. One branch when disabled.
    #[inline]
    pub fn emit(&self, trace: TraceId, kind: SpanKind, dur: Duration, aux: u64) {
        if !self.enabled() {
            return;
        }
        self.write(trace, kind, u32::MAX, dur, aux);
    }

    /// Emits a named [`SpanKind::Phase`] event. One branch when disabled.
    #[inline]
    pub fn emit_phase(&self, trace: TraceId, name: &str, dur: Duration) {
        if !self.enabled() {
            return;
        }
        let name_id = self.intern(name);
        self.write(trace, SpanKind::Phase, name_id, dur, 0);
    }

    /// Interns `name` and returns the id [`emit_phase_id`](Self::emit_phase_id)
    /// takes. Ids are stable for the tracer's lifetime, so an emission
    /// boundary that replays the same few phase names per request can cache
    /// them and skip the interner's lock on the hot path.
    pub fn intern_name(&self, name: &str) -> u32 {
        self.intern(name)
    }

    /// Emits a [`SpanKind::Phase`] event under a pre-interned name id. One
    /// branch when disabled.
    #[inline]
    pub fn emit_phase_id(&self, trace: TraceId, name_id: u32, dur: Duration) {
        if !self.enabled() {
            return;
        }
        self.write(trace, SpanKind::Phase, name_id, dur, 0);
    }

    fn write(&self, trace: TraceId, kind: SpanKind, name_id: u32, dur: Duration, aux: u64) {
        // Stored in nanoseconds and truncated to micros at decode: `as_micros`
        // is a u128 division, and this is the per-event hot path.
        let at = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let stripe = &self.stripes[thread_stripe()];
        let idx = stripe.head.fetch_add(1, Ordering::Relaxed);
        let slot = &stripe.slots[(idx & self.stripe_mask) as usize];
        // Pull the *next* slot's line toward this core now, so its
        // read-for-ownership miss overlaps with the request work between
        // emissions instead of stalling the next emission. Stripes make the
        // prefetch sound: the next slot of this stripe is written by this
        // thread, not by whichever worker emits next process-wide.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let next = &stripe.slots[((idx + 1) & self.stripe_mask) as usize];
            _mm_prefetch(next as *const Slot as *const i8, _MM_HINT_T0);
        }
        // Seqlock write: odd stamp while the fields are torn, then the final
        // even stamp published with release ordering.
        slot.stamp.store(idx * 2 + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.words[0].store(trace.0 as u64, Ordering::Relaxed);
        slot.words[1].store((trace.0 >> 64) as u64, Ordering::Relaxed);
        slot.words[2].store(kind.code() | ((name_id as u64) << 8), Ordering::Relaxed);
        slot.words[3].store(at, Ordering::Relaxed);
        slot.words[4].store(
            dur.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        slot.words[5].store(aux, Ordering::Relaxed);
        slot.stamp.store(idx * 2 + 2, Ordering::Release);
    }

    fn read_slot(&self, slot: &Slot) -> Option<(u64, [u64; SLOT_WORDS])> {
        let s1 = slot.stamp.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let mut words = [0u64; SLOT_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = slot.words[i].load(Ordering::Relaxed);
        }
        std::sync::atomic::fence(Ordering::Acquire);
        let s2 = slot.stamp.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        Some((s1 / 2 - 1, words))
    }

    fn decode(&self, words: [u64; SLOT_WORDS]) -> Option<SpanEvent> {
        let kind = SpanKind::from_code(words[2] & 0xFF)?;
        let name_id = (words[2] >> 8) as u32;
        Some(SpanEvent {
            trace: TraceId((words[0] as u128) | ((words[1] as u128) << 64)),
            kind,
            name: if kind == SpanKind::Phase && name_id != u32::MAX {
                self.name_of(name_id)
            } else {
                String::new()
            },
            at_micros: words[3] / 1000,
            dur_nanos: words[4],
            aux: words[5],
        })
    }

    /// All currently-held events, in emission order. Stripe-local indices
    /// only order events within a stripe, so the global order is the raw
    /// nanosecond timestamp, tie-broken by (stripe, index) for determinism.
    fn scan(&self) -> Vec<SpanEvent> {
        let mut raw = Vec::new();
        for (stripe_idx, stripe) in self.stripes.iter().enumerate() {
            for slot in stripe.slots.iter() {
                if let Some((idx, words)) = self.read_slot(slot) {
                    raw.push((words[3], stripe_idx, idx, words));
                }
            }
        }
        raw.sort_by_key(|&(at, stripe, idx, _)| (at, stripe, idx));
        raw.into_iter()
            .filter_map(|(_, _, _, words)| self.decode(words))
            .collect()
    }

    /// The events of one trace, in emission order.
    pub fn events(&self, trace: TraceId) -> Vec<SpanEvent> {
        self.scan()
            .into_iter()
            .filter(|ev| ev.trace == trace)
            .collect()
    }

    /// Assembles one trace's events into a span tree. `None` if the ring no
    /// longer holds any event of this trace.
    pub fn assemble(&self, trace: TraceId) -> Option<TraceTree> {
        let events = self.events(trace);
        if events.is_empty() {
            return None;
        }
        Some(assemble_tree(trace, &events))
    }

    /// The `n` slowest fully-finished traces currently in the ring (by
    /// first-event-to-last-event-end wall clock), slowest first.
    pub fn slowest(&self, n: usize) -> Vec<TraceSummary> {
        let mut per_trace: HashMap<TraceId, (u64, u64, usize, bool)> = HashMap::new();
        for ev in self.scan() {
            let end = ev.at_micros * 1000 + ev.dur_nanos;
            let entry = per_trace
                .entry(ev.trace)
                .or_insert((ev.at_micros, end, 0, false));
            entry.0 = entry.0.min(ev.at_micros);
            entry.1 = entry.1.max(end);
            entry.2 += 1;
            entry.3 |= matches!(
                ev.kind,
                SpanKind::Release | SpanKind::Failed | SpanKind::BudgetRefusal
            );
        }
        let mut summaries: Vec<TraceSummary> = per_trace
            .into_iter()
            .filter(|(_, (_, _, _, finished))| *finished)
            .map(|(id, (start, end, events, _))| TraceSummary {
                id,
                start_micros: start,
                total_nanos: end.saturating_sub(start * 1000),
                events,
            })
            .collect();
        summaries.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.id.cmp(&b.id)));
        summaries.truncate(n);
        summaries
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// A trace id bound to the tracer it emits into — the value threaded through
/// `ServeRequest` → worker → `EstimatorConfig` → release. Cloning shares the
/// tracer.
#[derive(Clone, Debug)]
pub struct TraceCtx {
    /// The request's trace id.
    pub id: TraceId,
    /// Where its events go.
    pub tracer: Arc<Tracer>,
}

impl TraceCtx {
    /// Binds an id to a tracer.
    pub fn new(id: TraceId, tracer: Arc<Tracer>) -> Self {
        TraceCtx { id, tracer }
    }

    /// Emits an instantaneous marker.
    #[inline]
    pub fn event(&self, kind: SpanKind) {
        self.tracer.emit(self.id, kind, Duration::ZERO, 0);
    }

    /// Emits a marker with a duration.
    #[inline]
    pub fn event_timed(&self, kind: SpanKind, dur: Duration) {
        self.tracer.emit(self.id, kind, dur, 0);
    }

    /// Emits a marker with a duration and payload.
    #[inline]
    pub fn event_full(&self, kind: SpanKind, dur: Duration, aux: u64) {
        self.tracer.emit(self.id, kind, dur, aux);
    }

    /// Emits a named solver-phase span.
    #[inline]
    pub fn phase(&self, name: &str, dur: Duration) {
        self.tracer.emit_phase(self.id, name, dur);
    }
}

/// One assembled span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Stable span name (`queued`, `cache/miss`, `phase/family/lp`, …).
    pub name: String,
    /// Start in microseconds since the tracer epoch.
    pub start_micros: u64,
    /// Duration in nanoseconds (0 for markers).
    pub duration_nanos: u64,
    /// Kind-specific detail (`ε=0.25`, `words=2`, `depth=3`).
    pub detail: Option<String>,
    /// Nested spans (solver phases under their cache miss).
    pub children: Vec<Span>,
}

/// A fully assembled trace.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The trace id.
    pub id: TraceId,
    /// First event time (µs since tracer epoch).
    pub start_micros: u64,
    /// First-event-to-last-event-end wall clock.
    pub total_nanos: u64,
    /// Top-level spans in time order.
    pub spans: Vec<Span>,
}

impl TraceTree {
    /// Every span name in the tree (depth-first), for skeleton assertions.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(spans: &[Span], out: &mut Vec<String>) {
            for s in spans {
                out.push(s.name.clone());
                walk(&s.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }
}

/// Digest of one trace for `slowest`-style rankings.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// The trace id.
    pub id: TraceId,
    /// First event time (µs since tracer epoch).
    pub start_micros: u64,
    /// First-event-to-last-event-end wall clock.
    pub total_nanos: u64,
    /// Events currently held for this trace.
    pub events: usize,
}

fn assemble_tree(id: TraceId, events: &[SpanEvent]) -> TraceTree {
    let start = events.iter().map(|e| e.at_micros).min().unwrap_or(0);
    let end = events
        .iter()
        .map(|e| e.at_micros * 1000 + e.dur_nanos)
        .max()
        .unwrap_or(0);
    let mut spans: Vec<Span> = Vec::new();
    for ev in events {
        let span = Span {
            name: match ev.kind {
                SpanKind::Phase => format!("phase/{}", ev.name),
                other => other.span_name().to_string(),
            },
            start_micros: ev.at_micros,
            duration_nanos: ev.dur_nanos,
            detail: match ev.kind {
                SpanKind::Queued => Some(format!("depth={}", ev.aux)),
                SpanKind::BudgetCharge | SpanKind::BudgetRefusal => {
                    Some(format!("epsilon={}", f64::from_bits(ev.aux)))
                }
                SpanKind::NoiseDraw => Some(format!("words={}", ev.aux)),
                _ => None,
            },
            children: Vec::new(),
        };
        // Solver phases from the family evaluation nest under the cache miss
        // that led it; release-side phases stay top-level.
        let nest_under_miss = ev.kind == SpanKind::Phase && ev.name.starts_with("family/");
        if nest_under_miss {
            if let Some(miss) = spans.iter_mut().rev().find(|s| s.name == "cache/miss") {
                miss.children.push(span);
                continue;
            }
        }
        spans.push(span);
    }
    TraceTree {
        id,
        start_micros: start,
        total_nanos: end.saturating_sub(start * 1000),
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_per_seed_and_round_trip() {
        let a = TraceIdGen::new(42);
        let b = TraceIdGen::new(42);
        let ids: Vec<TraceId> = (0..16).map(|_| a.mint()).collect();
        let again: Vec<TraceId> = (0..16).map(|_| b.mint()).collect();
        assert_eq!(ids, again);
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "no collisions in a short mint run");
        assert_ne!(TraceIdGen::new(43).mint(), ids[0]);
        for id in ids {
            assert_eq!(id.to_string().parse::<TraceId>().unwrap(), id);
            assert_eq!(id.to_string().len(), 32);
        }
        assert!("not-hex".parse::<TraceId>().is_err());
        assert!("".parse::<TraceId>().is_err());
    }

    #[test]
    fn emitted_events_assemble_into_the_request_skeleton() {
        let tracer = Arc::new(Tracer::new());
        let id = TraceIdGen::new(7).mint();
        let ctx = TraceCtx::new(id, Arc::clone(&tracer));
        ctx.event_full(SpanKind::Queued, Duration::ZERO, 3);
        ctx.event_timed(SpanKind::Dequeued, Duration::from_micros(120));
        ctx.event_full(SpanKind::BudgetCharge, Duration::ZERO, 0.25f64.to_bits());
        ctx.event_timed(SpanKind::CacheMiss, Duration::from_millis(4));
        ctx.phase("family/partition", Duration::from_millis(1));
        ctx.phase("family/lp", Duration::from_millis(2));
        ctx.phase("release/mechanisms", Duration::from_micros(80));
        ctx.event_full(SpanKind::NoiseDraw, Duration::from_micros(5), 2);
        ctx.event_timed(SpanKind::Release, Duration::from_millis(5));

        let tree = tracer.assemble(id).expect("trace is in the ring");
        let names = tree.span_names();
        assert_eq!(
            names,
            vec![
                "queued",
                "dequeued",
                "budget/charge",
                "cache/miss",
                "phase/family/partition",
                "phase/family/lp",
                "phase/release/mechanisms",
                "noise/draw",
                "release",
            ]
        );
        // Family phases are children of the miss; release phases are not.
        let miss = tree.spans.iter().find(|s| s.name == "cache/miss").unwrap();
        assert_eq!(miss.children.len(), 2);
        assert!(tree.total_nanos > 0);
        let budget = tree
            .spans
            .iter()
            .find(|s| s.name == "budget/charge")
            .unwrap();
        assert_eq!(budget.detail.as_deref(), Some("epsilon=0.25"));

        assert!(tracer.assemble(TraceId(0xDEAD)).is_none());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Arc::new(Tracer::new());
        tracer.set_enabled(false);
        let ctx = TraceCtx::new(TraceId(9), Arc::clone(&tracer));
        ctx.event(SpanKind::Queued);
        ctx.phase("family/lp", Duration::from_millis(1));
        assert_eq!(tracer.recorded(), 0);
        assert!(tracer.assemble(TraceId(9)).is_none());
        tracer.set_enabled(true);
        ctx.event(SpanKind::Queued);
        assert_eq!(tracer.recorded(), 1);
    }

    #[test]
    fn ring_wraps_and_counts_drops_without_blocking() {
        let tracer = Tracer::with_capacity(8);
        for i in 0..20u64 {
            tracer.emit(TraceId(i as u128 + 1), SpanKind::Queued, Duration::ZERO, 0);
        }
        assert_eq!(tracer.recorded(), 20);
        assert_eq!(tracer.dropped(), 12);
        // Only the newest 8 traces survive.
        assert!(tracer.assemble(TraceId(20)).is_some());
        assert!(tracer.assemble(TraceId(1)).is_none());
    }

    #[test]
    fn concurrent_emitters_never_corrupt_the_ring() {
        let tracer = Arc::new(Tracer::with_capacity(1024));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tracer = Arc::clone(&tracer);
                s.spawn(move || {
                    let ctx = TraceCtx::new(TraceId(t as u128 + 1), tracer);
                    for _ in 0..64 {
                        ctx.event(SpanKind::Queued);
                        ctx.event_timed(SpanKind::Release, Duration::from_micros(10));
                    }
                });
            }
        });
        assert_eq!(tracer.recorded(), 8 * 128);
        // Every decodable event carries a valid kind and one of the 8 ids.
        for t in 1..=8u128 {
            let events = tracer.events(TraceId(t));
            assert!(!events.is_empty());
            for ev in events {
                assert!(matches!(ev.kind, SpanKind::Queued | SpanKind::Release));
            }
        }
    }

    #[test]
    fn slowest_ranks_finished_traces_by_wall_clock() {
        let tracer = Arc::new(Tracer::new());
        for (id, ms) in [(1u128, 5u64), (2, 50), (3, 1)] {
            let ctx = TraceCtx::new(TraceId(id), Arc::clone(&tracer));
            ctx.event(SpanKind::Queued);
            ctx.event_timed(SpanKind::Release, Duration::from_millis(ms));
        }
        // An unfinished trace never ranks.
        tracer.emit(TraceId(99), SpanKind::Queued, Duration::ZERO, 0);
        let top = tracer.slowest(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, TraceId(2));
        assert!(top[0].total_nanos >= top[1].total_nanos);
        assert!(tracer.slowest(10).iter().all(|t| t.id != TraceId(99)));
    }
}
