//! Per-tenant SLOs: declarative objectives, multi-window rolling
//! counters, and burn-rate alerting.
//!
//! An [`SloSpec`] declares one objective — availability, p99 latency, or
//! the DP-native one, **budget burn rate vs. quota horizon** — evaluated
//! over one or more rolling windows. The [`SloEngine`] keeps per-tenant
//! time-bucketed counters (requests, failures, granted ε, a log-bucket
//! latency histogram), evaluates every `(spec, tenant, window)` triple on
//! demand, and emits a typed [`SloAlert`] the moment a triple breaches —
//! deduplicated, so a continuously-breached objective fires once until it
//! recovers. Fired alerts are appended to the engine's history and, when
//! a journal is attached, recorded as [`AuditKind::SloAlert`] events so
//! `GET /audit/{tenant}` shows a tenant's alerts next to their spends.
//!
//! Burn rate is the SRE multi-window construction transplanted to ε:
//! a tenant with quota `Q` and horizon `H` sustains burn rate 1.0 when
//! they spend `Q / H` per unit time; the measured rate over a window `W`
//! is `(ε spent in W) / W ÷ (Q / H)`. Burning at 14× over a short window
//! is how "this tenant exhausts their quota today" is caught while the
//! quota is still mostly intact.
//!
//! Time is injectable — every entry point takes explicit microseconds —
//! so property tests drive the windows deterministically; the serving
//! tier passes wall-clock micros.

use crate::audit::{AuditEvent, AuditJournal, AuditKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Latency histogram log-buckets per time bucket (micros, powers of two).
const LAT_BUCKETS: usize = 40;

/// Minimum request samples in a window before availability / latency
/// objectives are judged (no alerting on one unlucky request).
const MIN_WINDOW_SAMPLES: u64 = 10;

/// What one SLO promises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Fraction of requests (completed / all finished) must stay at or
    /// above this ratio.
    Availability {
        /// Minimum acceptable success ratio in `[0, 1]`.
        min_success_ratio: f64,
    },
    /// The p99 request latency must stay at or below this bound.
    LatencyP99 {
        /// Maximum acceptable p99, in microseconds.
        max_micros: u64,
    },
    /// ε spend rate, normalized by the tenant's quota-per-horizon pace,
    /// must stay at or below `max_burn`.
    BurnRate {
        /// The quota amortization horizon, in microseconds.
        horizon_micros: u64,
        /// Maximum acceptable burn-rate multiplier (1.0 = exactly on
        /// pace to exhaust the quota at the horizon).
        max_burn: f64,
    },
}

impl SloObjective {
    /// The stable snake_case name of this objective kind.
    pub fn name(self) -> &'static str {
        match self {
            SloObjective::Availability { .. } => "availability",
            SloObjective::LatencyP99 { .. } => "latency_p99",
            SloObjective::BurnRate { .. } => "burn_rate",
        }
    }
}

/// One declared SLO: a named objective over one or more rolling windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable name, used in alerts and surfaces (e.g. `"burn-fast"`).
    pub name: String,
    /// The promise being evaluated.
    pub objective: SloObjective,
    /// Rolling windows to evaluate over, in microseconds. Multi-window
    /// is the standard burn-rate construction: a short window catches
    /// spikes, a long one catches slow leaks.
    pub windows_micros: Vec<u64>,
}

impl SloSpec {
    /// A spec with one window.
    pub fn new(name: impl Into<String>, objective: SloObjective, window_micros: u64) -> Self {
        SloSpec {
            name: name.into(),
            objective,
            windows_micros: vec![window_micros],
        }
    }

    /// Adds another evaluation window.
    pub fn with_window(mut self, window_micros: u64) -> Self {
        self.windows_micros.push(window_micros);
        self
    }
}

/// One fired SLO breach.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// The breaching spec's name.
    pub spec: String,
    /// The tenant that breached.
    pub tenant: String,
    /// The objective kind (`availability`, `latency_p99`, `burn_rate`).
    pub objective: &'static str,
    /// The window that breached, in microseconds.
    pub window_micros: u64,
    /// The measured value (ratio, p99 micros, or burn multiplier).
    pub measured: f64,
    /// The declared threshold it crossed.
    pub threshold: f64,
    /// When the breach was evaluated, in micros since the epoch.
    pub at_micros: u64,
    /// Human-readable summary.
    pub message: String,
}

/// The current reading of one `(spec, tenant, window)` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub spec: String,
    /// The tenant evaluated.
    pub tenant: String,
    /// The objective kind name.
    pub objective: &'static str,
    /// The window evaluated, in microseconds.
    pub window_micros: u64,
    /// The measured value (see [`SloAlert::measured`]).
    pub measured: f64,
    /// The declared threshold.
    pub threshold: f64,
    /// Whether the triple is currently in breach.
    pub breached: bool,
    /// Finished requests observed in the window.
    pub samples: u64,
}

/// One request-path observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObservation {
    /// A request finished successfully.
    Success {
        /// End-to-end latency in microseconds.
        latency_micros: u64,
    },
    /// A request failed (estimator failure — budget refusals are *not*
    /// availability failures; refusing an over-budget tenant is the
    /// service working).
    Failure {
        /// End-to-end latency in microseconds.
        latency_micros: u64,
    },
    /// ε was granted to the tenant.
    BudgetSpend {
        /// The granted ε.
        epsilon: f64,
    },
}

/// One time bucket of a tenant's rolling window.
#[derive(Debug, Clone)]
struct Bucket {
    /// Absolute bucket index this slot currently holds (`micros / width`).
    stamp: u64,
    ok: u64,
    err: u64,
    epsilon: f64,
    latency: [u32; LAT_BUCKETS],
}

impl Bucket {
    fn empty() -> Self {
        Bucket {
            stamp: u64::MAX,
            ok: 0,
            err: 0,
            epsilon: 0.0,
            latency: [0; LAT_BUCKETS],
        }
    }

    fn reset(&mut self, stamp: u64) {
        self.stamp = stamp;
        self.ok = 0;
        self.err = 0;
        self.epsilon = 0.0;
        self.latency = [0; LAT_BUCKETS];
    }
}

/// Per-tenant state: the declared quota and the bucket ring.
struct TenantTrack {
    quota_epsilon: f64,
    buckets: Vec<Bucket>,
}

/// Aggregate of the buckets inside one window.
#[derive(Debug, Clone, Copy)]
struct WindowSum {
    ok: u64,
    err: u64,
    epsilon: f64,
    latency: [u64; LAT_BUCKETS],
}

/// The per-tenant SLO evaluator.
///
/// `observe_at` is the hot path (one mutex, a few adds); `evaluate_at`
/// and `statuses_at` walk every `(spec, tenant, window)` triple and are
/// meant for scrape-rate callers (`GET /slo`, the CLI, CI smokes).
pub struct SloEngine {
    bucket_micros: u64,
    specs: Mutex<Vec<SloSpec>>,
    tenants: Mutex<HashMap<String, TenantTrack>>,
    /// `(spec, tenant, window)` triples currently in breach — the dedup
    /// set: an alert fires on the healthy→breached edge only.
    active: Mutex<Vec<(String, String, u64)>>,
    alerts: Mutex<Vec<SloAlert>>,
    journal: Mutex<Option<Arc<AuditJournal>>>,
    num_buckets: usize,
}

/// Default bucket width: 250 ms.
pub const DEFAULT_SLO_BUCKET_MICROS: u64 = 250_000;
/// Default ring length: 256 buckets (64 s of history at the default
/// width).
pub const DEFAULT_SLO_BUCKETS: usize = 256;

impl SloEngine {
    /// An engine with the default bucket geometry and no specs.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SLO_BUCKET_MICROS, DEFAULT_SLO_BUCKETS)
    }

    /// An engine with explicit bucket width and ring length; the longest
    /// evaluable window is `bucket_micros * num_buckets`.
    pub fn with_geometry(bucket_micros: u64, num_buckets: usize) -> Self {
        SloEngine {
            bucket_micros: bucket_micros.max(1),
            specs: Mutex::new(Vec::new()),
            tenants: Mutex::new(HashMap::new()),
            active: Mutex::new(Vec::new()),
            alerts: Mutex::new(Vec::new()),
            journal: Mutex::new(None),
            num_buckets: num_buckets.max(2),
        }
    }

    /// Attaches the audit journal fired alerts are recorded into.
    pub fn set_journal(&self, journal: Arc<AuditJournal>) {
        *self.journal.lock().unwrap_or_else(|p| p.into_inner()) = Some(journal);
    }

    /// Declares (or replaces, by name) one SLO.
    pub fn add_spec(&self, spec: SloSpec) {
        let mut specs = self.specs.lock().unwrap_or_else(|p| p.into_inner());
        specs.retain(|s| s.name != spec.name);
        specs.push(spec);
    }

    /// The currently declared specs.
    pub fn specs(&self) -> Vec<SloSpec> {
        self.specs.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Declares a tenant's ε quota (the burn-rate denominator). Also
    /// creates the tenant's window state so `/slo` shows them before
    /// their first request.
    pub fn set_quota(&self, tenant: &str, quota_epsilon: f64) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let track = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantTrack {
                quota_epsilon: 0.0,
                buckets: vec![Bucket::empty(); self.num_buckets],
            });
        track.quota_epsilon = quota_epsilon;
    }

    /// Records one observation for `tenant` at the given wall-clock
    /// microseconds.
    pub fn observe_at(&self, tenant: &str, at_micros: u64, observation: SloObservation) {
        let stamp = at_micros / self.bucket_micros;
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let num_buckets = self.num_buckets;
        let track = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantTrack {
                quota_epsilon: 0.0,
                buckets: vec![Bucket::empty(); num_buckets],
            });
        let slot = (stamp % track.buckets.len() as u64) as usize;
        let bucket = &mut track.buckets[slot];
        if bucket.stamp != stamp {
            bucket.reset(stamp);
        }
        match observation {
            SloObservation::Success { latency_micros } => {
                bucket.ok += 1;
                bucket.latency[latency_bucket(latency_micros)] += 1;
            }
            SloObservation::Failure { latency_micros } => {
                bucket.err += 1;
                bucket.latency[latency_bucket(latency_micros)] += 1;
            }
            SloObservation::BudgetSpend { epsilon } => bucket.epsilon += epsilon,
        }
    }

    /// Sums a tenant's buckets falling inside `[now - window, now]`.
    fn window_sum(&self, track: &TenantTrack, at_micros: u64, window_micros: u64) -> WindowSum {
        let now_stamp = at_micros / self.bucket_micros;
        let window_buckets = (window_micros / self.bucket_micros)
            .max(1)
            .min(track.buckets.len() as u64);
        let oldest = now_stamp.saturating_sub(window_buckets - 1);
        let mut sum = WindowSum {
            ok: 0,
            err: 0,
            epsilon: 0.0,
            latency: [0; LAT_BUCKETS],
        };
        for bucket in &track.buckets {
            if bucket.stamp >= oldest && bucket.stamp <= now_stamp {
                sum.ok += bucket.ok;
                sum.err += bucket.err;
                sum.epsilon += bucket.epsilon;
                for (acc, v) in sum.latency.iter_mut().zip(bucket.latency.iter()) {
                    *acc += *v as u64;
                }
            }
        }
        sum
    }

    /// Measures one `(spec, tenant, window)` triple. Returns
    /// `(measured, threshold, breached, samples)`, or `None` when the
    /// triple is not judgeable yet (too few samples, or no quota for a
    /// burn-rate objective).
    fn measure(
        &self,
        spec: &SloSpec,
        track: &TenantTrack,
        at_micros: u64,
        window_micros: u64,
    ) -> Option<(f64, f64, bool, u64)> {
        let sum = self.window_sum(track, at_micros, window_micros);
        let samples = sum.ok + sum.err;
        match spec.objective {
            SloObjective::Availability { min_success_ratio } => {
                if samples < MIN_WINDOW_SAMPLES {
                    return None;
                }
                let measured = sum.ok as f64 / samples as f64;
                Some((
                    measured,
                    min_success_ratio,
                    measured < min_success_ratio,
                    samples,
                ))
            }
            SloObjective::LatencyP99 { max_micros } => {
                if samples < MIN_WINDOW_SAMPLES {
                    return None;
                }
                let measured = latency_percentile(&sum.latency, 0.99) as f64;
                Some((
                    measured,
                    max_micros as f64,
                    measured > max_micros as f64,
                    samples,
                ))
            }
            SloObjective::BurnRate {
                horizon_micros,
                max_burn,
            } => {
                if track.quota_epsilon <= 0.0 || horizon_micros == 0 {
                    return None;
                }
                let window = window_micros.max(1) as f64;
                let pace = track.quota_epsilon / horizon_micros as f64; // ε per µs at burn 1.0
                let measured = (sum.epsilon / window) / pace;
                Some((measured, max_burn, measured > max_burn, samples))
            }
        }
    }

    /// Evaluates every `(spec, tenant, window)` triple at the given
    /// time; returns the alerts that fired *on this call* (healthy →
    /// breached edges). Recovered triples re-arm silently.
    pub fn evaluate_at(&self, at_micros: u64) -> Vec<SloAlert> {
        let specs = self.specs();
        let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        let mut fired = Vec::new();
        for spec in &specs {
            for (tenant, track) in tenants.iter() {
                for &window in &spec.windows_micros {
                    let Some((measured, threshold, breached, _)) =
                        self.measure(spec, track, at_micros, window)
                    else {
                        continue;
                    };
                    let key = (spec.name.clone(), tenant.clone(), window);
                    let was_active = active.contains(&key);
                    if breached && !was_active {
                        active.push(key);
                        let alert = SloAlert {
                            spec: spec.name.clone(),
                            tenant: tenant.clone(),
                            objective: spec.objective.name(),
                            window_micros: window,
                            measured,
                            threshold,
                            at_micros,
                            message: format!(
                                "slo `{}` breached for tenant `{tenant}`: {} {measured:.4} \
                                 vs threshold {threshold:.4} over {:.1}s window",
                                spec.name,
                                spec.objective.name(),
                                window as f64 / 1e6,
                            ),
                        };
                        fired.push(alert);
                    } else if !breached && was_active {
                        active.retain(|k| k != &key);
                    }
                }
            }
        }
        drop(tenants);
        drop(active);
        if !fired.is_empty() {
            let journal = self
                .journal
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            let mut alerts = self.alerts.lock().unwrap_or_else(|p| p.into_inner());
            for alert in &fired {
                if let Some(journal) = &journal {
                    journal.record(
                        AuditEvent::new(AuditKind::SloAlert)
                            .tenant(&alert.tenant)
                            .stage(&alert.spec)
                            .epsilon(alert.threshold, alert.measured)
                            .detail(&alert.message),
                    );
                }
                alerts.push(alert.clone());
            }
        }
        fired
    }

    /// The current reading of every judgeable `(spec, tenant, window)`
    /// triple, tenants and specs in sorted order.
    pub fn statuses_at(&self, at_micros: u64) -> Vec<SloStatus> {
        let mut specs = self.specs();
        specs.sort_by(|a, b| a.name.cmp(&b.name));
        let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let mut out = Vec::new();
        for spec in &specs {
            for tenant in &names {
                let track = &tenants[*tenant];
                for &window in &spec.windows_micros {
                    if let Some((measured, threshold, breached, samples)) =
                        self.measure(spec, track, at_micros, window)
                    {
                        out.push(SloStatus {
                            spec: spec.name.clone(),
                            tenant: (*tenant).clone(),
                            objective: spec.objective.name(),
                            window_micros: window,
                            measured,
                            threshold,
                            breached,
                            samples,
                        });
                    }
                }
            }
        }
        out
    }

    /// Every alert fired over the engine's lifetime, in firing order.
    pub fn alerts(&self) -> Vec<SloAlert> {
        self.alerts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

impl Default for SloEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("bucket_micros", &self.bucket_micros)
            .field("num_buckets", &self.num_buckets)
            .field("specs", &self.specs())
            .finish()
    }
}

/// The log₂ bucket a latency belongs to.
fn latency_bucket(micros: u64) -> usize {
    (64 - micros.max(1).leading_zeros() as usize - 1).min(LAT_BUCKETS - 1)
}

/// Percentile from the log-bucket histogram, reported as the upper bound
/// of the bucket the percentile lands in (never under-reports).
fn latency_percentile(latency: &[u64; LAT_BUCKETS], q: f64) -> u64 {
    let total: u64 = latency.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0;
    for (idx, count) in latency.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (idx + 1);
        }
    }
    1u64 << LAT_BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000;

    #[test]
    fn burn_rate_fires_once_and_rearms_after_recovery() {
        let engine = SloEngine::with_geometry(SEC, 64);
        engine.add_spec(SloSpec::new(
            "burn-fast",
            SloObjective::BurnRate {
                horizon_micros: 3600 * SEC,
                max_burn: 2.0,
            },
            10 * SEC,
        ));
        engine.set_quota("alpha", 36.0); // pace: 0.01 ε/s at burn 1.0
                                         // Spend 1 ε in a 10 s window: rate 0.1 ε/s = burn 10 > 2.
        let t0 = 1000 * SEC;
        engine.observe_at("alpha", t0, SloObservation::BudgetSpend { epsilon: 1.0 });
        let fired = engine.evaluate_at(t0);
        assert_eq!(fired.len(), 1, "burn breach fires one alert");
        assert_eq!(fired[0].objective, "burn_rate");
        assert!(fired[0].measured > fired[0].threshold);
        // Still breached: deduped.
        assert!(engine.evaluate_at(t0 + SEC).is_empty());
        // The spend ages out of the window: recovered, re-armed.
        assert!(engine.evaluate_at(t0 + 30 * SEC).is_empty());
        engine.observe_at(
            "alpha",
            t0 + 40 * SEC,
            SloObservation::BudgetSpend { epsilon: 1.0 },
        );
        assert_eq!(
            engine.evaluate_at(t0 + 40 * SEC).len(),
            1,
            "re-fires after recovery"
        );
        assert_eq!(engine.alerts().len(), 2);
    }

    #[test]
    fn availability_needs_samples_and_judges_the_ratio() {
        let engine = SloEngine::with_geometry(SEC, 64);
        engine.add_spec(SloSpec::new(
            "avail",
            SloObjective::Availability {
                min_success_ratio: 0.9,
            },
            10 * SEC,
        ));
        let t0 = 500 * SEC;
        // 5 failures alone: below MIN_WINDOW_SAMPLES, not judged.
        for _ in 0..5 {
            engine.observe_at(
                "a",
                t0,
                SloObservation::Failure {
                    latency_micros: 100,
                },
            );
        }
        assert!(engine.evaluate_at(t0).is_empty());
        assert!(engine.statuses_at(t0).is_empty());
        // 15 successes + 5 failures = 0.75 < 0.9: breach.
        for _ in 0..15 {
            engine.observe_at(
                "a",
                t0,
                SloObservation::Success {
                    latency_micros: 100,
                },
            );
        }
        let fired = engine.evaluate_at(t0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].objective, "availability");
        assert!((fired[0].measured - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_p99_uses_bucket_upper_bounds() {
        let engine = SloEngine::with_geometry(SEC, 64);
        engine.add_spec(SloSpec::new(
            "p99",
            SloObjective::LatencyP99 { max_micros: 1000 },
            10 * SEC,
        ));
        let t0 = 100 * SEC;
        for _ in 0..99 {
            engine.observe_at(
                "a",
                t0,
                SloObservation::Success {
                    latency_micros: 100,
                },
            );
        }
        assert!(engine.evaluate_at(t0).is_empty(), "fast tail: no breach");
        for _ in 0..20 {
            engine.observe_at(
                "a",
                t0,
                SloObservation::Success {
                    latency_micros: 50_000,
                },
            );
        }
        let fired = engine.evaluate_at(t0);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].measured >= 50_000.0, "p99 covers the slow cohort");
    }

    #[test]
    fn alerts_land_in_the_attached_journal() {
        let engine = SloEngine::with_geometry(SEC, 64);
        let journal = Arc::new(AuditJournal::with_capacity(32));
        engine.set_journal(Arc::clone(&journal));
        engine.add_spec(SloSpec::new(
            "burn",
            SloObjective::BurnRate {
                horizon_micros: 3600 * SEC,
                max_burn: 1.0,
            },
            10 * SEC,
        ));
        engine.set_quota("alpha", 1.0);
        engine.observe_at("alpha", SEC, SloObservation::BudgetSpend { epsilon: 0.5 });
        assert_eq!(engine.evaluate_at(SEC).len(), 1);
        let events = journal.events_for_tenant("alpha");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AuditKind::SloAlert);
        assert!(events[0].detail.contains("burn"));
    }

    #[test]
    fn multi_window_judges_each_window_independently() {
        let engine = SloEngine::with_geometry(SEC, 128);
        engine.add_spec(
            SloSpec::new(
                "burn",
                SloObjective::BurnRate {
                    horizon_micros: 1000 * SEC,
                    max_burn: 1.5,
                },
                5 * SEC,
            )
            .with_window(60 * SEC),
        );
        engine.set_quota("a", 100.0); // pace 0.1 ε/s
                                      // One 2 ε spike: 5 s window sees 0.4 ε/s = burn 4 (breach);
                                      // 60 s window sees 0.033 ε/s = burn 0.33 (healthy).
        let t0 = 200 * SEC;
        engine.observe_at("a", t0, SloObservation::BudgetSpend { epsilon: 2.0 });
        let fired = engine.evaluate_at(t0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].window_micros, 5 * SEC);
        let statuses = engine.statuses_at(t0);
        assert_eq!(statuses.len(), 2);
        assert!(statuses
            .iter()
            .any(|s| s.window_micros == 60 * SEC && !s.breached));
    }
}
