//! The unified metrics registry: named counters, gauges and log-bucket
//! histograms with a stable snapshot API and a Prometheus-style text
//! exposition.
//!
//! Every instrument is a cheap cloneable handle over an `Arc`'d atomic; the
//! registry owns one clone per series so a scrape sees every increment ever
//! made through any handle. Handles can also be created *detached* (no
//! registry), which lets a subsystem keep a single code path — always bump
//! the handle — whether or not anyone wired it into an exposition.
//!
//! Naming convention (see `crates/obs/README.md`):
//! `ccdp_<layer>_<thing>_{total,seconds}` with at most one label dimension.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of octaves (powers of two of microseconds) a [`LogHistogram`]
/// spans: 1 µs up to ~2^40 µs ≈ 12.7 days.
const OCTAVES: usize = 40;
/// Sub-buckets per octave: one eighth of an octave, bounding the relative
/// quantile error at 12.5%.
const SUBS: usize = 8;
/// Total bucket count of a [`LogHistogram`].
pub const NUM_BUCKETS: usize = OCTAVES * SUBS;

/// A monotone `u64` counter handle. Cloning shares the underlying atomic.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) owned by any registry.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one (relaxed; pair with explicit fences where ordering against
    /// other counters matters).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotone `f64` counter handle (seconds, epsilons): CAS-add over the
/// bit pattern, lock-free.
#[derive(Clone, Debug)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// A float counter not (yet) owned by any registry.
    pub fn detached() -> Self {
        FloatCounter(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Adds `v` with a CAS loop (lock-free; contention retries are rare at
    /// serving rates).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A signed gauge handle (queue depths, entry counts).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not (yet) owned by any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative); returns the new value.
    #[inline]
    pub fn add(&self, d: i64) -> i64 {
        self.0.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Raises the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-size, lock-free histogram of durations with log-spaced buckets —
/// the serving tier's `LatencyHistogram` bucketing, lifted here so every
/// layer shares one scheme.
///
/// Bucket `i = octave · 8 + sub` covers
/// `[2^octave · (1 + sub/8), 2^octave · (1 + (sub+1)/8))` microseconds;
/// quantiles report a bucket's upper edge, so they are conservative (never
/// under-report) and within 12.5% of the exact sample quantile above ~8 µs.
/// Below 8 µs the integer-microsecond bucket edges dominate: the error is
/// bounded by 1 µs absolute instead (e.g. all-1 µs samples report 2 µs).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    sum_nanos: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration (sub-microsecond values land in the first
    /// bucket; values beyond the range land in the last). Lock-free: two
    /// relaxed atomic adds.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of everything recorded so far:
    /// the upper edge of the bucket where the cumulative count crosses the
    /// rank. `Duration::ZERO` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        bucket_percentile(&self.counts(), q)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all recorded durations in seconds (saturating at ~584 years).
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Which bucket a microsecond value lands in.
    pub fn index(us: u64) -> usize {
        let us = us.max(1);
        let octave = 63 - us.leading_zeros() as usize;
        if octave >= OCTAVES {
            return NUM_BUCKETS - 1;
        }
        let base = 1u64 << octave;
        // (us - base) * SUBS / base, exact in u64: us - base < 2^40.
        let sub = (((us - base) * SUBS as u64) >> octave) as usize;
        octave * SUBS + sub.min(SUBS - 1)
    }

    /// Exclusive upper edge of bucket `idx` in microseconds. The division
    /// rounds up so the edge stays exclusive even in the lowest octaves,
    /// where an eighth of the octave is below one microsecond.
    pub fn upper_edge_us(idx: usize) -> u64 {
        let (octave, sub) = (idx / SUBS, idx % SUBS);
        let base = 1u64 << octave;
        base + ((sub as u64 + 1) * base).div_ceil(SUBS as u64)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank percentile over a bucket-count vector: the upper edge of the
/// bucket where the cumulative count crosses the rank.
pub fn bucket_percentile(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (idx, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Duration::from_micros(LogHistogram::upper_edge_us(idx));
        }
    }
    Duration::from_micros(LogHistogram::upper_edge_us(NUM_BUCKETS - 1))
}

/// One instrument as stored in the registry.
#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Float(FloatCounter),
    Gauge(Gauge),
    Histogram(Arc<LogHistogram>),
}

type SeriesKey = (String, Vec<(String, String)>);

/// The process-wide (or per-server) registry every telemetry island
/// registers into. `get-or-create` by `(name, labels)`: two subsystems
/// asking for the same series share one atomic, so a scrape is always the
/// whole truth.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: RwLock<HashMap<SeriesKey, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        (
            name.to_string(),
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        )
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let key = Self::key(name, labels);
        if let Some(found) = self.series.read().unwrap().get(&key) {
            return found.clone();
        }
        let mut map = self.series.write().unwrap();
        map.entry(key).or_insert_with(make).clone()
    }

    /// Get-or-create a counter series (no labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create a labeled counter series.
    ///
    /// # Panics
    /// If the series exists with a different instrument kind — that is a
    /// naming bug, not a runtime condition.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Instrument::Counter(Counter::detached())) {
            Instrument::Counter(c) => c,
            other => panic!("series `{name}` already registered as {other:?}, wanted counter"),
        }
    }

    /// Get-or-create a float counter series (no labels).
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        self.float_counter_with(name, &[])
    }

    /// Get-or-create a labeled float counter series.
    pub fn float_counter_with(&self, name: &str, labels: &[(&str, &str)]) -> FloatCounter {
        match self.get_or_insert(name, labels, || Instrument::Float(FloatCounter::detached())) {
            Instrument::Float(c) => c,
            other => {
                panic!("series `{name}` already registered as {other:?}, wanted float counter")
            }
        }
    }

    /// Get-or-create a gauge series (no labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a labeled gauge series.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Instrument::Gauge(Gauge::detached())) {
            Instrument::Gauge(g) => g,
            other => panic!("series `{name}` already registered as {other:?}, wanted gauge"),
        }
    }

    /// Registers an *existing* counter handle under `name` (no labels),
    /// preserving every increment made before the subsystem was wired into
    /// a registry. If the series already exists, the registered handle wins
    /// and is returned — the caller should swap to it.
    pub fn adopt_counter(&self, name: &str, handle: &Counter) -> Counter {
        match self.get_or_insert(name, &[], || Instrument::Counter(handle.clone())) {
            Instrument::Counter(c) => c,
            other => panic!("series `{name}` already registered as {other:?}, wanted counter"),
        }
    }

    /// Registers an existing float-counter handle under `name` (no labels);
    /// see [`MetricsRegistry::adopt_counter`].
    pub fn adopt_float_counter(&self, name: &str, handle: &FloatCounter) -> FloatCounter {
        match self.get_or_insert(name, &[], || Instrument::Float(handle.clone())) {
            Instrument::Float(c) => c,
            other => {
                panic!("series `{name}` already registered as {other:?}, wanted float counter")
            }
        }
    }

    /// Registers an existing gauge handle under `name` (no labels); see
    /// [`MetricsRegistry::adopt_counter`].
    pub fn adopt_gauge(&self, name: &str, handle: &Gauge) -> Gauge {
        match self.get_or_insert(name, &[], || Instrument::Gauge(handle.clone())) {
            Instrument::Gauge(g) => g,
            other => panic!("series `{name}` already registered as {other:?}, wanted gauge"),
        }
    }

    /// Get-or-create a histogram series (no labels).
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a labeled histogram series.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LogHistogram> {
        match self.get_or_insert(name, labels, || {
            Instrument::Histogram(Arc::new(LogHistogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("series `{name}` already registered as {other:?}, wanted histogram"),
        }
    }

    /// A stable (name-then-label sorted) point-in-time snapshot of every
    /// registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut series: Vec<SeriesSnapshot> = self
            .series
            .read()
            .unwrap()
            .iter()
            .map(|((name, labels), inst)| SeriesSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SeriesValue::Counter(c.get()),
                    Instrument::Float(f) => SeriesValue::Float(f.get()),
                    Instrument::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SeriesValue::Histogram(HistogramSnapshot {
                        count: h.count(),
                        sum_seconds: h.sum_seconds(),
                        p50_seconds: h.quantile(0.50).as_secs_f64(),
                        p90_seconds: h.quantile(0.90).as_secs_f64(),
                        p99_seconds: h.quantile(0.99).as_secs_f64(),
                    }),
                },
            })
            .collect();
        series.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { series }
    }

    /// Prometheus-style text exposition (the `GET /metrics` body): one
    /// `# TYPE` line per metric name, histograms rendered as summaries
    /// (`{quantile=...}`, `_count`, `_sum`), terminated by the `# EOF`
    /// marker strict scrapers require (served with
    /// `Content-Type: text/plain; version=0.0.4`).
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &snapshot.series {
            if last_name != Some(s.name.as_str()) {
                let kind = match s.value {
                    SeriesValue::Counter(_) | SeriesValue::Float(_) => "counter",
                    SeriesValue::Gauge(_) => "gauge",
                    SeriesValue::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = writeln!(out, "{} {}", render_key(&s.name, &s.labels, &[]), v);
                }
                SeriesValue::Float(v) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&s.name, &s.labels, &[]),
                        fmt_f64(*v)
                    );
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", render_key(&s.name, &s.labels, &[]), v);
                }
                SeriesValue::Histogram(h) => {
                    for (q, v) in [
                        ("0.5", h.p50_seconds),
                        ("0.9", h.p90_seconds),
                        ("0.99", h.p99_seconds),
                    ] {
                        let _ = writeln!(
                            out,
                            "{} {}",
                            render_key(&s.name, &s.labels, &[("quantile", q)]),
                            fmt_f64(v)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&format!("{}_count", s.name), &s.labels, &[]),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&format!("{}_sum", s.name), &s.labels, &[]),
                        fmt_f64(h.sum_seconds)
                    );
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn fmt_f64(v: f64) -> String {
    // Enough precision to round-trip serving-scale values; no exponent
    // notation so the scrape parser stays trivial.
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn render_key(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
    format!("{name}{{{}}}", parts.join(","))
}

/// Point-in-time value of one series.
#[derive(Clone, Debug)]
pub struct SeriesSnapshot {
    /// Metric name (`ccdp_<layer>_<thing>_{total,seconds}`).
    pub name: String,
    /// Label dimensions (at most one by convention).
    pub labels: Vec<(String, String)>,
    /// The value, typed by instrument kind.
    pub value: SeriesValue,
}

/// A snapshot value, typed by instrument kind.
#[derive(Clone, Debug)]
pub enum SeriesValue {
    /// Monotone integer counter.
    Counter(u64),
    /// Monotone float counter.
    Float(f64),
    /// Signed gauge.
    Gauge(i64),
    /// Log-bucket histogram digest.
    Histogram(HistogramSnapshot),
}

/// Digest of a histogram at snapshot time.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in seconds.
    pub sum_seconds: f64,
    /// Median (bucket upper edge, conservative).
    pub p50_seconds: f64,
    /// 90th percentile.
    pub p90_seconds: f64,
    /// 99th percentile.
    pub p99_seconds: f64,
}

/// A stable, sorted point-in-time snapshot of a whole registry.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels)`.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// The scalar value of the unlabeled series `name` (counters and floats
    /// and gauges; histograms report their count), if registered.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v as f64,
                SeriesValue::Float(v) => *v,
                SeriesValue::Gauge(v) => *v as f64,
                SeriesValue::Histogram(h) => h.count as f64,
            })
    }

    /// Sum of the scalar values of every series named `name` across all
    /// label values (for cross-island consistency checks).
    pub fn sum(&self, name: &str) -> f64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v as f64,
                SeriesValue::Float(v) => *v,
                SeriesValue::Gauge(v) => *v as f64,
                SeriesValue::Histogram(h) => h.count as f64,
            })
            .sum()
    }
}

/// Parses a Prometheus-style exposition back into `(series_key, value)`
/// pairs — the consumer side of [`MetricsRegistry::render_prometheus`],
/// shared by `ccdp top` and the obs smoke's consistency checks. Comment
/// lines are skipped; the series key keeps its label block verbatim.
pub fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (key, value) = l.rsplit_once(' ')?;
            Some((key.to_string(), value.parse().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_one_atomic_per_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ccdp_test_requests_total");
        let b = reg.counter("ccdp_test_requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("ccdp_test_depth");
        g.add(5);
        reg.gauge("ccdp_test_depth").add(-2);
        assert_eq!(g.get(), 3);
        g.raise_to(10);
        g.raise_to(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn float_counter_accumulates_under_contention() {
        let reg = MetricsRegistry::new();
        let f = reg.float_counter("ccdp_test_seconds");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let f = f.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        f.add(0.5);
                    }
                });
            }
        });
        assert!((f.get() - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_buckets_are_consistent() {
        for us in [0u64, 1, 2, 3, 7, 8, 100, 1000, 2048, 3000, 1 << 20, 1 << 45] {
            let idx = LogHistogram::index(us);
            let hi = LogHistogram::upper_edge_us(idx);
            if (1..1u64 << OCTAVES).contains(&us) {
                assert!(us < hi, "us {us} must fall below its bucket edge {hi}");
                assert!(
                    hi as f64 <= (us.max(1) as f64) * 1.125 + 1.0,
                    "edge {hi} too far above {us}"
                );
            }
            assert!(idx < NUM_BUCKETS);
        }
        let mut last = 0;
        for us in 1..10_000u64 {
            let idx = LogHistogram::index(us);
            assert!(idx >= last, "bucket index regressed at {us}");
            last = idx;
        }
    }

    #[test]
    fn histogram_quantiles_are_conservative() {
        let h = LogHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(50));
        assert!(p50.as_secs_f64() <= 50e-6 * 1.125 + 1e-6);
        assert_eq!(h.count(), 100);
        assert!(h.sum_seconds() > 0.0);
        assert_eq!(LogHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_is_stable_and_exposition_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("ccdp_b_total").add(7);
        reg.counter("ccdp_a_total").add(3);
        reg.counter_with("ccdp_c_total", &[("phase", "lp")]).add(1);
        reg.counter_with("ccdp_c_total", &[("phase", "anchor")])
            .add(2);
        reg.float_counter("ccdp_d_seconds").add(1.25);
        reg.gauge("ccdp_e_depth").set(-4);
        reg.histogram("ccdp_f_latency_seconds")
            .record(Duration::from_millis(3));

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert_eq!(snap.value("ccdp_a_total"), Some(3.0));
        assert_eq!(snap.sum("ccdp_c_total"), 3.0);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ccdp_a_total counter"));
        assert!(text.contains("ccdp_c_total{phase=\"anchor\"} 2"));
        assert!(text.contains("# TYPE ccdp_f_latency_seconds summary"));
        assert!(text.contains("ccdp_f_latency_seconds_count 1"));
        assert!(
            text.ends_with("# EOF\n"),
            "exposition must terminate with the `# EOF` marker"
        );

        let parsed = parse_exposition(&text);
        let lookup: HashMap<_, _> = parsed.into_iter().collect();
        assert_eq!(lookup["ccdp_a_total"], 3.0);
        assert_eq!(lookup["ccdp_b_total"], 7.0);
        assert_eq!(lookup["ccdp_c_total{phase=\"lp\"}"], 1.0);
        assert!((lookup["ccdp_d_seconds"] - 1.25).abs() < 1e-9);
        assert_eq!(lookup["ccdp_e_depth"], -4.0);
        assert_eq!(lookup["ccdp_f_latency_seconds_count"], 1.0);
    }
}
