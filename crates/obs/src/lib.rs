//! # ccdp-obs — the unified observability layer
//!
//! Before this crate the stack's telemetry was three disconnected islands —
//! `ServeStats` in the serving tier, `CacheStats` in the estimator core,
//! `PhaseProfiler` in the execution layer — with no way to follow a single
//! request from the wire through the worker pool, cache, solver phases and
//! budget ledger. This crate is the one layer they all register into:
//!
//! * [`metrics`] — [`MetricsRegistry`]: named counters, gauges and
//!   log-bucket histograms (the serving tier's latency bucketing, lifted
//!   here as [`LogHistogram`]) behind cheap cloneable handles, with a
//!   stable sorted [`snapshot`](MetricsRegistry::snapshot) and a
//!   Prometheus-style [text
//!   exposition](MetricsRegistry::render_prometheus) served at
//!   `GET /metrics`.
//! * [`trace`] — request-scoped tracing: a 128-bit [`TraceId`]
//!   (deterministic from a seeded [`TraceIdGen`] in tests) minted at the
//!   serving boundary, threaded through the request path as a
//!   [`TraceCtx`], emitting typed [`SpanKind`] events into the bounded
//!   lock-free ring of a [`Tracer`], assembled on demand into a
//!   [`TraceTree`] (`GET /trace/{id}`, `ccdp trace`).
//! * [`audit`] — the privacy-budget audit journal: typed [`AuditEvent`]s
//!   recorded at every budget decision point into a bounded
//!   [`AuditJournal`] ring (optional JSONL file sink), with
//!   [`replay_tenant`] reconstructing a tenant's budget accountant
//!   bit-for-bit from their events (`GET /audit/{tenant}`, `ccdp audit`).
//! * [`slo`] — per-tenant SLOs: declarative [`SloSpec`]s (availability,
//!   p99 latency, ε burn rate vs. quota horizon) evaluated over
//!   multi-window rolling counters by an [`SloEngine`], firing
//!   [`SloAlert`]s into the audit journal (`GET /slo`, `ccdp slo`).
//!
//! The layer is std-only and dependency-free so every crate in the
//! workspace can sit on top of it, and its hot-path costs are explicit:
//! one relaxed atomic per counter bump, one branch per span emission when
//! tracing is off (and one branch per audit event when the journal is
//! off).

#![warn(missing_docs)]

pub mod audit;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use audit::{replay_tenant, AuditEvent, AuditJournal, AuditKind, BudgetReplay};
pub use metrics::{
    bucket_percentile, parse_exposition, Counter, FloatCounter, Gauge, HistogramSnapshot,
    LogHistogram, MetricsRegistry, MetricsSnapshot, SeriesSnapshot, SeriesValue,
};
pub use slo::{SloAlert, SloEngine, SloObjective, SloObservation, SloSpec, SloStatus};
pub use trace::{
    Span, SpanEvent, SpanKind, TraceCtx, TraceId, TraceIdGen, TraceSummary, TraceTree, Tracer,
};
