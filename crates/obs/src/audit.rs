//! The append-only privacy-budget audit journal.
//!
//! Metrics (how many, how fast) and traces (what happened inside one
//! request) cannot answer the question an auditor or a tenant asks of a
//! differential-privacy service: *where did my ε go, who authorized each
//! spend, and am I on pace to exhaust my quota?* This module is the
//! authoritative record for that question: a typed [`AuditEvent`] stream
//! recorded at every budget decision point, landing in a bounded
//! [`AuditJournal`] ring with an optional JSONL file sink.
//!
//! The contract that makes the journal more than a log: **replaying one
//! tenant's events reconstructs their budget accountant exactly** —
//! [`replay_tenant`] folds the events in sequence order with the same
//! float operations (`spent += granted`, one stage entry per charge) the
//! live `PrivacyBudget` applies, so the replayed spent total, utilization,
//! per-stage ledger and refusal count are bit-for-bit equal to the live
//! snapshot. That property is what makes the journal the seed for
//! multi-node budget replication: ship the events, fold them, and the
//! replica's accountant *is* the primary's.
//!
//! Hot-path contract, in the spirit of [`crate::trace`]:
//!
//! * a **disabled** journal costs one relaxed load and a branch;
//! * an **enabled** recording claims a sequence number with one
//!   `fetch_add` and takes one uncontended per-slot mutex (events carry
//!   heap strings, so slots cannot be seqlocked like span events);
//!   writers only contend when the ring wraps onto a slot another writer
//!   holds, and the journal never back-pressures the pipeline —
//!   overwritten events are counted in [`AuditJournal::dropped`], not
//!   waited for.
//!
//! Per-tenant event order is the caller's responsibility: the budget
//! ledger records under its per-tenant lock, so one tenant's events carry
//! strictly increasing sequence numbers in spend order (asserted by the
//! serve tier's replay property tests).

use crate::trace::TraceId;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default journal capacity (events retained before wrap-around).
pub const DEFAULT_AUDIT_CAPACITY: usize = 1 << 14;

/// The closed vocabulary of auditable decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// A tenant account was created; `epsilon_requested` carries the quota.
    TenantRegistered,
    /// A budget check-and-spend succeeded; `epsilon_granted` was charged.
    BudgetCharge,
    /// A budget check-and-spend was refused (quota could not fund it).
    BudgetRefusal,
    /// A graph snapshot version was published to the registry.
    ReleasePublished,
    /// A release scheduler policy fired for a stream.
    SchedulerFire,
    /// Superseded cache entries were invalidated.
    CacheInvalidation,
    /// The serving pool began draining (shutdown).
    Drain,
    /// An SLO objective breached and an alert fired.
    SloAlert,
}

impl AuditKind {
    /// The stable snake_case wire name of this event kind.
    pub fn name(self) -> &'static str {
        match self {
            AuditKind::TenantRegistered => "tenant_registered",
            AuditKind::BudgetCharge => "budget_charge",
            AuditKind::BudgetRefusal => "budget_refusal",
            AuditKind::ReleasePublished => "release_published",
            AuditKind::SchedulerFire => "scheduler_fire",
            AuditKind::CacheInvalidation => "cache_invalidation",
            AuditKind::Drain => "drain",
            AuditKind::SloAlert => "slo_alert",
        }
    }
}

impl std::fmt::Display for AuditKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One auditable decision: who, what, how much ε, and the trace it
/// belongs to.
///
/// Fields that do not apply to a kind are empty strings / zero / `None`
/// (e.g. a [`AuditKind::Drain`] carries no tenant). `seq` and
/// `at_micros` are assigned by [`AuditJournal::record`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// Journal-assigned sequence number (global, strictly increasing).
    pub seq: u64,
    /// Journal-assigned wall-clock microseconds since the Unix epoch.
    pub at_micros: u64,
    /// What happened.
    pub kind: AuditKind,
    /// The tenant the decision concerns (empty when not tenant-scoped).
    pub tenant: String,
    /// The graph id involved (empty when not graph-scoped).
    pub graph: String,
    /// The graph version involved, when versioned.
    pub version: Option<u64>,
    /// The budget stage charged (the accountant's ledger key).
    pub stage: String,
    /// ε asked for (for [`AuditKind::TenantRegistered`]: the quota).
    pub epsilon_requested: f64,
    /// ε actually granted (0 on refusals and non-budget events).
    pub epsilon_granted: f64,
    /// The request trace this decision belongs to, for cross-correlation.
    pub trace: Option<TraceId>,
    /// Free-form human context (refusal reason, policy name, alert text).
    pub detail: String,
}

impl AuditEvent {
    /// A blank event of the given kind; fill in the relevant fields.
    pub fn new(kind: AuditKind) -> Self {
        AuditEvent {
            seq: 0,
            at_micros: 0,
            kind,
            tenant: String::new(),
            graph: String::new(),
            version: None,
            stage: String::new(),
            epsilon_requested: 0.0,
            epsilon_granted: 0.0,
            trace: None,
            detail: String::new(),
        }
    }

    /// Builder: the tenant this event concerns.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Builder: the graph (and optionally version) this event concerns.
    pub fn graph(mut self, graph: impl Into<String>, version: Option<u64>) -> Self {
        self.graph = graph.into();
        self.version = version;
        self
    }

    /// Builder: the budget stage charged.
    pub fn stage(mut self, stage: impl Into<String>) -> Self {
        self.stage = stage.into();
        self
    }

    /// Builder: requested and granted ε.
    pub fn epsilon(mut self, requested: f64, granted: f64) -> Self {
        self.epsilon_requested = requested;
        self.epsilon_granted = granted;
        self
    }

    /// Builder: the trace id to cross-correlate with.
    pub fn trace(mut self, trace: Option<TraceId>) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: free-form detail.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// The event as one JSONL line (no trailing newline).
    ///
    /// ε fields are written with Rust's shortest round-trip float
    /// formatting, so a sink line parses back to the exact bits that were
    /// recorded.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"at_micros\":");
        out.push_str(&self.at_micros.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.name());
        out.push_str("\",\"tenant\":\"");
        escape_json_into(&self.tenant, &mut out);
        out.push_str("\",\"graph\":\"");
        escape_json_into(&self.graph, &mut out);
        out.push('"');
        if let Some(version) = self.version {
            out.push_str(",\"version\":");
            out.push_str(&version.to_string());
        }
        out.push_str(",\"stage\":\"");
        escape_json_into(&self.stage, &mut out);
        out.push_str("\",\"epsilon_requested\":");
        out.push_str(&format!("{:?}", self.epsilon_requested));
        out.push_str(",\"epsilon_granted\":");
        out.push_str(&format!("{:?}", self.epsilon_granted));
        if let Some(trace) = self.trace {
            out.push_str(",\"trace\":\"");
            out.push_str(&trace.to_string());
            out.push('"');
        }
        if !self.detail.is_empty() {
            out.push_str(",\"detail\":\"");
            escape_json_into(&self.detail, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Escapes `s` as JSON string content into `out` (quotes, backslashes,
/// control characters).
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The bounded append-only event ring, with an optional JSONL file sink.
///
/// Recording claims a global sequence number and stores the event in slot
/// `seq % capacity`; when the ring wraps, the oldest event is overwritten
/// and counted in [`dropped`](AuditJournal::dropped) — recording never
/// blocks on a reader. The JSONL sink (if set) receives *every* recorded
/// event, including ones the ring later overwrites, so the file is the
/// complete history and the ring is the fast recent window.
pub struct AuditJournal {
    enabled: AtomicBool,
    head: AtomicU64,
    slots: Vec<Mutex<Option<AuditEvent>>>,
    sink: Mutex<Option<BufWriter<File>>>,
}

impl AuditJournal {
    /// A journal with [`DEFAULT_AUDIT_CAPACITY`] slots, enabled.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_AUDIT_CAPACITY)
    }

    /// A journal retaining at most `capacity` events (min 8), enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        AuditJournal {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            sink: Mutex::new(None),
        }
    }

    /// Turns recording on or off. Off, [`record`](Self::record) is one
    /// relaxed load and a branch.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the journal is currently recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the journal's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten by ring wrap-around (recorded − retained).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Attaches a JSONL file sink at `path` (truncating). Every
    /// subsequently recorded event is appended as one JSON line.
    pub fn set_sink_path(&self, path: &str) -> std::io::Result<()> {
        let file = File::create(path)?;
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        *sink = Some(BufWriter::new(file));
        Ok(())
    }

    /// Flushes and detaches the JSONL sink, if one is attached.
    pub fn close_sink(&self) {
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(mut writer) = sink.take() {
            let _ = writer.flush();
        }
    }

    /// Records one event, assigning its sequence number and timestamp.
    /// Returns the assigned sequence, or `None` when the journal is
    /// disabled.
    pub fn record(&self, mut event: AuditEvent) -> Option<u64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        event.at_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        {
            // The sink sees every event, in each writer's claim order; the
            // lock is only held for a buffered line append.
            let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(writer) = sink.as_mut() {
                let _ = writer.write_all(event.to_jsonl().as_bytes());
                let _ = writer.write_all(b"\n");
            }
        }
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(event);
        Some(seq)
    }

    /// Every event currently retained in the ring, in sequence order.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        let mut events: Vec<AuditEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The retained events concerning one tenant, in sequence order.
    pub fn events_for_tenant(&self, tenant: &str) -> Vec<AuditEvent> {
        let mut events: Vec<AuditEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .filter(|e| e.tenant == tenant)
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl Default for AuditJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AuditJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditJournal")
            .field("enabled", &self.enabled())
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// A tenant's budget accountant as reconstructed from their journal.
///
/// Produced by [`replay_tenant`]; the serve tier compares this against
/// the live ledger snapshot field by field (floats by exact bits).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReplay {
    /// The tenant replayed.
    pub tenant: String,
    /// The ε quota, from the [`AuditKind::TenantRegistered`] event.
    pub quota_epsilon: f64,
    /// Total ε granted, folded in sequence order (`spent += granted`).
    pub spent_epsilon: f64,
    /// Number of successful charges.
    pub charges: u64,
    /// Number of budget refusals.
    pub refusals: u64,
    /// One `(stage, ε)` entry per charge, in charge order — the same
    /// shape as `PrivacyBudget::ledger()`.
    pub stages: Vec<(String, f64)>,
}

impl BudgetReplay {
    /// Quota utilization in `[0, 1]`, computed with the same expression
    /// as the live accountant (`(spent / quota).clamp(0, 1)`).
    pub fn utilization(&self) -> f64 {
        if self.quota_epsilon > 0.0 {
            (self.spent_epsilon / self.quota_epsilon).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Folds one tenant's events (must be in sequence order, as returned by
/// [`AuditJournal::events_for_tenant`]) into their reconstructed budget
/// accountant.
///
/// The fold mirrors `PrivacyBudget::spend` float-op for float-op: each
/// charge does `spent += granted` and appends one `(stage, granted)`
/// entry, so the result is bit-for-bit comparable with the live snapshot.
pub fn replay_tenant(tenant: &str, events: &[AuditEvent]) -> BudgetReplay {
    let mut replay = BudgetReplay {
        tenant: tenant.to_string(),
        quota_epsilon: 0.0,
        spent_epsilon: 0.0,
        charges: 0,
        refusals: 0,
        stages: Vec::new(),
    };
    for event in events {
        if event.tenant != tenant {
            continue;
        }
        match event.kind {
            AuditKind::TenantRegistered => replay.quota_epsilon = event.epsilon_requested,
            AuditKind::BudgetCharge => {
                replay.spent_epsilon += event.epsilon_granted;
                replay
                    .stages
                    .push((event.stage.clone(), event.epsilon_granted));
                replay.charges += 1;
            }
            AuditKind::BudgetRefusal => replay.refusals += 1,
            _ => {}
        }
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(tenant: &str, stage: &str, eps: f64) -> AuditEvent {
        AuditEvent::new(AuditKind::BudgetCharge)
            .tenant(tenant)
            .stage(stage)
            .epsilon(eps, eps)
    }

    #[test]
    fn record_assigns_increasing_seqs_and_snapshot_sorts() {
        let journal = AuditJournal::with_capacity(16);
        for i in 0..5 {
            let seq = journal
                .record(charge("alpha", &format!("s{i}"), 0.1))
                .expect("enabled journal records");
            assert_eq!(seq, i as u64);
        }
        let events = journal.snapshot();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(journal.recorded(), 5);
        assert_eq!(journal.dropped(), 0);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let journal = AuditJournal::with_capacity(8);
        journal.set_enabled(false);
        assert_eq!(journal.record(charge("a", "s", 0.1)), None);
        assert_eq!(journal.recorded(), 0);
        assert!(journal.snapshot().is_empty());
    }

    #[test]
    fn ring_wrap_counts_drops_and_keeps_newest() {
        let journal = AuditJournal::with_capacity(8);
        for i in 0..20 {
            journal.record(charge("alpha", &format!("s{i}"), 0.1));
        }
        assert_eq!(journal.recorded(), 20);
        assert_eq!(journal.dropped(), 12);
        let events = journal.snapshot();
        assert_eq!(events.len(), 8);
        // The newest 8 sequence numbers survive.
        assert_eq!(events.first().map(|e| e.seq), Some(12));
        assert_eq!(events.last().map(|e| e.seq), Some(19));
    }

    #[test]
    fn replay_folds_charges_refusals_and_quota() {
        let journal = AuditJournal::with_capacity(32);
        journal.record(
            AuditEvent::new(AuditKind::TenantRegistered)
                .tenant("alpha")
                .epsilon(1.0, 0.0),
        );
        journal.record(charge("alpha", "estimate", 0.25));
        journal.record(charge("beta", "estimate", 0.5)); // other tenant: ignored
        journal.record(charge("alpha", "estimate", 0.25));
        journal.record(AuditEvent::new(AuditKind::BudgetRefusal).tenant("alpha"));
        let replay = replay_tenant("alpha", &journal.events_for_tenant("alpha"));
        assert_eq!(replay.quota_epsilon, 1.0);
        assert_eq!(replay.spent_epsilon, 0.25 + 0.25);
        assert_eq!(replay.charges, 2);
        assert_eq!(replay.refusals, 1);
        assert_eq!(
            replay.stages,
            vec![
                ("estimate".to_string(), 0.25),
                ("estimate".to_string(), 0.25)
            ]
        );
        assert_eq!(replay.utilization(), 0.5);
    }

    #[test]
    fn jsonl_line_escapes_and_round_trips_floats() {
        let event = AuditEvent::new(AuditKind::BudgetRefusal)
            .tenant("al\"pha")
            .graph("g\\0", Some(3))
            .stage("estimate")
            .epsilon(1e-12, 0.0)
            .detail("line\nbreak");
        let line = event.to_jsonl();
        assert!(line.contains("\"kind\":\"budget_refusal\""));
        assert!(line.contains("al\\\"pha"));
        assert!(line.contains("g\\\\0"));
        assert!(line.contains("\"version\":3"));
        assert!(line.contains("line\\nbreak"));
        // The ε survives textual round-trip to the exact bits.
        let needle = "\"epsilon_requested\":";
        let start = line.find(needle).unwrap() + needle.len();
        let rest = &line[start..];
        let end = rest.find(',').unwrap();
        let parsed: f64 = rest[..end].parse().unwrap();
        assert_eq!(parsed.to_bits(), 1e-12f64.to_bits());
    }

    #[test]
    fn sink_receives_every_event_even_after_wrap() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ccdp_audit_sink_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let journal = AuditJournal::with_capacity(8);
        journal.set_sink_path(&path).expect("temp sink opens");
        for i in 0..20 {
            journal.record(charge("alpha", &format!("s{i}"), 0.1));
        }
        journal.close_sink();
        let contents = std::fs::read_to_string(&path).expect("sink file readable");
        let _ = std::fs::remove_file(&path);
        assert_eq!(contents.lines().count(), 20);
        assert!(contents
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
