//! Exact-value tests for the Lipschitz extension on instances where the
//! Δ-bounded forest polytope optimum is fractional or otherwise known in closed
//! form. These pin down the LP + separation-oracle pipeline beyond the anchored
//! cases (where f_Δ = f_sf).

use ccdp_core::{forest_polytope_max, LipschitzExtension};
use ccdp_graph::{generators, Graph};

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-5
}

#[test]
fn triangle_with_delta_one_is_three_halves() {
    // Degree constraints allow x_e = 1/2 on every edge of the triangle: value 1.5,
    // strictly above the integral maximum matching (1). The forest constraint
    // x(E) ≤ 2 is slack.
    let g = generators::cycle(3);
    let v = LipschitzExtension::new(1).evaluate(&g).unwrap();
    assert!(approx(v, 1.5), "triangle f_1 = {v}");
}

#[test]
fn odd_cycle_with_delta_one_is_half_the_length() {
    // C_5 with Δ = 1: the optimum of the degree-constrained relaxation is 2.5.
    let g = generators::cycle(5);
    let v = LipschitzExtension::new(1).evaluate(&g).unwrap();
    assert!(approx(v, 2.5), "C5 f_1 = {v}");
}

#[test]
fn even_cycle_with_delta_one_is_perfect_matching() {
    let g = generators::cycle(6);
    let v = LipschitzExtension::new(1).evaluate(&g).unwrap();
    assert!(approx(v, 3.0), "C6 f_1 = {v}");
}

#[test]
fn complete_graph_with_delta_one_is_n_over_two() {
    // K_5 with Δ = 1: fractional matching number is 5/2.
    let g = generators::complete(5);
    let v = LipschitzExtension::new(1).evaluate(&g).unwrap();
    assert!(approx(v, 2.5), "K5 f_1 = {v}");
}

#[test]
fn complete_graph_with_delta_two_hits_the_forest_bound() {
    // K_5 with Δ = 2: degree constraints would allow 5, but the spanning-forest
    // bound caps the value at 4 (a Hamiltonian path attains it).
    let g = generators::complete(5);
    let v = LipschitzExtension::new(2).evaluate(&g).unwrap();
    assert!(approx(v, 4.0), "K5 f_2 = {v}");
}

#[test]
fn double_star_with_delta_three() {
    // Two centers joined by an edge, each with 3 pendant leaves. With Δ = 3 the
    // centers can carry weight 3 each; the optimum is 6 (drop the bridge).
    let mut g = Graph::new(8);
    g.add_edge(0, 1);
    for leaf in 2..5 {
        g.add_edge(0, leaf);
    }
    for leaf in 5..8 {
        g.add_edge(1, leaf);
    }
    let v = LipschitzExtension::new(3).evaluate(&g).unwrap();
    assert!(approx(v, 6.0), "double star f_3 = {v}");
    // Δ = 4 anchors the graph (the whole tree is a spanning 4-forest).
    let v4 = LipschitzExtension::new(4).evaluate(&g).unwrap();
    assert!(approx(v4, 7.0), "double star f_4 = {v4}");
}

#[test]
fn values_decompose_over_components() {
    let a = generators::cycle(3);
    let b = generators::star(4);
    let union = generators::disjoint_union(&a, &b);
    for delta in 1..=4usize {
        let va = LipschitzExtension::new(delta).evaluate(&a).unwrap();
        let vb = LipschitzExtension::new(delta).evaluate(&b).unwrap();
        let vu = LipschitzExtension::new(delta).evaluate(&union).unwrap();
        assert!(approx(va + vb, vu), "Δ={delta}: {va} + {vb} != {vu}");
    }
}

#[test]
fn lp_details_are_consistent_on_the_lp_path() {
    let g = generators::complete(6);
    let sol = forest_polytope_max(&g, 1.0).unwrap();
    assert!(sol.lp_solves >= 1);
    assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
    assert_eq!(sol.edge_weights.len(), g.num_edges());
}
