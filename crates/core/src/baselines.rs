//! Baseline estimators for the number of connected components.
//!
//! The paper motivates its algorithm by contrasting node-privacy with the easier
//! edge-privacy setting and with naive node-private approaches. These baselines
//! make that comparison concrete and are used by experiment E8:
//!
//! * [`NonPrivateBaseline`] — the exact count (no privacy), the accuracy ceiling.
//! * [`EdgeDpBaseline`] — the trivial edge-DP algorithm: `f_cc` changes by at most
//!   1 per edge, so `f_cc(G) + Lap(1/ε)` suffices (Section 1.2).
//! * [`NaiveNodeDpBaseline`] — the naive node-DP algorithm that uses the global
//!   node sensitivity of `f_cc`, which is `n − 1` on `n`-vertex graphs because a
//!   single added node can connect everything; its error swamps the signal, which
//!   is exactly the obstacle described in the introduction.
//! * [`FixedDeltaBaseline`] — an ablation of Algorithm 1 that skips the GEM
//!   selection and uses a fixed, data-independent Δ (spending the whole budget on
//!   the Laplace release). Accurate only if the guess is at least Δ*, and noisier
//!   than necessary if the guess is too large.
//!
//! All four implement the same object-safe [`Estimator`] trait as the private
//! estimators, so experiments can sweep heterogeneous estimators through one
//! `Vec<Box<dyn Estimator>>`.

use crate::config::{ConfigError, EstimatorConfig};
use crate::error::CcdpError;
use crate::estimator::Estimator;
use crate::extension::LipschitzExtension;
use crate::release::{Diagnostics, Privacy, Release};
use ccdp_dp::laplace::laplace_mechanism;
use ccdp_graph::Graph;
use rand::RngCore;

/// The exact, non-private count (accuracy ceiling).
#[derive(Clone, Copy, Debug, Default)]
pub struct NonPrivateBaseline;

impl Estimator for NonPrivateBaseline {
    fn name(&self) -> &'static str {
        "non-private"
    }

    fn privacy(&self) -> Privacy {
        Privacy::NonPrivate
    }

    fn estimate(&self, g: &Graph, _rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        Ok(Release::new(
            g.num_connected_components() as f64,
            Privacy::NonPrivate,
            self.name(),
            Diagnostics::default(),
        ))
    }
}

/// Edge-differentially private Laplace release (sensitivity 1).
#[derive(Clone, Copy, Debug)]
pub struct EdgeDpBaseline {
    epsilon: f64,
}

impl EdgeDpBaseline {
    /// Creates the baseline with the given edge-DP ε.
    pub fn new(epsilon: f64) -> Result<Self, ConfigError> {
        EstimatorConfig::new(epsilon).validate()?;
        Ok(EdgeDpBaseline { epsilon })
    }

    /// The privacy parameter (with respect to *edge* neighbors).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Estimator for EdgeDpBaseline {
    fn name(&self) -> &'static str {
        "edge-dp-laplace"
    }

    fn privacy(&self) -> Privacy {
        Privacy::EdgeDp {
            epsilon: self.epsilon,
        }
    }

    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        let value = laplace_mechanism(g.num_connected_components() as f64, 1.0, self.epsilon, rng);
        Ok(Release::new(
            value,
            self.privacy(),
            self.name(),
            Diagnostics {
                noise_scale: Some(1.0 / self.epsilon),
                ..Diagnostics::default()
            },
        ))
    }
}

/// Naive node-DP Laplace release using the worst-case global sensitivity `n − 1`.
#[derive(Clone, Copy, Debug)]
pub struct NaiveNodeDpBaseline {
    epsilon: f64,
}

impl NaiveNodeDpBaseline {
    /// Creates the baseline with the given node-DP ε.
    pub fn new(epsilon: f64) -> Result<Self, ConfigError> {
        EstimatorConfig::new(epsilon).validate()?;
        Ok(NaiveNodeDpBaseline { epsilon })
    }

    /// The node-DP privacy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Estimator for NaiveNodeDpBaseline {
    fn name(&self) -> &'static str {
        "naive-node-dp-laplace"
    }

    fn privacy(&self) -> Privacy {
        Privacy::NodeDp {
            epsilon: self.epsilon,
        }
    }

    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        // Inserting one node with arbitrary edges can merge all components, and the
        // node count itself changes by one, so the global sensitivity over n-vertex
        // databases is n (we use max(n, 1) to keep the mechanism defined).
        let sensitivity = g.num_vertices().max(1) as f64;
        let value = laplace_mechanism(
            g.num_connected_components() as f64,
            sensitivity,
            self.epsilon,
            rng,
        );
        Ok(Release::new(
            value,
            self.privacy(),
            self.name(),
            Diagnostics {
                noise_scale: Some(sensitivity / self.epsilon),
                ..Diagnostics::default()
            },
        ))
    }
}

/// Ablation: Algorithm 1 with a fixed, data-independent Δ instead of GEM.
///
/// Releases `ñ − (f_Δ(G) + Lap(2Δ/ε))` where ñ is a Laplace release of the node
/// count with ε/2 of the budget; the extension release uses the other ε/2 so the
/// whole estimator is ε-node-private by composition.
#[derive(Clone, Copy, Debug)]
pub struct FixedDeltaBaseline {
    epsilon: f64,
    delta: usize,
}

impl FixedDeltaBaseline {
    /// Creates the baseline with the given ε and fixed Δ.
    pub fn new(epsilon: f64, delta: usize) -> Result<Self, ConfigError> {
        EstimatorConfig::new(epsilon).validate()?;
        if delta == 0 {
            return Err(ConfigError::InvalidDelta { value: delta });
        }
        Ok(FixedDeltaBaseline { epsilon, delta })
    }

    /// The node-DP privacy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The fixed Lipschitz parameter.
    pub fn delta(&self) -> usize {
        self.delta
    }
}

impl Estimator for FixedDeltaBaseline {
    fn name(&self) -> &'static str {
        "fixed-delta-extension"
    }

    fn privacy(&self) -> Privacy {
        Privacy::NodeDp {
            epsilon: self.epsilon,
        }
    }

    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        let half = self.epsilon / 2.0;
        let node_count = laplace_mechanism(g.num_vertices() as f64, 1.0, half, rng);
        let extension = LipschitzExtension::new(self.delta).evaluate(g)?;
        let sf = laplace_mechanism(extension, self.delta as f64, half, rng);
        Ok(Release::new(
            node_count - sf,
            self.privacy(),
            self.name(),
            Diagnostics {
                selected_delta: Some(self.delta),
                extension_value: Some(extension),
                noise_scale: Some(self.delta as f64 / half),
                node_count_estimate: Some(node_count),
                spanning_forest_estimate: Some(sf),
                ..Diagnostics::default()
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_abs_error<E: Estimator>(est: &E, g: &Graph, runs: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = g.num_connected_components() as f64;
        (0..runs)
            .map(|_| (est.estimate(g, &mut rng).unwrap().value() - truth).abs())
            .sum::<f64>()
            / runs as f64
    }

    #[test]
    fn non_private_baseline_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = generators::planted_star_forest(10, 2, 3);
        let v = NonPrivateBaseline.estimate(&g, &mut rng).unwrap().value();
        assert_eq!(v, 13.0);
    }

    #[test]
    fn edge_dp_error_is_small() {
        let g = generators::planted_star_forest(50, 2, 10);
        let err = mean_abs_error(&EdgeDpBaseline::new(1.0).unwrap(), &g, 200, 1);
        assert!(err < 3.0, "edge-DP error {err} should be about 1/ε");
    }

    #[test]
    fn naive_node_dp_error_scales_with_n() {
        let g = generators::planted_star_forest(50, 2, 10);
        let err = mean_abs_error(&NaiveNodeDpBaseline::new(1.0).unwrap(), &g, 200, 2);
        let n = g.num_vertices() as f64;
        assert!(
            err > n / 4.0,
            "naive error {err} unexpectedly small for n = {n}"
        );
    }

    #[test]
    fn fixed_delta_with_good_guess_is_accurate() {
        let g = generators::planted_star_forest(50, 2, 10);
        // Δ* = 2 here, so a fixed guess of 2 is accurate.
        let err = mean_abs_error(&FixedDeltaBaseline::new(1.0, 2).unwrap(), &g, 100, 3);
        assert!(err < 20.0, "fixed-delta error {err} too large");
    }

    #[test]
    fn fixed_delta_with_low_guess_is_biased() {
        // Guessing Δ = 1 on a star forest with stars of size 4 underestimates f_sf
        // and therefore overestimates f_cc by a systematic margin.
        let g = generators::planted_star_forest(40, 4, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let est = FixedDeltaBaseline::new(1.0, 1).unwrap();
        let truth = g.num_connected_components() as f64;
        let mean: f64 = (0..100)
            .map(|_| est.estimate(&g, &mut rng).unwrap().value())
            .sum::<f64>()
            / 100.0;
        assert!(
            mean - truth > 20.0,
            "expected systematic overestimate, got mean {mean} vs {truth}"
        );
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(matches!(
            EdgeDpBaseline::new(0.0),
            Err(ConfigError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            NaiveNodeDpBaseline::new(f64::NAN),
            Err(ConfigError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            FixedDeltaBaseline::new(1.0, 0),
            Err(ConfigError::InvalidDelta { value: 0 })
        ));
    }

    #[test]
    fn baseline_names_and_privacy_levels_are_distinct() {
        let baselines: Vec<Box<dyn Estimator>> = vec![
            Box::new(NonPrivateBaseline),
            Box::new(EdgeDpBaseline::new(1.0).unwrap()),
            Box::new(NaiveNodeDpBaseline::new(1.0).unwrap()),
            Box::new(FixedDeltaBaseline::new(1.0, 2).unwrap()),
        ];
        let names: std::collections::HashSet<_> = baselines.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), baselines.len());
        assert_eq!(baselines[0].privacy(), Privacy::NonPrivate);
        assert_eq!(baselines[1].privacy(), Privacy::EdgeDp { epsilon: 1.0 });
        assert_eq!(baselines[2].privacy(), Privacy::NodeDp { epsilon: 1.0 });
    }
}
