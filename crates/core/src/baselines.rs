//! Baseline estimators for the number of connected components.
//!
//! The paper motivates its algorithm by contrasting node-privacy with the easier
//! edge-privacy setting and with naive node-private approaches. These baselines
//! make that comparison concrete and are used by experiment E8:
//!
//! * [`NonPrivateBaseline`] — the exact count (no privacy), the accuracy ceiling.
//! * [`EdgeDpBaseline`] — the trivial edge-DP algorithm: `f_cc` changes by at most
//!   1 per edge, so `f_cc(G) + Lap(1/ε)` suffices (Section 1.2).
//! * [`NaiveNodeDpBaseline`] — the naive node-DP algorithm that uses the global
//!   node sensitivity of `f_cc`, which is `n − 1` on `n`-vertex graphs because a
//!   single added node can connect everything; its error swamps the signal, which
//!   is exactly the obstacle described in the introduction.
//! * [`FixedDeltaBaseline`] — an ablation of Algorithm 1 that skips the GEM
//!   selection and uses a fixed, data-independent Δ (spending the whole budget on
//!   the Laplace release). Accurate only if the guess is at least Δ*, and noisier
//!   than necessary if the guess is too large.

use crate::error::CoreError;
use crate::extension::LipschitzExtension;
use ccdp_dp::laplace::laplace_mechanism;
use ccdp_graph::Graph;

/// A (possibly private) estimator of the number of connected components.
pub trait CcEstimator {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Estimates `f_cc(g)`.
    fn estimate_cc(&self, g: &Graph, rng: &mut dyn rand::RngCore) -> Result<f64, CoreError>;
}

/// The exact, non-private count (accuracy ceiling).
#[derive(Clone, Copy, Debug, Default)]
pub struct NonPrivateBaseline;

impl CcEstimator for NonPrivateBaseline {
    fn name(&self) -> &'static str {
        "non-private"
    }

    fn estimate_cc(&self, g: &Graph, _rng: &mut dyn rand::RngCore) -> Result<f64, CoreError> {
        Ok(g.num_connected_components() as f64)
    }
}

/// Edge-differentially private Laplace release (`sensitivity 1`).
#[derive(Clone, Copy, Debug)]
pub struct EdgeDpBaseline {
    /// Privacy parameter (with respect to *edge* neighbors).
    pub epsilon: f64,
}

impl EdgeDpBaseline {
    /// Creates the baseline with the given edge-DP ε.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        EdgeDpBaseline { epsilon }
    }
}

impl CcEstimator for EdgeDpBaseline {
    fn name(&self) -> &'static str {
        "edge-dp-laplace"
    }

    fn estimate_cc(&self, g: &Graph, rng: &mut dyn rand::RngCore) -> Result<f64, CoreError> {
        Ok(laplace_mechanism(g.num_connected_components() as f64, 1.0, self.epsilon, rng))
    }
}

/// Naive node-DP Laplace release using the worst-case global sensitivity `n − 1`.
#[derive(Clone, Copy, Debug)]
pub struct NaiveNodeDpBaseline {
    /// Node-DP privacy parameter.
    pub epsilon: f64,
}

impl NaiveNodeDpBaseline {
    /// Creates the baseline with the given node-DP ε.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        NaiveNodeDpBaseline { epsilon }
    }
}

impl CcEstimator for NaiveNodeDpBaseline {
    fn name(&self) -> &'static str {
        "naive-node-dp-laplace"
    }

    fn estimate_cc(&self, g: &Graph, rng: &mut dyn rand::RngCore) -> Result<f64, CoreError> {
        // Inserting one node with arbitrary edges can merge all components, and the
        // node count itself changes by one, so the global sensitivity over n-vertex
        // databases is n (we use max(n, 1) to keep the mechanism defined).
        let sensitivity = g.num_vertices().max(1) as f64;
        Ok(laplace_mechanism(g.num_connected_components() as f64, sensitivity, self.epsilon, rng))
    }
}

/// Ablation: Algorithm 1 with a fixed, data-independent Δ instead of GEM.
///
/// Releases `ñ − (f_Δ(G) + Lap(2Δ/ε))` where ñ is a Laplace release of the node
/// count with ε/2 of the budget; the extension release uses the other ε/2 so the
/// whole estimator is ε-node-private by composition.
#[derive(Clone, Copy, Debug)]
pub struct FixedDeltaBaseline {
    /// Node-DP privacy parameter.
    pub epsilon: f64,
    /// The fixed Lipschitz parameter.
    pub delta: usize,
}

impl FixedDeltaBaseline {
    /// Creates the baseline with the given ε and fixed Δ.
    pub fn new(epsilon: f64, delta: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta >= 1, "delta must be at least 1");
        FixedDeltaBaseline { epsilon, delta }
    }
}

impl CcEstimator for FixedDeltaBaseline {
    fn name(&self) -> &'static str {
        "fixed-delta-extension"
    }

    fn estimate_cc(&self, g: &Graph, rng: &mut dyn rand::RngCore) -> Result<f64, CoreError> {
        let half = self.epsilon / 2.0;
        let node_count = laplace_mechanism(g.num_vertices() as f64, 1.0, half, rng);
        let extension = LipschitzExtension::new(self.delta).evaluate(g)?;
        let sf = laplace_mechanism(extension, self.delta as f64, half, rng);
        Ok(node_count - sf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_abs_error<E: CcEstimator>(est: &E, g: &Graph, runs: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = g.num_connected_components() as f64;
        (0..runs)
            .map(|_| (est.estimate_cc(g, &mut rng).unwrap() - truth).abs())
            .sum::<f64>()
            / runs as f64
    }

    #[test]
    fn non_private_baseline_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = generators::planted_star_forest(10, 2, 3);
        let v = NonPrivateBaseline.estimate_cc(&g, &mut rng).unwrap();
        assert_eq!(v, 13.0);
    }

    #[test]
    fn edge_dp_error_is_small() {
        let g = generators::planted_star_forest(50, 2, 10);
        let err = mean_abs_error(&EdgeDpBaseline::new(1.0), &g, 200, 1);
        assert!(err < 3.0, "edge-DP error {err} should be about 1/ε");
    }

    #[test]
    fn naive_node_dp_error_scales_with_n() {
        let g = generators::planted_star_forest(50, 2, 10);
        let err = mean_abs_error(&NaiveNodeDpBaseline::new(1.0), &g, 200, 2);
        let n = g.num_vertices() as f64;
        assert!(err > n / 4.0, "naive error {err} unexpectedly small for n = {n}");
    }

    #[test]
    fn fixed_delta_with_good_guess_is_accurate() {
        let g = generators::planted_star_forest(50, 2, 10);
        // Δ* = 2 here, so a fixed guess of 2 is accurate.
        let err = mean_abs_error(&FixedDeltaBaseline::new(1.0, 2), &g, 100, 3);
        assert!(err < 20.0, "fixed-delta error {err} too large");
    }

    #[test]
    fn fixed_delta_with_low_guess_is_biased() {
        // Guessing Δ = 1 on a star forest with stars of size 4 underestimates f_sf
        // and therefore overestimates f_cc by a systematic margin.
        let g = generators::planted_star_forest(40, 4, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let est = FixedDeltaBaseline::new(1.0, 1);
        let truth = g.num_connected_components() as f64;
        let mean: f64 =
            (0..100).map(|_| est.estimate_cc(&g, &mut rng).unwrap()).sum::<f64>() / 100.0;
        assert!(mean - truth > 20.0, "expected systematic overestimate, got mean {mean} vs {truth}");
    }

    #[test]
    fn baseline_names_are_distinct() {
        let names = [
            NonPrivateBaseline.name(),
            EdgeDpBaseline::new(1.0).name(),
            NaiveNodeDpBaseline::new(1.0).name(),
            FixedDeltaBaseline::new(1.0, 2).name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
