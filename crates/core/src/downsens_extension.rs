//! The down-sensitivity-based Lipschitz extension (Lemma A.1 of the paper).
//!
//! For a monotone nondecreasing function `f` and a parameter Δ we evaluate
//!
//! ```text
//! b f_Δ(G) = min over induced subgraphs H ⪯ G of  f(H) + Δ · d(H, G),
//! ```
//!
//! where `d(H, G)` is the node distance (the number of removed vertices). This is
//! the McShane-style lower extension restricted to the induced-subgraph order. It
//! is a family of monotone-in-Δ, Δ-Lipschitz underestimates of `f`, and whenever
//! `DS_f(G) ≤ Δ` it equals `f(G)` exactly (the telescoping argument of Lemma A.1),
//! so its monotone anchor set is the largest possible one, `S*_Δ` (Lemma A.3).
//!
//! **Deviation from the paper's displayed formula.** The statement of Lemma A.1 in
//! the arXiv text restricts the minimum to subgraphs `H` with `DS_f(H) ≤ Δ`. With
//! that restriction the function can *overestimate* `f` on graphs whose
//! down-sensitivity exceeds Δ (dense graphs where every low-sensitivity subgraph is
//! far away), which would break the underestimation property required by
//! Definition 3.2 and by the GEM analysis. Dropping the restriction — as done
//! here — restores all three properties while leaving the anchor behaviour
//! unchanged; see DESIGN.md for the worked counterexample.
//!
//! Evaluating the extension costs `2^{|V|}` subgraph evaluations, so it is meant
//! for graphs with at most ~20 vertices. It serves three purposes:
//!
//! * validating Lemma 1.9 (`S*_{Δ-1} ⊆ S_Δ`) on enumerated small graphs,
//! * serving as the comparator `f*` in the ℓ∞-optimality experiment (E7,
//!   Theorem 1.11), since it is Δ-Lipschitz,
//! * cross-checking the polytope-based extension on small instances.

use crate::error::CoreError;
use crate::extension::LipschitzExtension;
use crate::polytope::SolverBackend;
use ccdp_graph::subgraph::{all_vertex_subsets, induced_subgraph};
use ccdp_graph::Graph;

/// Evaluates the down-sensitivity-based extension of an arbitrary monotone
/// nondecreasing function at `g` with parameter `delta`.
///
/// Intended for graphs with at most 20 vertices (the subset enumeration is
/// exponential).
pub fn downsens_extension<F>(g: &Graph, delta: f64, f: F) -> f64
where
    F: Fn(&Graph) -> f64,
{
    let n = g.num_vertices() as f64;
    let mut best = f64::INFINITY;
    for subset in all_vertex_subsets(g) {
        let (h, _) = induced_subgraph(g, &subset);
        let distance = n - subset.len() as f64;
        best = best.min(f(&h) + delta * distance);
    }
    best
}

/// The down-sensitivity-based extension of `f_sf` with parameter `delta`.
pub fn downsens_extension_fsf(g: &Graph, delta: usize) -> f64 {
    downsens_extension(g, delta as f64, |h| h.spanning_forest_size() as f64)
}

/// The McShane step applied to the *polytope-based* extension `f_Δ` itself,
/// evaluated through the selected [`PolytopeSolver`](crate::PolytopeSolver)
/// backend: `min over induced H ⪯ G of f_Δ(H) + Δ · d(H, G)`.
///
/// Because `f_Δ` is already Δ-Lipschitz with respect to node distance
/// (Lemma 3.3), this minimum is attained at `H = G` and the function equals
/// `f_Δ(G)` exactly — which makes it a sharp exponential-time cross-check of
/// a solver backend: any non-Lipschitz glitch in a backend's values shows up
/// as a strict gap. Intended for graphs with at most ~15 vertices.
pub fn downsens_extension_fdelta(
    g: &Graph,
    delta: usize,
    backend: SolverBackend,
) -> Result<f64, CoreError> {
    let ext = LipschitzExtension::new(delta).with_backend(backend);
    let n = g.num_vertices() as f64;
    let mut best = f64::INFINITY;
    for subset in all_vertex_subsets(g) {
        let (h, _) = induced_subgraph(g, &subset);
        let distance = n - subset.len() as f64;
        best = best.min(ext.evaluate(&h)? + delta as f64 * distance);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;
    use ccdp_graph::sensitivity::down_sensitivity_fsf;
    use ccdp_graph::subgraph::remove_vertex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn anchor_property_of_lemma_a1() {
        // If DS_fsf(G) ≤ Δ then the extension equals f_sf(G).
        let g = generators::path(6); // DS = s(G) = 2
        assert!(approx(downsens_extension_fsf(&g, 2), 5.0));
        assert!(approx(downsens_extension_fsf(&g, 3), 5.0));
        let star = generators::star(4); // DS = 4
        assert!(approx(downsens_extension_fsf(&star, 4), 4.0));
    }

    #[test]
    fn underestimation_below_anchor() {
        // For Δ < DS the extension strictly underestimates on the star.
        let star = generators::star(4);
        let v = downsens_extension_fsf(&star, 2);
        assert!(v < 4.0);
        // Removing the center gives 4 isolated vertices (f_sf = 0, distance 1):
        // value ≤ 0 + 2·1 = 2.
        assert!(v <= 2.0 + 1e-9);
    }

    #[test]
    fn extension_is_lipschitz_under_vertex_removal() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let g = generators::erdos_renyi(7, 0.35, &mut rng);
            for delta in 1..=3usize {
                let base = downsens_extension_fsf(&g, delta);
                for v in g.vertices() {
                    let (h, _) = remove_vertex(&g, v);
                    let val = downsens_extension_fsf(&h, delta);
                    assert!(
                        (base - val).abs() <= delta as f64 + 1e-9,
                        "Lemma A.1 extension not {delta}-Lipschitz"
                    );
                }
            }
        }
    }

    #[test]
    fn extension_underestimates_fsf() {
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..10 {
            let g = generators::erdos_renyi(7, 0.4, &mut rng);
            for delta in 1..=4usize {
                assert!(
                    downsens_extension_fsf(&g, delta) <= g.spanning_forest_size() as f64 + 1e-9
                );
            }
        }
    }

    #[test]
    fn extension_is_monotone_in_delta() {
        let mut rng = StdRng::seed_from_u64(57);
        for _ in 0..10 {
            let g = generators::erdos_renyi(7, 0.4, &mut rng);
            let mut prev = f64::NEG_INFINITY;
            for delta in 1..=5usize {
                let v = downsens_extension_fsf(&g, delta);
                assert!(v + 1e-9 >= prev);
                prev = v;
            }
        }
    }

    #[test]
    fn anchor_holds_exactly_when_ds_at_most_delta() {
        let mut rng = StdRng::seed_from_u64(59);
        for _ in 0..15 {
            let g = generators::erdos_renyi(6, 0.4, &mut rng);
            let ds = down_sensitivity_fsf(&g).value();
            if ds >= 1 {
                let at_ds = downsens_extension_fsf(&g, ds);
                assert!(approx(at_ds, g.spanning_forest_size() as f64));
            }
        }
    }

    #[test]
    fn restricting_to_low_sensitivity_subgraphs_would_overestimate() {
        // The worked counterexample documented in DESIGN.md: on this dense graph
        // with DS = 3, restricting the minimum to subgraphs of down-sensitivity ≤ 2
        // (as in the arXiv statement) yields 7 > f_sf = 6; the unrestricted minimum
        // used by this module stays ≤ f_sf.
        let g = Graph::from_edges(
            7,
            &[
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
                (2, 5),
                (3, 6),
                (4, 6),
            ],
        );
        assert_eq!(down_sensitivity_fsf(&g).value(), 3);
        let restricted = {
            let n = g.num_vertices() as f64;
            let mut best = f64::INFINITY;
            for subset in ccdp_graph::subgraph::all_vertex_subsets(&g) {
                let (h, _) = ccdp_graph::subgraph::induced_subgraph(&g, &subset);
                if down_sensitivity_fsf(&h).value() <= 2 {
                    best =
                        best.min(h.spanning_forest_size() as f64 + 2.0 * (n - subset.len() as f64));
                }
            }
            best
        };
        assert!(restricted > g.spanning_forest_size() as f64);
        assert!(downsens_extension_fsf(&g, 2) <= g.spanning_forest_size() as f64);
    }

    #[test]
    fn generic_interface_matches_fsf_specialization() {
        let g = generators::cycle(5);
        let generic = downsens_extension(&g, 2.0, |h| h.spanning_forest_size() as f64);
        assert!(approx(generic, downsens_extension_fsf(&g, 2)));
    }

    #[test]
    fn mcshane_step_is_the_identity_on_fdelta_for_both_backends() {
        // f_Δ is Δ-Lipschitz, so min_H f_Δ(H) + Δ·d(H, G) = f_Δ(G) exactly;
        // a strict gap would expose a non-Lipschitz backend bug.
        let mut rng = StdRng::seed_from_u64(61);
        let approx5 = |a: f64, b: f64| (a - b).abs() < 1e-5;
        for _ in 0..3 {
            let g = generators::erdos_renyi(7, 0.4, &mut rng);
            for delta in 1..=3usize {
                for backend in [SolverBackend::Combinatorial, SolverBackend::Simplex] {
                    let direct = crate::extension::LipschitzExtension::new(delta)
                        .with_backend(backend)
                        .evaluate(&g)
                        .unwrap();
                    let mcshane = downsens_extension_fdelta(&g, delta, backend).unwrap();
                    assert!(
                        approx5(direct, mcshane),
                        "{backend:?} Δ={delta}: f_Δ={direct} vs McShane={mcshane}"
                    );
                }
            }
        }
    }

    #[test]
    fn downsens_extension_dominates_the_polytope_extension() {
        // b f_Δ is the largest Δ-Lipschitz underestimate over the induced
        // order, so it dominates f_Δ pointwise.
        let mut rng = StdRng::seed_from_u64(63);
        for _ in 0..5 {
            let g = generators::erdos_renyi(7, 0.4, &mut rng);
            for delta in 1..=3usize {
                let fdelta = crate::extension::LipschitzExtension::new(delta)
                    .evaluate(&g)
                    .unwrap();
                let bf = downsens_extension_fsf(&g, delta);
                assert!(
                    fdelta <= bf + 1e-6,
                    "Δ={delta}: f_Δ = {fdelta} exceeds b f_Δ = {bf}"
                );
            }
        }
    }
}
