//! Shared, validating configuration for every estimator in this crate.
//!
//! The estimators used to carry ad-hoc `with_*` setters that `assert!`-panicked
//! on bad input. [`EstimatorConfig`] replaces them with one builder whose
//! setters never panic; validation happens once, in
//! [`EstimatorConfig::validate`] (called by every `from_config` constructor),
//! and reports typed [`ConfigError`]s so services can reject bad requests
//! without catching panics.

use crate::cache::{ExtensionCache, GraphTag};
use crate::extension::FamilyOptions;
use ccdp_exec::PhaseProfiler;
use ccdp_graph::GraphVersion;
use ccdp_lp::SolverBackend;
use ccdp_obs::TraceCtx;
use std::fmt;
use std::sync::Arc;

/// Per-request observability handles threaded through an estimator run:
/// an optional trace context (span events land in its ring buffer) and an
/// optional phase profiler (solver phase timings land in its report).
///
/// Both are pure observation — they never consume randomness or change a
/// released value — and both default to `None`, which costs one branch per
/// would-be event. Excluded from [`EstimatorConfig`] equality: two configs
/// that differ only in who is watching are the same configuration.
#[derive(Clone, Default)]
pub struct ObsHandles {
    /// Trace context events are emitted into, if this run is traced.
    pub trace: Option<TraceCtx>,
    /// Profiler solver phases are recorded into, if this run is profiled.
    pub profiler: Option<Arc<PhaseProfiler>>,
}

impl fmt::Debug for ObsHandles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandles")
            .field("trace", &self.trace.as_ref().map(|t| t.id))
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

/// Typed validation errors produced by [`EstimatorConfig::validate`] and the
/// estimator constructors.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// ε must be strictly positive and finite.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// β must lie strictly between 0 and 1.
    InvalidBeta {
        /// The rejected value.
        value: f64,
    },
    /// Δmax must be at least 1.
    InvalidDeltaMax {
        /// The rejected value.
        value: usize,
    },
    /// The node-count budget fraction must lie strictly between 0 and 1.
    InvalidNodeCountFraction {
        /// The rejected value.
        value: f64,
    },
    /// A fixed Lipschitz parameter must be at least 1.
    InvalidDelta {
        /// The rejected value.
        value: usize,
    },
    /// The thread budget must be at least 1.
    InvalidThreads {
        /// The rejected value.
        value: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidEpsilon { value } => {
                write!(f, "epsilon must be positive and finite, got {value}")
            }
            ConfigError::InvalidBeta { value } => {
                write!(f, "beta must lie strictly in (0, 1), got {value}")
            }
            ConfigError::InvalidDeltaMax { value } => {
                write!(f, "delta_max must be at least 1, got {value}")
            }
            ConfigError::InvalidNodeCountFraction { value } => {
                write!(
                    f,
                    "node-count budget fraction must lie strictly in (0, 1), got {value}"
                )
            }
            ConfigError::InvalidDelta { value } => {
                write!(f, "delta must be at least 1, got {value}")
            }
            ConfigError::InvalidThreads { value } => {
                write!(f, "threads must be at least 1, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder-style configuration shared by the private estimators (and reused by
/// the baselines for their common ε validation).
///
/// Setters store raw values and never panic; call [`EstimatorConfig::validate`]
/// (or any `from_config` constructor, which does it for you) to surface typed
/// errors.
///
/// ```
/// use ccdp_core::{ConfigError, EstimatorConfig};
///
/// let ok = EstimatorConfig::new(1.0).with_beta(0.1).with_delta_max(64);
/// assert!(ok.validate().is_ok());
///
/// let bad = EstimatorConfig::new(1.0).with_beta(1.5);
/// assert_eq!(bad.validate(), Err(ConfigError::InvalidBeta { value: 1.5 }));
/// ```
#[derive(Clone, Debug)]
pub struct EstimatorConfig {
    epsilon: f64,
    beta: Option<f64>,
    delta_max: Option<usize>,
    node_count_fraction: f64,
    solver: SolverBackend,
    family_cache_enabled: bool,
    shared_family_cache: Option<Arc<ExtensionCache>>,
    graph_tag: Option<GraphTag>,
    threads: Option<usize>,
    micro_solver: bool,
    solve_dedup: bool,
    obs: ObsHandles,
}

impl PartialEq for EstimatorConfig {
    fn eq(&self, other: &Self) -> bool {
        let same_cache = match (&self.shared_family_cache, &other.shared_family_cache) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.epsilon == other.epsilon
            && self.beta == other.beta
            && self.delta_max == other.delta_max
            && self.node_count_fraction == other.node_count_fraction
            && self.solver == other.solver
            && self.family_cache_enabled == other.family_cache_enabled
            && same_cache
            && self.graph_tag == other.graph_tag
            && self.threads == other.threads
            && self.micro_solver == other.micro_solver
            && self.solve_dedup == other.solve_dedup
    }
}

impl EstimatorConfig {
    /// Default share of ε spent on the node-count release by the
    /// connected-components estimator.
    pub const DEFAULT_NODE_COUNT_FRACTION: f64 = 0.1;

    /// Starts a configuration with total privacy parameter `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        EstimatorConfig {
            epsilon,
            beta: None,
            delta_max: None,
            node_count_fraction: Self::DEFAULT_NODE_COUNT_FRACTION,
            solver: SolverBackend::default(),
            family_cache_enabled: true,
            shared_family_cache: None,
            graph_tag: None,
            threads: None,
            micro_solver: true,
            solve_dedup: true,
            obs: ObsHandles::default(),
        }
    }

    /// Attaches a trace context: estimator runs emit cache, phase, noise and
    /// release span events into it. Observation only — never changes values.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.obs.trace = Some(trace);
        self
    }

    /// Attaches a phase profiler: solver phases record wall clock into it.
    /// Observation only — never changes values.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.obs.profiler = Some(profiler);
        self
    }

    /// The observability handles threaded through this configuration.
    pub fn obs(&self) -> &ObsHandles {
        &self.obs
    }

    /// Enables or disables the micro-component fast paths of the large-graph
    /// family engine (default enabled). A pure execution knob: the micro
    /// solver replicates the general solver bit-for-bit, so this affects
    /// wall-clock only, never values, privacy or accuracy. Exposed for
    /// ablation benchmarks.
    pub fn with_micro_solver(mut self, enabled: bool) -> Self {
        self.micro_solver = enabled;
        self
    }

    /// Enables or disables isomorphism-class solve dedup across identical
    /// small components (default enabled). Like the micro solver, a pure
    /// execution knob — deduplicated solves reuse bit-identical solutions.
    pub fn with_solve_dedup(mut self, enabled: bool) -> Self {
        self.solve_dedup = enabled;
        self
    }

    /// Sets the thread budget for per-release parallel solving (default:
    /// the machine's available parallelism). `1` runs today's sequential path;
    /// any other value fans the independent family/component subproblems out
    /// over a scoped work-stealing map. A data-independent execution knob: the
    /// release is **bit-for-bit identical for every thread budget** (results
    /// merge in deterministic order), so this affects wall-clock only, never
    /// privacy or accuracy.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the GEM failure probability β (default `1 / ln ln n`, clamped
    /// to `(0.001, 0.5)`).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Overrides the largest Δ of the selection grid (default `|V(G)|`).
    ///
    /// This is a public, data-independent parameter; choosing it below the
    /// graph's Δ* degrades accuracy but never privacy.
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        self.delta_max = Some(delta_max);
        self
    }

    /// Sets the fraction of ε spent on the node-count release (in `(0, 1)`).
    pub fn with_node_count_fraction(mut self, fraction: f64) -> Self {
        self.node_count_fraction = fraction;
        self
    }

    /// Selects the forest-polytope solver backend (default
    /// [`SolverBackend::Combinatorial`]).
    ///
    /// A public, data-independent implementation choice: both backends are
    /// exact, so this affects runtime only, never privacy or accuracy.
    pub fn with_solver(mut self, solver: SolverBackend) -> Self {
        self.solver = solver;
        self
    }

    /// Enables or disables the per-estimator Lipschitz-extension family cache
    /// (default enabled). Caching only memoizes a deterministic,
    /// never-released intermediate, so it does not affect privacy.
    pub fn with_family_caching(mut self, enabled: bool) -> Self {
        self.family_cache_enabled = enabled;
        self
    }

    /// Shares an existing [`ExtensionCache`] across estimators (e.g. one
    /// cache for a whole serving fleet answering queries about the same
    /// graphs). Implies family caching is enabled.
    pub fn with_shared_family_cache(mut self, cache: Arc<ExtensionCache>) -> Self {
        self.family_cache_enabled = true;
        self.shared_family_cache = Some(cache);
        self
    }

    /// Tags the estimator's cache lookups with the catalog identity of the
    /// graph snapshot it serves (`id` at `version`). Tagged entries never
    /// answer for another version of the same graph and can be invalidated in
    /// bulk (see [`ExtensionCache::invalidate_graph`]). A data-independent
    /// serving annotation: it changes which cache slot is used, never what is
    /// computed.
    pub fn with_graph_tag(mut self, id: impl Into<String>, version: GraphVersion) -> Self {
        self.graph_tag = Some(GraphTag::new(id, version));
        self
    }

    /// The total privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The β override, if any.
    pub fn beta(&self) -> Option<f64> {
        self.beta
    }

    /// The Δmax override, if any.
    pub fn delta_max(&self) -> Option<usize> {
        self.delta_max
    }

    /// The node-count budget fraction.
    pub fn node_count_fraction(&self) -> f64 {
        self.node_count_fraction
    }

    /// The selected forest-polytope solver backend.
    pub fn solver(&self) -> SolverBackend {
        self.solver
    }

    /// Whether the family cache is enabled.
    pub fn family_caching(&self) -> bool {
        self.family_cache_enabled
    }

    /// The shared family cache, if one was supplied.
    pub fn shared_family_cache(&self) -> Option<&Arc<ExtensionCache>> {
        self.shared_family_cache.as_ref()
    }

    /// The catalog tag cache lookups carry, if one was set.
    pub fn graph_tag(&self) -> Option<&GraphTag> {
        self.graph_tag.as_ref()
    }

    /// The thread-budget override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Whether the micro-component fast paths are enabled.
    pub fn micro_solver(&self) -> bool {
        self.micro_solver
    }

    /// Whether isomorphism-class solve dedup is enabled.
    pub fn solve_dedup(&self) -> bool {
        self.solve_dedup
    }

    /// The family-engine fast-path toggles this configuration selects.
    pub fn family_options(&self) -> FamilyOptions {
        FamilyOptions {
            micro: self.micro_solver,
            dedup: self.solve_dedup,
        }
    }

    /// The thread budget to run with: the override if set, otherwise the
    /// machine's available parallelism — and never *more* than the machine's
    /// available parallelism. Oversubscribing physical cores with scoped
    /// workers slows the solve down instead of speeding it up (each worker
    /// adds scheduling and cache pressure but no extra compute), so an
    /// explicit budget above the hardware limit is clamped. Results are
    /// bit-for-bit identical for every budget, so the clamp never changes
    /// output.
    pub fn resolved_threads(&self) -> usize {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match self.threads {
            Some(requested) => requested.min(hardware).max(1),
            None => hardware,
        }
    }

    /// Resolves the family cache this configuration asks for: the shared one
    /// if supplied, a fresh private one if caching is enabled, `None` if
    /// disabled. Called once per estimator construction.
    pub(crate) fn resolve_family_cache(&self) -> Option<Arc<ExtensionCache>> {
        if !self.family_cache_enabled {
            return None;
        }
        Some(
            self.shared_family_cache
                .clone()
                .unwrap_or_else(|| Arc::new(ExtensionCache::default())),
        )
    }

    /// The β to use on an `n`-vertex graph: the override if set, otherwise the
    /// paper's default `1 / ln ln n` clamped to `(0.001, 0.5)`.
    pub fn resolved_beta(&self, n: usize) -> f64 {
        self.beta.unwrap_or_else(|| {
            let lnln = (n.max(3) as f64).ln().ln();
            (1.0 / lnln).clamp(0.001, 0.5)
        })
    }

    /// Checks every field, returning the first violation as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(ConfigError::InvalidEpsilon {
                value: self.epsilon,
            });
        }
        if let Some(beta) = self.beta {
            if !(beta.is_finite() && beta > 0.0 && beta < 1.0) {
                return Err(ConfigError::InvalidBeta { value: beta });
            }
        }
        if let Some(delta_max) = self.delta_max {
            if delta_max == 0 {
                return Err(ConfigError::InvalidDeltaMax { value: delta_max });
            }
        }
        let f = self.node_count_fraction;
        if !(f.is_finite() && f > 0.0 && f < 1.0) {
            return Err(ConfigError::InvalidNodeCountFraction { value: f });
        }
        if let Some(threads) = self.threads {
            if threads == 0 {
                return Err(ConfigError::InvalidThreads { value: threads });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(EstimatorConfig::new(1.0).validate().is_ok());
    }

    #[test]
    fn invalid_epsilon_is_typed() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = EstimatorConfig::new(eps).validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidEpsilon { .. }),
                "{eps} -> {err}"
            );
        }
    }

    #[test]
    fn invalid_beta_is_typed() {
        for beta in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            let err = EstimatorConfig::new(1.0)
                .with_beta(beta)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidBeta { .. }),
                "{beta} -> {err}"
            );
        }
    }

    #[test]
    fn invalid_delta_max_is_typed() {
        let err = EstimatorConfig::new(1.0)
            .with_delta_max(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidDeltaMax { value: 0 });
    }

    #[test]
    fn invalid_fraction_is_typed() {
        for frac in [0.0, 1.0, -0.2, f64::NAN] {
            let err = EstimatorConfig::new(1.0)
                .with_node_count_fraction(frac)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidNodeCountFraction { .. }),
                "{frac} -> {err}"
            );
        }
    }

    #[test]
    fn resolved_beta_uses_override_then_default() {
        assert_eq!(
            EstimatorConfig::new(1.0)
                .with_beta(0.25)
                .resolved_beta(1000),
            0.25
        );
        let default = EstimatorConfig::new(1.0).resolved_beta(1000);
        assert!(default > 0.0 && default <= 0.5);
    }

    #[test]
    fn display_messages_name_the_offender() {
        let msg = ConfigError::InvalidBeta { value: 3.0 }.to_string();
        assert!(msg.contains("beta") && msg.contains('3'));
    }

    #[test]
    fn solver_backend_defaults_to_combinatorial_and_is_selectable() {
        let config = EstimatorConfig::new(1.0);
        assert_eq!(config.solver(), SolverBackend::Combinatorial);
        let config = config.with_solver(SolverBackend::Simplex);
        assert_eq!(config.solver(), SolverBackend::Simplex);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn family_cache_resolution_honors_the_knobs() {
        // Default: caching on, fresh private cache.
        assert!(EstimatorConfig::new(1.0).resolve_family_cache().is_some());
        // Disabled: no cache.
        assert!(EstimatorConfig::new(1.0)
            .with_family_caching(false)
            .resolve_family_cache()
            .is_none());
        // Shared: the supplied handle is returned.
        let shared = Arc::new(ExtensionCache::default());
        let resolved = EstimatorConfig::new(1.0)
            .with_shared_family_cache(Arc::clone(&shared))
            .resolve_family_cache()
            .unwrap();
        assert!(Arc::ptr_eq(&shared, &resolved));
    }

    #[test]
    fn graph_tag_round_trips() {
        let config = EstimatorConfig::new(1.0);
        assert!(config.graph_tag().is_none());
        let config = config.with_graph_tag("fleet/g0", GraphVersion::new(3));
        let tag = config.graph_tag().unwrap();
        assert_eq!(tag.id, "fleet/g0");
        assert_eq!(tag.version, GraphVersion::new(3));
        assert!(config.validate().is_ok());
    }

    #[test]
    fn threads_knob_validates_and_resolves() {
        let err = EstimatorConfig::new(1.0)
            .with_threads(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidThreads { value: 0 });
        let cfg = EstimatorConfig::new(1.0).with_threads(8);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.threads(), Some(8));
        // An explicit budget is honored up to the machine's parallelism and
        // clamped above it (oversubscription only slows the solve down).
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(cfg.resolved_threads(), 8.min(hardware));
        assert_eq!(
            EstimatorConfig::new(1.0).with_threads(1).resolved_threads(),
            1
        );
        // Default resolves to the machine's parallelism, never below 1.
        assert!(EstimatorConfig::new(1.0).resolved_threads() >= 1);
    }

    #[test]
    fn fast_path_toggles_default_on_and_round_trip() {
        let cfg = EstimatorConfig::new(1.0);
        assert!(cfg.micro_solver() && cfg.solve_dedup());
        assert_eq!(cfg.family_options(), FamilyOptions::default());
        let cfg = cfg.with_micro_solver(false).with_solve_dedup(false);
        assert!(!cfg.micro_solver() && !cfg.solve_dedup());
        assert!(cfg.validate().is_ok());
        assert_ne!(
            EstimatorConfig::new(1.0),
            EstimatorConfig::new(1.0).with_micro_solver(false)
        );
        assert_ne!(
            EstimatorConfig::new(1.0),
            EstimatorConfig::new(1.0).with_solve_dedup(false)
        );
    }

    #[test]
    fn config_equality_accounts_for_the_new_fields() {
        assert_eq!(EstimatorConfig::new(1.0), EstimatorConfig::new(1.0));
        assert_ne!(
            EstimatorConfig::new(1.0),
            EstimatorConfig::new(1.0).with_threads(4)
        );
        assert_ne!(
            EstimatorConfig::new(1.0),
            EstimatorConfig::new(1.0).with_solver(SolverBackend::Simplex)
        );
        assert_ne!(
            EstimatorConfig::new(1.0).with_graph_tag("g", GraphVersion::INITIAL),
            EstimatorConfig::new(1.0).with_graph_tag("g", GraphVersion::new(1))
        );
        let shared = Arc::new(ExtensionCache::default());
        assert_eq!(
            EstimatorConfig::new(1.0).with_shared_family_cache(Arc::clone(&shared)),
            EstimatorConfig::new(1.0).with_shared_family_cache(shared)
        );
    }
}
