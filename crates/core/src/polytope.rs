//! The Δ-bounded forest polytope (Definition 3.1) — core-layer facade over
//! the pluggable solver stack in `ccdp_lp`.
//!
//! For a graph `G = (V, E)` and a bound `Δ > 0`, the polytope `P_Δ(G) ⊆ R^E`
//! consists of all `x ≥ 0` with
//!
//! * `x(E[S]) ≤ |S| − 1` for every `S ⊆ V`, `|S| ≥ 2`  (forest constraints),
//! * `x(δ(v)) ≤ Δ` for every vertex `v`                 (degree constraints),
//!
//! and the Lipschitz extension is `f_Δ(G) = max_{x ∈ P_Δ(G)} x(E)`.
//!
//! The maximization itself lives behind the [`PolytopeSolver`] trait in
//! `ccdp_lp` with two exact backends, selected by [`SolverBackend`]:
//!
//! * [`SolverBackend::Combinatorial`] (default) — certified combinatorial
//!   reductions (fractional leaf peeling, capped Kruskal greedy, Lemma 1.8
//!   local repair) with a warm-started cutting-plane fallback for the
//!   irreducible fractional core;
//! * [`SolverBackend::Simplex`] — pure cutting planes over the incremental
//!   simplex with the min-cut separation oracle (Padberg–Wolsey).
//!
//! Everything is per-connected-component: the objective and all constraints
//! decompose, which keeps the subproblems small.

use crate::error::CoreError;
use ccdp_graph::Graph;
pub use ccdp_lp::{PolytopeSolution, PolytopeSolver, SolverBackend};

/// Maximizes `x(E)` over the Δ-bounded forest polytope of `g` with the
/// default (combinatorial) backend.
///
/// `delta` may be fractional (the polytope is defined for any `Δ > 0`),
/// although the paper's algorithm only uses integer values.
pub fn forest_polytope_max(g: &Graph, delta: f64) -> Result<PolytopeSolution, CoreError> {
    forest_polytope_max_with(g, delta, SolverBackend::default())
}

/// Maximizes `x(E)` over the Δ-bounded forest polytope of `g` with an
/// explicitly selected backend.
pub fn forest_polytope_max_with(
    g: &Graph,
    delta: f64,
    backend: SolverBackend,
) -> Result<PolytopeSolution, CoreError> {
    backend.solver().solve(g, delta).map_err(CoreError::from)
}

/// [`forest_polytope_max_with`] with a thread budget: connected components
/// are solved concurrently on up to `threads` worker threads and merged in
/// component order, so the solution is identical for every thread budget
/// (`threads <= 1` takes the sequential path exactly).
pub fn forest_polytope_max_threaded(
    g: &Graph,
    delta: f64,
    backend: SolverBackend,
    threads: usize,
) -> Result<PolytopeSolution, CoreError> {
    backend
        .solver()
        .solve_threaded(g, delta, threads)
        .map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    const BACKENDS: [SolverBackend; 2] = [SolverBackend::Combinatorial, SolverBackend::Simplex];

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn empty_graph_has_value_zero() {
        let g = Graph::new(5);
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, 3.0, backend).unwrap();
            assert!(approx(sol.value, 0.0));
        }
    }

    #[test]
    fn single_edge_value_is_min_of_one_and_delta() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        for backend in BACKENDS {
            assert!(approx(
                forest_polytope_max_with(&g, 1.0, backend).unwrap().value,
                1.0
            ));
            assert!(approx(
                forest_polytope_max_with(&g, 0.5, backend).unwrap().value,
                0.5
            ));
            assert!(approx(
                forest_polytope_max_with(&g, 4.0, backend).unwrap().value,
                1.0
            ));
        }
    }

    #[test]
    fn triangle_with_large_delta_gives_spanning_tree_size() {
        let g = generators::cycle(3);
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, 2.0, backend).unwrap();
            assert!(approx(sol.value, 2.0));
        }
    }

    #[test]
    fn star_value_is_capped_by_delta() {
        // K_{1,5}: the center's degree constraint caps the objective at Δ.
        let g = generators::star(5);
        for backend in BACKENDS {
            for delta in [1.0, 2.0, 3.0, 4.0] {
                let sol = forest_polytope_max_with(&g, delta, backend).unwrap();
                assert!(
                    approx(sol.value, delta),
                    "star value {} != delta {delta} ({backend:?})",
                    sol.value
                );
            }
            assert!(approx(
                forest_polytope_max_with(&g, 5.0, backend).unwrap().value,
                5.0
            ));
            assert!(approx(
                forest_polytope_max_with(&g, 7.0, backend).unwrap().value,
                5.0
            ));
        }
    }

    #[test]
    fn complete_graph_forest_constraint_binds() {
        // K_4 with Δ = 3: without forest constraints the degree bound would allow
        // x(E) = 6, but the spanning-tree bound caps it at 3.
        let g = generators::complete(4);
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, 3.0, backend).unwrap();
            assert!(approx(sol.value, 3.0), "K4 value was {}", sol.value);
            // With Δ = 1 the answer is the fractional matching bound: each vertex
            // has degree weight ≤ 1, so x(E) ≤ 4/2 = 2.
            let sol1 = forest_polytope_max_with(&g, 1.0, backend).unwrap();
            assert!(
                approx(sol1.value, 2.0),
                "K4 with delta=1 was {}",
                sol1.value
            );
        }
    }

    #[test]
    fn two_components_decompose() {
        let g = generators::disjoint_union(&generators::cycle(3), &generators::star(3));
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, 2.0, backend).unwrap();
            // Cycle contributes 2 (spanning tree), star contributes min(2, 3) = 2.
            assert!(approx(sol.value, 4.0));
        }
    }

    #[test]
    fn edge_weights_are_a_feasible_point() {
        let g = generators::complete(5);
        let delta = 2.0;
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, delta, backend).unwrap();
            let edges = g.edge_vec();
            // Degree constraints.
            for v in g.vertices() {
                let total: f64 = edges
                    .iter()
                    .zip(&sol.edge_weights)
                    .filter(|(&(a, b), _)| a == v || b == v)
                    .map(|(_, &w)| w)
                    .sum();
                assert!(total <= delta + 1e-6);
            }
            // Value consistency.
            assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
            // All weights within [0, 1].
            for &w in &sol.edge_weights {
                assert!((-1e-9..=1.0 + 1e-9).contains(&w));
            }
        }
    }

    #[test]
    fn value_is_monotone_in_delta() {
        let g = generators::caveman(3, 4);
        for backend in BACKENDS {
            let mut prev = 0.0;
            for delta in [1.0, 2.0, 3.0, 4.0, 5.0] {
                let v = forest_polytope_max_with(&g, delta, backend).unwrap().value;
                assert!(v + 1e-9 >= prev, "not monotone at delta {delta}");
                prev = v;
            }
        }
    }

    #[test]
    fn value_never_exceeds_spanning_forest_size() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let g = generators::erdos_renyi(12, 0.3, &mut rng);
            for delta in [1.0, 2.0, 3.0] {
                let v = forest_polytope_max(&g, delta).unwrap().value;
                assert!(v <= g.spanning_forest_size() as f64 + 1e-6);
            }
        }
    }

    #[test]
    fn final_point_satisfies_every_forest_constraint() {
        // K_4 with a pendant path: the whole-vertex-set constraint is loose
        // (|V| - 1 = 7), so the degree bounds alone would allow up to 6 units of
        // weight inside the clique; the returned point must nevertheless satisfy
        // x(E[S]) ≤ |S| - 1 for every subset S — for both backends.
        let mut g = generators::complete(4);
        for _ in 0..4 {
            g.add_vertex();
        }
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(6, 7);
        for backend in BACKENDS {
            let sol = forest_polytope_max_with(&g, 3.0, backend).unwrap();
            assert!(
                approx(sol.value, g.spanning_forest_size() as f64),
                "value {}",
                sol.value
            );
            let edges = g.edge_vec();
            let n = g.num_vertices();
            for mask in 0u32..(1 << n) {
                let set: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
                if set.len() < 2 {
                    continue;
                }
                let inside: f64 = edges
                    .iter()
                    .zip(&sol.edge_weights)
                    .filter(|(&(a, b), _)| set.contains(&a) && set.contains(&b))
                    .map(|(_, &w)| w)
                    .sum();
                assert!(
                    inside <= (set.len() - 1) as f64 + 1e-6,
                    "forest constraint violated for S = {set:?}: {inside}"
                );
            }
        }
    }

    #[test]
    fn threaded_solve_matches_sequential_solve() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..4 {
            let g = generators::erdos_renyi(24, 0.12, &mut rng);
            for backend in BACKENDS {
                for delta in [1.0, 2.0] {
                    let seq = forest_polytope_max_with(&g, delta, backend).unwrap();
                    for threads in [1, 2, 4, 8] {
                        let par =
                            forest_polytope_max_threaded(&g, delta, backend, threads).unwrap();
                        assert_eq!(
                            seq.value.to_bits(),
                            par.value.to_bits(),
                            "threads={threads} delta={delta} ({backend:?})"
                        );
                        assert_eq!(seq.edge_weights.len(), par.edge_weights.len());
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_solve_matches_sequential_above_work_threshold() {
        // 700 disjoint 5-cycles: n + m = 7000 crosses the parallel work
        // threshold, so this actually exercises the per-component fan-out.
        let mut edges = Vec::new();
        for c in 0..700usize {
            let base = 5 * c;
            for i in 0..5 {
                edges.push((base + i, base + (i + 1) % 5));
            }
        }
        let big = Graph::from_edges(3500, &edges);
        let seq = forest_polytope_max_with(&big, 1.0, SolverBackend::Combinatorial).unwrap();
        for threads in [2, 4, 8] {
            let par =
                forest_polytope_max_threaded(&big, 1.0, SolverBackend::Combinatorial, threads)
                    .unwrap();
            assert_eq!(seq.value.to_bits(), par.value.to_bits());
            assert_eq!(
                seq.edge_weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                par.edge_weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn invalid_delta_is_rejected() {
        let g = generators::path(3);
        for backend in BACKENDS {
            assert!(matches!(
                forest_polytope_max_with(&g, 0.0, backend),
                Err(CoreError::InvalidParameter(_))
            ));
            assert!(matches!(
                forest_polytope_max_with(&g, -1.0, backend),
                Err(CoreError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn backend_selector_resolves_named_solvers() {
        assert_eq!(
            SolverBackend::Combinatorial.solver().name(),
            "combinatorial-forest"
        );
        assert_eq!(
            SolverBackend::Simplex.solver().name(),
            "simplex-cutting-planes"
        );
        assert_eq!(SolverBackend::default(), SolverBackend::Combinatorial);
    }
}
