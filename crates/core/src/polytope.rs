//! The Δ-bounded forest polytope (Definition 3.1) and its optimization by
//! constraint generation.
//!
//! For a graph `G = (V, E)` and a bound `Δ > 0`, the polytope `P_Δ(G) ⊆ R^E`
//! consists of all `x ≥ 0` with
//!
//! * `x(E[S]) ≤ |S| − 1` for every `S ⊆ V`, `|S| ≥ 2`  (forest constraints),
//! * `x(δ(v)) ≤ Δ` for every vertex `v`                 (degree constraints),
//!
//! and the Lipschitz extension is `f_Δ(G) = max_{x ∈ P_Δ(G)} x(E)`.
//!
//! The forest constraints are exponentially many, so we solve the LP by cutting
//! planes: start with the degree constraints, the per-edge bounds `x_e ≤ 1`
//! (the `|S| = 2` forest constraints) and the full-vertex-set constraint, then
//! repeatedly call a separation oracle that finds a violated forest constraint and
//! re-solve. The separation problem — maximize `x(E[S]) − (|S| − 1)` over sets `S`
//! containing a fixed root — is a maximum-weight-closure (project-selection)
//! problem and is solved exactly with one min-cut per root (Padberg–Wolsey's
//! observation that this family of constraints admits a polynomial separation
//! oracle).
//!
//! Everything is per-connected-component: the objective and all constraints
//! decompose, which keeps the LPs small.

use crate::error::CoreError;
use ccdp_flow::{max_weight_closure, ClosureInstance};
use ccdp_graph::components::components;
use ccdp_graph::subgraph::induced_subgraph;
use ccdp_graph::Graph;
use ccdp_lp::LinearProgram;

/// Tolerance for constraint violation in the separation oracle.
const VIOLATION_TOL: f64 = 1e-6;
/// Safety bound on cutting-plane rounds per component.
const MAX_ROUNDS: usize = 400;
/// Most-violated cuts admitted per round. Empirically (supercritical
/// Erdős–Rényi, Δ just below Δ*) larger budgets inflate the dense tableau and
/// slow every subsequent from-scratch re-solve more than they save in rounds;
/// 5 is the measured sweet spot for the current simplex.
const MAX_CUTS_PER_ROUND: usize = 5;

/// Result of maximizing `x(E)` over the Δ-bounded forest polytope.
#[derive(Clone, Debug)]
pub struct PolytopeSolution {
    /// The optimum `f_Δ(G)`.
    pub value: f64,
    /// Optimal edge weights, indexed like [`Graph::edge_vec`].
    pub edge_weights: Vec<f64>,
    /// Number of violated forest constraints that had to be generated.
    pub generated_cuts: usize,
    /// Total simplex pivots across all LP re-solves.
    pub lp_iterations: usize,
    /// Number of LP solves (including re-solves after adding cuts).
    pub lp_solves: usize,
}

/// Maximizes `x(E)` over the Δ-bounded forest polytope of `g`.
///
/// `delta` may be fractional (the polytope is defined for any `Δ > 0`), although
/// the paper's algorithm only uses integer values.
pub fn forest_polytope_max(g: &Graph, delta: f64) -> Result<PolytopeSolution, CoreError> {
    if delta <= 0.0 || !delta.is_finite() {
        return Err(CoreError::InvalidParameter(format!(
            "delta must be positive, got {delta}"
        )));
    }
    let all_edges = g.edge_vec();
    let edge_index: std::collections::HashMap<(usize, usize), usize> = all_edges
        .iter()
        .copied()
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();

    let mut total_value = 0.0;
    let mut edge_weights = vec![0.0; all_edges.len()];
    let mut generated_cuts = 0;
    let mut lp_iterations = 0;
    let mut lp_solves = 0;

    for comp in components(g) {
        if comp.len() < 2 {
            continue;
        }
        let (local, map) = induced_subgraph(g, &comp);
        if local.has_no_edges() {
            continue;
        }
        let sol = solve_component(&local, delta)?;
        total_value += sol.value;
        generated_cuts += sol.generated_cuts;
        lp_iterations += sol.lp_iterations;
        lp_solves += sol.lp_solves;
        for ((lu, lv), w) in local.edge_vec().into_iter().zip(sol.edge_weights) {
            let (gu, gv) = (map[lu], map[lv]);
            let key = if gu < gv { (gu, gv) } else { (gv, gu) };
            edge_weights[edge_index[&key]] = w;
        }
    }

    Ok(PolytopeSolution {
        value: total_value,
        edge_weights,
        generated_cuts,
        lp_iterations,
        lp_solves,
    })
}

/// Solves one connected component (must have at least one edge).
fn solve_component(g: &Graph, delta: f64) -> Result<PolytopeSolution, CoreError> {
    let n = g.num_vertices();
    let edges = g.edge_vec();
    let m = edges.len();

    let mut lp = LinearProgram::new(m, vec![1.0; m]);
    // Degree constraints x(δ(v)) ≤ Δ.
    for v in 0..n {
        let terms: Vec<(usize, f64)> = edges
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == v || b == v)
            .map(|(i, _)| (i, 1.0))
            .collect();
        if !terms.is_empty() {
            lp.add_constraint_sparse(&terms, delta);
        }
    }
    // Per-edge bounds (the |S| = 2 forest constraints).
    for i in 0..m {
        lp.add_constraint_sparse(&[(i, 1.0)], 1.0);
    }
    // Whole-component constraint x(E) ≤ n − 1.
    lp.add_constraint_sparse(
        &(0..m).map(|i| (i, 1.0)).collect::<Vec<_>>(),
        (n - 1) as f64,
    );

    let mut generated_cuts = 0;
    let mut lp_iterations = 0;
    let mut seen_cuts: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();

    for round in 0..MAX_ROUNDS {
        let sol = lp.solve()?;
        lp_iterations += sol.iterations;
        let violated = find_violated_forest_constraints(g, &edges, &sol.values);
        let mut added = false;
        for set in violated {
            if seen_cuts.insert(set.clone()) {
                let terms: Vec<(usize, f64)> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| {
                        set.binary_search(&a).is_ok() && set.binary_search(&b).is_ok()
                    })
                    .map(|(i, _)| (i, 1.0))
                    .collect();
                lp.add_constraint_sparse(&terms, (set.len() - 1) as f64);
                generated_cuts += 1;
                added = true;
            }
        }
        if !added {
            return Ok(PolytopeSolution {
                value: sol.objective_value,
                edge_weights: sol.values,
                generated_cuts,
                lp_iterations,
                lp_solves: round + 1,
            });
        }
    }
    Err(CoreError::SeparationDidNotConverge { rounds: MAX_ROUNDS })
}

/// Separation oracle: returns vertex sets `S` (sorted) whose forest constraint
/// `x(E[S]) ≤ |S| − 1` is violated by `x`, or an empty vector if none is.
///
/// For each root `r` it solves a maximum-weight-closure instance whose optimum is
/// `max_{S ∋ r} [x(E[S]) − |S| + 1]`; a positive optimum certifies a violation and
/// the optimal closure yields the violating set.
fn find_violated_forest_constraints(
    g: &Graph,
    edges: &[(usize, usize)],
    x: &[f64],
) -> Vec<Vec<usize>> {
    let n = g.num_vertices();
    let mut results: Vec<Vec<usize>> = Vec::new();
    let mut best_per_root: Vec<(f64, Vec<usize>)> = Vec::new();

    for root in 0..n {
        if g.degree(root) == 0 {
            continue;
        }
        let mut inst = ClosureInstance::new();
        // One item per non-root vertex, cost 1.
        let mut vertex_item = vec![usize::MAX; n];
        for (v, item) in vertex_item.iter_mut().enumerate() {
            if v != root {
                *item = inst.add_item(-1.0);
            }
        }
        // One item per edge with positive weight; edges incident to the root only
        // require their non-root endpoint.
        let mut useful = false;
        for (i, &(a, b)) in edges.iter().enumerate() {
            if x[i] <= VIOLATION_TOL {
                continue;
            }
            let e = inst.add_item(x[i]);
            if a != root {
                inst.add_requirement(e, vertex_item[a]);
            }
            if b != root {
                inst.add_requirement(e, vertex_item[b]);
            }
            useful = true;
        }
        if !useful {
            continue;
        }
        let closure = max_weight_closure(&inst);
        // closure.weight = max_{S ∋ root} x(E[S]) − (|S| − 1).
        if closure.weight > VIOLATION_TOL {
            let mut set: Vec<usize> = vec![root];
            for (v, &item) in vertex_item.iter().enumerate() {
                if v != root && closure.selected[item] {
                    set.push(v);
                }
            }
            set.sort_unstable();
            if set.len() >= 2 {
                best_per_root.push((closure.weight, set));
            }
        }
    }

    // Keep the most violated few cuts (adding every root's cut is wasteful since
    // many coincide).
    best_per_root.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, set) in best_per_root.into_iter() {
        if !results.contains(&set) {
            results.push(set);
        }
        if results.len() >= MAX_CUTS_PER_ROUND {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn empty_graph_has_value_zero() {
        let g = Graph::new(5);
        let sol = forest_polytope_max(&g, 3.0).unwrap();
        assert!(approx(sol.value, 0.0));
    }

    #[test]
    fn single_edge_value_is_min_of_one_and_delta() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert!(approx(forest_polytope_max(&g, 1.0).unwrap().value, 1.0));
        assert!(approx(forest_polytope_max(&g, 0.5).unwrap().value, 0.5));
        assert!(approx(forest_polytope_max(&g, 4.0).unwrap().value, 1.0));
    }

    #[test]
    fn triangle_with_large_delta_gives_spanning_tree_size() {
        let g = generators::cycle(3);
        let sol = forest_polytope_max(&g, 2.0).unwrap();
        assert!(approx(sol.value, 2.0));
    }

    #[test]
    fn star_value_is_capped_by_delta() {
        // K_{1,5}: the center's degree constraint caps the objective at Δ.
        let g = generators::star(5);
        for delta in [1.0, 2.0, 3.0, 4.0] {
            let sol = forest_polytope_max(&g, delta).unwrap();
            assert!(
                approx(sol.value, delta),
                "star value {} != delta {delta}",
                sol.value
            );
        }
        assert!(approx(forest_polytope_max(&g, 5.0).unwrap().value, 5.0));
        assert!(approx(forest_polytope_max(&g, 7.0).unwrap().value, 5.0));
    }

    #[test]
    fn complete_graph_forest_constraint_binds() {
        // K_4 with Δ = 3: without forest constraints the degree bound would allow
        // x(E) = 6, but the spanning-tree bound caps it at 3.
        let g = generators::complete(4);
        let sol = forest_polytope_max(&g, 3.0).unwrap();
        assert!(approx(sol.value, 3.0), "K4 value was {}", sol.value);
        // With Δ = 1 the answer is the fractional matching bound: each vertex has
        // degree weight ≤ 1, so x(E) ≤ 4/2 = 2.
        let sol1 = forest_polytope_max(&g, 1.0).unwrap();
        assert!(
            approx(sol1.value, 2.0),
            "K4 with delta=1 was {}",
            sol1.value
        );
    }

    #[test]
    fn two_components_decompose() {
        let g = generators::disjoint_union(&generators::cycle(3), &generators::star(3));
        let sol = forest_polytope_max(&g, 2.0).unwrap();
        // Cycle contributes 2 (spanning tree), star contributes min(2, 3) = 2.
        assert!(approx(sol.value, 4.0));
    }

    #[test]
    fn edge_weights_are_a_feasible_point() {
        let g = generators::complete(5);
        let delta = 2.0;
        let sol = forest_polytope_max(&g, delta).unwrap();
        let edges = g.edge_vec();
        // Degree constraints.
        for v in g.vertices() {
            let total: f64 = edges
                .iter()
                .zip(&sol.edge_weights)
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(_, &w)| w)
                .sum();
            assert!(total <= delta + 1e-6);
        }
        // Value consistency.
        assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
        // All weights within [0, 1].
        for &w in &sol.edge_weights {
            assert!((-1e-9..=1.0 + 1e-9).contains(&w));
        }
    }

    #[test]
    fn value_is_monotone_in_delta() {
        let g = generators::caveman(3, 4);
        let mut prev = 0.0;
        for delta in [1.0, 2.0, 3.0, 4.0, 5.0] {
            let v = forest_polytope_max(&g, delta).unwrap().value;
            assert!(v + 1e-9 >= prev, "not monotone at delta {delta}");
            prev = v;
        }
    }

    #[test]
    fn value_never_exceeds_spanning_forest_size() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let g = generators::erdos_renyi(12, 0.3, &mut rng);
            for delta in [1.0, 2.0, 3.0] {
                let v = forest_polytope_max(&g, delta).unwrap().value;
                assert!(v <= g.spanning_forest_size() as f64 + 1e-6);
            }
        }
    }

    #[test]
    fn final_point_satisfies_every_forest_constraint() {
        // K_4 with a pendant path: the whole-vertex-set constraint is loose
        // (|V| - 1 = 7), so the degree bounds alone would allow up to 6 units of
        // weight inside the clique; the returned point must nevertheless satisfy
        // x(E[S]) ≤ |S| - 1 for every subset S.
        let mut g = generators::complete(4);
        for _ in 0..4 {
            g.add_vertex();
        }
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(6, 7);
        let sol = forest_polytope_max(&g, 3.0).unwrap();
        assert!(
            approx(sol.value, g.spanning_forest_size() as f64),
            "value {}",
            sol.value
        );
        let edges = g.edge_vec();
        let n = g.num_vertices();
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
            if set.len() < 2 {
                continue;
            }
            let inside: f64 = edges
                .iter()
                .zip(&sol.edge_weights)
                .filter(|(&(a, b), _)| set.contains(&a) && set.contains(&b))
                .map(|(_, &w)| w)
                .sum();
            assert!(
                inside <= (set.len() - 1) as f64 + 1e-6,
                "forest constraint violated for S = {set:?}: {inside}"
            );
        }
    }

    #[test]
    fn separation_oracle_finds_a_violated_clique_constraint() {
        // Hand-craft an infeasible point: every edge of K_4 at weight 1 violates
        // x(E[V]) ≤ 3. The oracle must report a violating set.
        let g = generators::complete(4);
        let edges = g.edge_vec();
        let x = vec![1.0; edges.len()];
        let violated = find_violated_forest_constraints(&g, &edges, &x);
        assert!(!violated.is_empty());
        let set = &violated[0];
        let inside: f64 = edges
            .iter()
            .zip(&x)
            .filter(|(&(a, b), _)| set.contains(&a) && set.contains(&b))
            .map(|(_, &w)| w)
            .sum();
        assert!(inside > (set.len() - 1) as f64 + 1e-6);
    }

    #[test]
    fn separation_oracle_accepts_a_feasible_point() {
        let g = generators::complete(4);
        let edges = g.edge_vec();
        // A spanning star (indicator vector) is in the forest polytope.
        let x: Vec<f64> = edges
            .iter()
            .map(|&(a, _)| if a == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(find_violated_forest_constraints(&g, &edges, &x).is_empty());
    }

    #[test]
    fn invalid_delta_is_rejected() {
        let g = generators::path(3);
        assert!(matches!(
            forest_polytope_max(&g, 0.0),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            forest_polytope_max(&g, -1.0),
            Err(CoreError::InvalidParameter(_))
        ));
    }
}
