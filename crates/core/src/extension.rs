//! The family of Lipschitz extensions `{f_Δ}` of the spanning-forest size
//! (Definition 3.1 / Lemma 3.3 of the paper).
//!
//! `f_Δ(G)` is the maximum of `x(E)` over the Δ-bounded forest polytope of `G`.
//! Lemma 3.3 establishes the properties our private algorithm needs:
//!
//! 1. **Underestimation**: `f_Δ(G) ≤ f_sf(G)` for every Δ and G.
//! 2. **Monotonicity in Δ**: `f_Δ₁(G) ≤ f_Δ₂(G)` for `Δ₁ ≤ Δ₂`.
//! 3. **Δ-Lipschitzness** with respect to node distance.
//! 4. **Anchor**: if `G` has a spanning Δ-forest then `f_Δ(G) = f_sf(G)`.
//!
//! Property 4 doubles as a fast path: when the constructive procedure of Lemma 1.8
//! produces a spanning Δ-forest we can skip the LP entirely and return `f_sf(G)`.
//! This is exactly the case for the well-behaved graphs the paper's accuracy
//! analysis targets; the LP is only exercised when Δ is below the graph's Δ*.

use crate::error::CoreError;
use crate::polytope::{
    forest_polytope_max_threaded, forest_polytope_max_with, PolytopeSolution, SolverBackend,
};
use ccdp_exec::{parallel_map, PhaseProfiler};
use ccdp_graph::forest::{bounded_degree_spanning_forest, bounded_degree_spanning_forest_csr};
use ccdp_graph::{CsrGraph, Graph};
use ccdp_lp::{solve_partition, SolveOptions};

/// Minimum work size (`n + m`) before a family evaluation fans out across
/// threads. Below this the per-task overhead of the thread pool outweighs
/// the solve itself, and the serving tier's small graphs stay on the exact
/// sequential path. The gate depends only on the graph, never on load, so
/// results stay deterministic.
const PARALLEL_WORK_THRESHOLD: usize = 4096;

/// How `f_Δ(G)` was computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvaluationPath {
    /// A spanning Δ-forest was found, so `f_Δ(G) = f_sf(G)` (Lemma 3.3, item 1).
    SpanningForestFastPath,
    /// The Δ-bounded forest polytope LP was solved by constraint generation.
    LinearProgram,
}

/// Detailed result of evaluating `f_Δ(G)`.
#[derive(Clone, Debug)]
pub struct ExtensionEvaluation {
    /// The value `f_Δ(G)`.
    pub value: f64,
    /// The Lipschitz parameter Δ used.
    pub delta: usize,
    /// Which evaluation path was taken.
    pub path: EvaluationPath,
    /// LP details (present only when the LP path was taken).
    pub lp: Option<PolytopeSolution>,
}

/// The Lipschitz extension `f_Δ` for the size of the spanning forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LipschitzExtension {
    delta: usize,
    use_fast_path: bool,
    backend: SolverBackend,
}

impl LipschitzExtension {
    /// Creates the extension with Lipschitz parameter `delta ≥ 1`, evaluated
    /// with the default (combinatorial) polytope backend.
    ///
    /// # Panics
    /// Panics if `delta == 0`.
    pub fn new(delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        LipschitzExtension {
            delta,
            use_fast_path: true,
            backend: SolverBackend::default(),
        }
    }

    /// Disables the spanning-forest fast path so that the polytope is always
    /// maximized (used by tests and the runtime ablation experiment).
    pub fn without_fast_path(mut self) -> Self {
        self.use_fast_path = false;
        self
    }

    /// Selects the polytope solver backend used on the non-anchored path.
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The Lipschitz parameter Δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The polytope solver backend.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Evaluates `f_Δ(G)` (this is `EvalLipschitzExtension` of Algorithm 2).
    pub fn evaluate(&self, g: &Graph) -> Result<f64, CoreError> {
        Ok(self.evaluate_detailed(g)?.value)
    }

    /// Evaluates `f_Δ(G)` and reports how the value was obtained.
    pub fn evaluate_detailed(&self, g: &Graph) -> Result<ExtensionEvaluation, CoreError> {
        self.evaluate_detailed_threaded(g, 1)
    }

    /// [`evaluate_detailed`](Self::evaluate_detailed) with a thread budget:
    /// when the LP path is taken, its connected components are solved on up
    /// to `threads` workers. The value is identical for every budget
    /// (components merge in a fixed order); `threads <= 1` is exactly the
    /// sequential path.
    pub fn evaluate_detailed_threaded(
        &self,
        g: &Graph,
        threads: usize,
    ) -> Result<ExtensionEvaluation, CoreError> {
        if g.has_no_edges() {
            return Ok(ExtensionEvaluation {
                value: 0.0,
                delta: self.delta,
                path: EvaluationPath::SpanningForestFastPath,
                lp: None,
            });
        }
        if self.use_fast_path
            && (self.delta >= g.max_degree()
                || bounded_degree_spanning_forest(g, self.delta).is_some())
        {
            return Ok(ExtensionEvaluation {
                value: g.spanning_forest_size() as f64,
                delta: self.delta,
                path: EvaluationPath::SpanningForestFastPath,
                lp: None,
            });
        }
        let lp = if threads <= 1 {
            forest_polytope_max_with(g, self.delta as f64, self.backend)?
        } else {
            forest_polytope_max_threaded(g, self.delta as f64, self.backend, threads)?
        };
        Ok(ExtensionEvaluation {
            value: lp.value,
            delta: self.delta,
            path: EvaluationPath::LinearProgram,
            lp: Some(lp),
        })
    }
}

/// Fast-path toggles for the large-graph (CSR-partition) family engine.
///
/// Both are on by default and both are pure execution knobs: the micro solver
/// replicates the general solver bit-for-bit and dedup only reuses solutions
/// across identical labeled component slices, so every combination yields the
/// same family values. Exposed so benches can ablate each path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilyOptions {
    /// Enable micro-component closed forms / mirrored fast solves.
    pub micro: bool,
    /// Enable isomorphism-class (labeled-slice) solve dedup.
    pub dedup: bool,
}

impl Default for FamilyOptions {
    fn default() -> Self {
        FamilyOptions {
            micro: true,
            dedup: true,
        }
    }
}

impl FamilyOptions {
    fn solve_options(&self) -> SolveOptions {
        SolveOptions {
            micro: self.micro,
            dedup: self.dedup,
            // The family only feeds values into the GEM selection; skipping
            // weight assembly saves one `f64` per edge per grid point.
            want_weights: false,
        }
    }
}

/// Evaluates the whole family `{f_Δ}` on the given grid of Δ values with the
/// default (combinatorial) backend.
///
/// This is the loop of Algorithm 4 (steps 2–4) that feeds the Generalized
/// Exponential Mechanism. Values are clamped to be monotone non-decreasing in Δ,
/// which they are mathematically (Lemma 3.3) but may fail to be by a hair
/// numerically when different Δ values take different evaluation paths.
pub fn evaluate_family(g: &Graph, grid: &[usize]) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_with(g, grid, SolverBackend::default())
}

/// [`evaluate_family`] with an explicitly selected polytope solver backend.
///
/// Repeated evaluations of the same graph should go through
/// [`ExtensionCache`](crate::cache::ExtensionCache) instead, which wraps this
/// function with a graph-keyed memo.
pub fn evaluate_family_with(
    g: &Graph,
    grid: &[usize],
    backend: SolverBackend,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_tuned(g, grid, backend, 1, FamilyOptions::default())
}

/// [`evaluate_family_with`] with a thread budget.
///
/// The output is bit-for-bit identical for every thread budget; `threads <= 1`
/// (or a graph below the work threshold) takes the sequential path itself.
pub fn evaluate_family_threaded(
    g: &Graph,
    grid: &[usize],
    backend: SolverBackend,
    threads: usize,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_tuned(g, grid, backend, threads, FamilyOptions::default())
}

/// The full-knob family evaluation: backend, thread budget and fast-path
/// toggles.
///
/// Large graphs (`n + m ≥` the work threshold) on the combinatorial backend
/// route through the CSR-partition engine regardless of the thread budget: the
/// graph is partitioned into a component-contiguous arena **once**, each grid
/// point reuses it, and per-component solving goes through the micro/dedup
/// fast paths of `ccdp_lp`. The engine merges per-component values in
/// component order, so its results are bit-for-bit identical to the historical
/// per-Δ sequential path — for every thread budget and toggle combination.
/// Small graphs and the simplex backend keep the historical paths.
pub fn evaluate_family_tuned(
    g: &Graph,
    grid: &[usize],
    backend: SolverBackend,
    threads: usize,
    options: FamilyOptions,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_tuned_obs(g, grid, backend, threads, options, None)
}

/// [`evaluate_family_tuned`] with an optional [`PhaseProfiler`].
///
/// The CSR route records its usual `family/partition` / `family/anchor` /
/// `family/lp` phases (see [`evaluate_family_csr_profiled`]); the small-graph
/// and simplex routes — which have no internal phase structure — record the
/// whole evaluation as one `family/direct` phase, so every profiled request
/// carries at least one family phase regardless of which engine ran.
/// Profiling never changes values.
pub fn evaluate_family_tuned_obs(
    g: &Graph,
    grid: &[usize],
    backend: SolverBackend,
    threads: usize,
    options: FamilyOptions,
    profiler: Option<&PhaseProfiler>,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    let work = g.num_vertices() + g.num_edges();
    if backend == SolverBackend::Combinatorial && work >= PARALLEL_WORK_THRESHOLD {
        let arena = CsrGraph::from_graph(g);
        return evaluate_family_csr_profiled(&arena, grid, threads, options, profiler);
    }
    let _direct_timer = profiler.map(|p| p.phase("family/direct"));
    if threads <= 1 || work < PARALLEL_WORK_THRESHOLD {
        let mut out = Vec::with_capacity(grid.len());
        let mut running_max = 0.0f64;
        for &delta in grid {
            let mut eval = LipschitzExtension::new(delta)
                .with_backend(backend)
                .evaluate_detailed(g)?;
            running_max = running_max.max(eval.value);
            eval.value = running_max;
            out.push(eval);
        }
        return Ok(out);
    }
    // Simplex backend above the work threshold: fan out one task per Δ, then
    // apply the running-max clamp in grid order — exactly the order the
    // sequential loop uses. A single-point grid parallelizes across connected
    // components instead.
    let results = if grid.len() > 1 {
        parallel_map(threads, grid.len(), |i| {
            LipschitzExtension::new(grid[i])
                .with_backend(backend)
                .evaluate_detailed(g)
        })
    } else {
        grid.iter()
            .map(|&delta| {
                LipschitzExtension::new(delta)
                    .with_backend(backend)
                    .evaluate_detailed_threaded(g, threads)
            })
            .collect()
    };
    let mut out = Vec::with_capacity(grid.len());
    let mut running_max = 0.0f64;
    for result in results {
        let mut eval = result?;
        running_max = running_max.max(eval.value);
        eval.value = running_max;
        out.push(eval);
    }
    Ok(out)
}

/// Evaluates the family directly on a CSR arena with default toggles — the
/// entry point for graphs built by
/// [`CsrGraph::from_edge_stream`](ccdp_graph::CsrGraph::from_edge_stream)
/// that never materialize an adjacency-list [`Graph`].
pub fn evaluate_family_csr(
    arena: &CsrGraph,
    grid: &[usize],
    threads: usize,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_csr_with(arena, grid, threads, FamilyOptions::default())
}

/// [`evaluate_family_csr`] with explicit fast-path toggles.
///
/// Semantics mirror the adjacency-list path exactly, decision for decision:
///
/// * the spanning-forest fast path fires iff `Δ ≥ max_degree` or the Lemma 1.8
///   construction finds a spanning Δ-forest (the CSR variant builds the
///   identical forest), with one provable shortcut — if some *tree* component
///   has a vertex of degree `> Δ`, no spanning Δ-forest exists (a spanning
///   forest of a tree component is the component itself), so the search is
///   skipped without being run;
/// * otherwise the Δ-bounded forest polytope is maximized per component over
///   the shared partition, merging values in component order.
///
/// The returned evaluations therefore carry the same values and
/// [`EvaluationPath`] labels as [`evaluate_family_with`] on the same graph,
/// bit for bit. LP evaluations carry solver statistics but empty
/// `edge_weights` (the family never uses the maximizing point itself).
pub fn evaluate_family_csr_with(
    arena: &CsrGraph,
    grid: &[usize],
    threads: usize,
    options: FamilyOptions,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    evaluate_family_csr_profiled(arena, grid, threads, options, None)
}

/// [`evaluate_family_csr_with`] with an optional [`PhaseProfiler`] that
/// aggregates where the evaluation spends its time, under stable phase names:
/// `family/partition` (arena partitioning + tree precheck), `family/anchor`
/// (fast-path checks including the Lemma 1.8 search), `family/lp` (polytope
/// solving over the partition). Per-partition solve attribution counters
/// (component totals, closed forms, dedup hits, general fallbacks) are
/// recorded as profiler counts. Profiling never changes values.
pub fn evaluate_family_csr_profiled(
    arena: &CsrGraph,
    grid: &[usize],
    threads: usize,
    options: FamilyOptions,
    profiler: Option<&PhaseProfiler>,
) -> Result<Vec<ExtensionEvaluation>, CoreError> {
    let mut out = Vec::with_capacity(grid.len());
    if arena.num_edges() == 0 {
        for &delta in grid {
            assert!(delta >= 1, "delta must be at least 1");
            out.push(ExtensionEvaluation {
                value: 0.0,
                delta,
                path: EvaluationPath::SpanningForestFastPath,
                lp: None,
            });
        }
        return Ok(out);
    }
    let partition_timer = profiler.map(|p| p.phase("family/partition"));
    let fsf = arena.spanning_forest_size() as f64;
    let max_degree = arena.max_degree();
    let part = arena.partition_components();
    // Largest maximum degree over *tree* components: for Δ below it the
    // spanning-Δ-forest search is unsatisfiable and gets skipped.
    let mut tree_max_degree = 0usize;
    for c in 0..part.num_components() {
        let view = part.component(c);
        if view.num_edges() + 1 == view.num_vertices() {
            let local_max = (0..view.num_vertices())
                .map(|v| view.degree(v))
                .max()
                .unwrap_or(0);
            tree_max_degree = tree_max_degree.max(local_max);
        }
    }
    drop(partition_timer);
    let solve_options = options.solve_options();
    let mut running_max = 0.0f64;
    for &delta in grid {
        assert!(delta >= 1, "delta must be at least 1");
        let anchored = {
            let _t = profiler.map(|p| p.phase("family/anchor"));
            delta >= max_degree
                || (delta >= tree_max_degree
                    && bounded_degree_spanning_forest_csr(arena, delta).is_some())
        };
        let mut eval = if anchored {
            ExtensionEvaluation {
                value: fsf,
                delta,
                path: EvaluationPath::SpanningForestFastPath,
                lp: None,
            }
        } else {
            let _t = profiler.map(|p| p.phase("family/lp"));
            let solved = solve_partition(&part, delta as f64, threads, &solve_options)
                .map_err(CoreError::from)?;
            if let Some(p) = profiler {
                let stats = solved.stats;
                p.add_count("solve/components", stats.components as u64);
                p.add_count("solve/micro-closed-form", stats.micro_closed_form as u64);
                p.add_count("solve/micro-reduced", stats.micro_reduced as u64);
                p.add_count("solve/general-fallback", stats.general_fallback as u64);
                p.add_count("solve/dedup-classes", stats.dedup_classes as u64);
                p.add_count("solve/dedup-hits", stats.dedup_hits as u64);
            }
            ExtensionEvaluation {
                value: solved.solution.value,
                delta,
                path: EvaluationPath::LinearProgram,
                lp: Some(solved.solution),
            }
        };
        running_max = running_max.max(eval.value);
        eval.value = running_max;
        out.push(eval);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;
    use ccdp_graph::subgraph::remove_vertex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn empty_graph_evaluates_to_zero() {
        let g = Graph::new(6);
        assert!(approx(
            LipschitzExtension::new(3).evaluate(&g).unwrap(),
            0.0
        ));
    }

    #[test]
    fn anchor_property_on_path() {
        // A path has a spanning 2-forest, so f_2 = f_sf; and f_1 < f_sf.
        let g = generators::path(7);
        assert!(approx(
            LipschitzExtension::new(2).evaluate(&g).unwrap(),
            6.0
        ));
        let f1 = LipschitzExtension::new(1).evaluate(&g).unwrap();
        assert!(f1 < 6.0);
        // With Δ=1 the polytope is the fractional matching polytope of the path:
        // optimum 3 (alternating edges).
        assert!(approx(f1, 3.0));
    }

    #[test]
    fn remark_3_4_star_values() {
        // Remark 3.4: on K_{1,Δ} built from Δ isolated vertices plus a center,
        // f_Δ jumps from 0 to Δ, showing the Lipschitz constant is tight.
        for delta in 1..=4usize {
            let isolated = Graph::new(delta);
            let star = generators::star(delta);
            let ext = LipschitzExtension::new(delta);
            assert!(approx(ext.evaluate(&isolated).unwrap(), 0.0));
            assert!(approx(ext.evaluate(&star).unwrap(), delta as f64));
        }
    }

    #[test]
    fn underestimation_and_monotonicity_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..8 {
            let g = generators::erdos_renyi(10, 0.35, &mut rng);
            let fsf = g.spanning_forest_size() as f64;
            let mut prev = 0.0;
            for delta in 1..=5 {
                let v = LipschitzExtension::new(delta).evaluate(&g).unwrap();
                assert!(v <= fsf + 1e-6, "f_{delta} = {v} exceeds f_sf = {fsf}");
                assert!(v + 1e-6 >= prev, "f_Δ not monotone in Δ");
                prev = v;
            }
        }
    }

    #[test]
    fn fast_path_and_lp_agree() {
        // Where a spanning Δ-forest exists, the LP must give the same value as the
        // fast path (this cross-checks the constraint generation).
        let mut rng = StdRng::seed_from_u64(37);
        for _ in 0..5 {
            let g = generators::erdos_renyi(9, 0.3, &mut rng);
            for delta in 2..=4usize {
                let fast = LipschitzExtension::new(delta)
                    .evaluate_detailed(&g)
                    .unwrap();
                let slow = LipschitzExtension::new(delta)
                    .without_fast_path()
                    .evaluate_detailed(&g)
                    .unwrap();
                assert!(
                    approx(fast.value, slow.value),
                    "fast {} vs lp {} at delta {delta}",
                    fast.value,
                    slow.value
                );
            }
        }
    }

    #[test]
    fn lipschitz_property_under_vertex_removal() {
        // |f_Δ(G) − f_Δ(G \ v)| ≤ Δ for every vertex v (one step of node distance).
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..5 {
            let g = generators::erdos_renyi(9, 0.35, &mut rng);
            for delta in 1..=3usize {
                let ext = LipschitzExtension::new(delta);
                let base = ext.evaluate(&g).unwrap();
                for v in g.vertices() {
                    let (h, _) = remove_vertex(&g, v);
                    let val = ext.evaluate(&h).unwrap();
                    assert!(
                        (base - val).abs() <= delta as f64 + 1e-6,
                        "|f_Δ(G) - f_Δ(G-v)| = {} > Δ = {delta}",
                        (base - val).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn family_evaluation_is_monotone() {
        let g = generators::caveman(3, 4);
        let grid = [1usize, 2, 4, 8];
        let evals = evaluate_family(&g, &grid).unwrap();
        assert_eq!(evals.len(), 4);
        for w in evals.windows(2) {
            assert!(w[0].value <= w[1].value + 1e-9);
        }
        // The largest Δ exceeds the max degree, so the last value is exactly f_sf.
        assert!(approx(evals[3].value, g.spanning_forest_size() as f64));
    }

    #[test]
    fn threaded_family_matches_sequential_family_bit_for_bit() {
        // 700 disjoint 5-cycles cross the parallel work threshold
        // (n + m = 7000); Δ = 1 forces the LP path on every cycle.
        let mut edges = Vec::new();
        for c in 0..700usize {
            let base = 5 * c;
            for i in 0..5 {
                edges.push((base + i, base + (i + 1) % 5));
            }
        }
        let g = Graph::from_edges(3500, &edges);
        let grid = [1usize, 2, 4, 8];
        let seq = evaluate_family_with(&g, &grid, SolverBackend::default()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par =
                evaluate_family_threaded(&g, &grid, SolverBackend::default(), threads).unwrap();
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.value.to_bits(), p.value.to_bits(), "threads={threads}");
                assert_eq!(s.path, p.path);
                assert_eq!(s.delta, p.delta);
            }
        }
        // A single-point grid parallelizes across components instead; the
        // value must still be identical.
        let seq1 = evaluate_family_with(&g, &[1], SolverBackend::default()).unwrap();
        let par1 = evaluate_family_threaded(&g, &[1], SolverBackend::default(), 4).unwrap();
        assert_eq!(seq1[0].value.to_bits(), par1[0].value.to_bits());
    }

    #[test]
    fn csr_family_engine_matches_historical_loop_bit_for_bit() {
        // Large enough to cross the work threshold, so evaluate_family_with
        // routes through the CSR-partition engine; the reference is the
        // historical per-Δ loop over evaluate_detailed. Barely-supercritical
        // ER mixes trees, unicyclic components and a few multicyclic ones.
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::erdos_renyi(3000, 1.25 / 3000.0, &mut rng);
        let grid = [1usize, 2, 4, 8, 16];
        let mut want = Vec::new();
        let mut running_max = 0.0f64;
        for &delta in &grid {
            let mut eval = LipschitzExtension::new(delta)
                .evaluate_detailed(&g)
                .unwrap();
            running_max = running_max.max(eval.value);
            eval.value = running_max;
            want.push(eval);
        }
        let toggles = [
            FamilyOptions::default(),
            FamilyOptions {
                micro: true,
                dedup: false,
            },
            FamilyOptions {
                micro: false,
                dedup: true,
            },
            FamilyOptions {
                micro: false,
                dedup: false,
            },
        ];
        for options in toggles {
            for threads in [1usize, 4] {
                let got =
                    evaluate_family_tuned(&g, &grid, SolverBackend::default(), threads, options)
                        .unwrap();
                assert_eq!(want.len(), got.len());
                for (w, g_eval) in want.iter().zip(&got) {
                    assert_eq!(
                        w.value.to_bits(),
                        g_eval.value.to_bits(),
                        "Δ={} threads={threads} options={options:?}",
                        w.delta
                    );
                    assert_eq!(w.path, g_eval.path);
                    assert_eq!(w.delta, g_eval.delta);
                }
            }
        }
        // The CSR-arena entry point (no adjacency-list graph at all) agrees too.
        let arena = CsrGraph::from_graph(&g);
        let got = evaluate_family_csr(&arena, &grid, 2).unwrap();
        for (w, g_eval) in want.iter().zip(&got) {
            assert_eq!(w.value.to_bits(), g_eval.value.to_bits());
            assert_eq!(w.path, g_eval.path);
        }
    }

    #[test]
    fn evaluation_path_is_reported() {
        let star = generators::star(5);
        let fast = LipschitzExtension::new(5).evaluate_detailed(&star).unwrap();
        assert_eq!(fast.path, EvaluationPath::SpanningForestFastPath);
        let lp = LipschitzExtension::new(2).evaluate_detailed(&star).unwrap();
        assert_eq!(lp.path, EvaluationPath::LinearProgram);
        assert!(lp.lp.is_some());
    }

    #[test]
    #[should_panic]
    fn zero_delta_is_rejected() {
        LipschitzExtension::new(0);
    }

    #[test]
    fn backends_agree_through_the_extension() {
        // The solver backends are interchangeable behind the extension: same
        // values on the LP path (the fast path never consults the solver).
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..4 {
            let g = generators::erdos_renyi(10, 0.35, &mut rng);
            for delta in 1..=3usize {
                let comb = LipschitzExtension::new(delta)
                    .without_fast_path()
                    .evaluate(&g)
                    .unwrap();
                let simp = LipschitzExtension::new(delta)
                    .without_fast_path()
                    .with_backend(SolverBackend::Simplex)
                    .evaluate(&g)
                    .unwrap();
                assert!(approx(comb, simp), "Δ={delta}: {comb} vs {simp}");
            }
        }
    }
}
