//! Anchor sets of the Lipschitz extensions (Lemma 1.9 and Lemma A.3).
//!
//! The anchor set `S_Δ` of our extension `f_Δ` is the set of graphs where the
//! extension is exact: `f_Δ(G) = f_sf(G)`. The largest *monotone* anchor set any
//! Δ-Lipschitz extension can have is `S*_Δ = {G : DS_{f_sf}(G) ≤ Δ}` (Lemma A.3),
//! and Lemma 1.9 shows our anchor sets nearly match it: `S*_{Δ-1} ⊆ S_Δ`.
//!
//! These helpers are used by the anchor-set experiment (E5) and the integration
//! tests.

use crate::error::CoreError;
use crate::extension::LipschitzExtension;
use ccdp_graph::sensitivity::down_sensitivity_fsf;
use ccdp_graph::Graph;

/// Tolerance used when comparing the LP value against the integer `f_sf`.
const TOL: f64 = 1e-6;

/// Returns `true` if `g` belongs to the anchor set `S_Δ` of our extension,
/// i.e. `f_Δ(G) = f_sf(G)`.
pub fn in_anchor_set(g: &Graph, delta: usize) -> Result<bool, CoreError> {
    let value = LipschitzExtension::new(delta).evaluate(g)?;
    Ok((value - g.spanning_forest_size() as f64).abs() <= TOL)
}

/// Returns `true` if `g` belongs to the largest monotone anchor set `S*_Δ`,
/// i.e. `DS_{f_sf}(G) ≤ Δ`.
pub fn in_optimal_monotone_anchor_set(g: &Graph, delta: usize) -> bool {
    down_sensitivity_fsf(g).value() <= delta
}

/// The smallest Δ for which `g` is in the anchor set `S_Δ` of our extension.
///
/// This equals the smallest Δ such that `g` has a spanning Δ-forest (Lemma 3.3 /
/// Theorem 1.11), i.e. Δ*. The search walks Δ upward from 1; the LP is only
/// solved for values below the constructive upper bound.
pub fn smallest_anchor_delta(g: &Graph) -> Result<usize, CoreError> {
    if g.has_no_edges() {
        return Ok(1);
    }
    for delta in 1..=g.max_degree().max(1) {
        if in_anchor_set(g, delta)? {
            return Ok(delta);
        }
    }
    Ok(g.max_degree().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::forest::delta_star_exact;
    use ccdp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_anchor_threshold_is_its_degree() {
        let g = generators::star(4);
        assert!(!in_anchor_set(&g, 3).unwrap());
        assert!(in_anchor_set(&g, 4).unwrap());
        assert_eq!(smallest_anchor_delta(&g).unwrap(), 4);
    }

    #[test]
    fn path_is_anchored_at_two() {
        let g = generators::path(8);
        assert!(!in_anchor_set(&g, 1).unwrap());
        assert!(in_anchor_set(&g, 2).unwrap());
        assert_eq!(smallest_anchor_delta(&g).unwrap(), 2);
    }

    #[test]
    fn lemma_1_9_optimal_anchor_set_is_contained() {
        // S*_{Δ-1} ⊆ S_Δ: if DS_{f_sf}(G) ≤ Δ − 1 then f_Δ(G) = f_sf(G).
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..15 {
            let g = generators::erdos_renyi(8, 0.3, &mut rng);
            for delta in 1..=4usize {
                if in_optimal_monotone_anchor_set(&g, delta - 1) {
                    assert!(
                        in_anchor_set(&g, delta).unwrap(),
                        "Lemma 1.9 violated at Δ = {delta} on {:?}",
                        g.edge_vec()
                    );
                }
            }
        }
    }

    #[test]
    fn smallest_anchor_delta_equals_delta_star() {
        // Lemma 3.3 item 1 plus Theorem 1.11 give S_Δ = {G with a spanning Δ-forest},
        // so the smallest anchored Δ is exactly Δ*.
        let mut rng = StdRng::seed_from_u64(67);
        for _ in 0..10 {
            let g = generators::erdos_renyi(7, 0.35, &mut rng);
            if g.has_no_edges() {
                continue;
            }
            let exact = delta_star_exact(&g, 1 << 22).expect("small graph");
            assert_eq!(smallest_anchor_delta(&g).unwrap(), exact);
        }
    }

    #[test]
    fn empty_graph_is_anchored_everywhere() {
        let g = Graph::new(5);
        assert!(in_anchor_set(&g, 1).unwrap());
        assert_eq!(smallest_anchor_delta(&g).unwrap(), 1);
    }
}
