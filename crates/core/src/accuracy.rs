//! Error-measurement harness shared by the experiments.
//!
//! The paper's accuracy statements are high-probability bounds on the additive
//! error. The experiments estimate the error distribution empirically by running
//! an estimator many times on the same graph and summarizing the absolute errors.

/// Summary statistics of a set of absolute errors.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorStats {
    /// Number of trials.
    pub trials: usize,
    /// Mean absolute error.
    pub mean: f64,
    /// Median absolute error.
    pub median: f64,
    /// 90th percentile of the absolute error.
    pub p90: f64,
    /// Maximum absolute error observed.
    pub max: f64,
}

impl ErrorStats {
    /// Computes statistics from raw absolute errors.
    ///
    /// # Panics
    /// Panics if `errors` is empty.
    pub fn from_errors(mut errors: Vec<f64>) -> Self {
        assert!(!errors.is_empty(), "need at least one trial");
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let trials = errors.len();
        let mean = errors.iter().sum::<f64>() / trials as f64;
        let median = percentile(&errors, 0.5);
        let p90 = percentile(&errors, 0.9);
        let max = *errors.last().unwrap();
        ErrorStats {
            trials,
            mean,
            median,
            p90,
            max,
        }
    }

    /// Relative error with respect to a reference magnitude (e.g. the true count).
    pub fn relative_to(&self, reference: f64) -> f64 {
        if reference == 0.0 {
            f64::INFINITY
        } else {
            self.mean / reference.abs()
        }
    }
}

/// Linear-interpolation percentile of a sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Runs `trials` repetitions of an estimator against a known truth and summarizes
/// the absolute errors.
pub fn measure_errors<F>(truth: f64, trials: usize, mut run: F) -> ErrorStats
where
    F: FnMut() -> f64,
{
    let errors: Vec<f64> = (0..trials).map(|_| (run() - truth).abs()).collect();
    ErrorStats::from_errors(errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_errors() {
        let s = ErrorStats::from_errors(vec![2.0; 10]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p90, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.trials, 10);
    }

    #[test]
    fn stats_of_spread_errors() {
        let s = ErrorStats::from_errors(vec![1.0, 3.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(s.p90 >= 4.0 && s.p90 <= 5.0);
    }

    #[test]
    fn relative_error() {
        let s = ErrorStats::from_errors(vec![5.0, 5.0]);
        assert!((s.relative_to(100.0) - 0.05).abs() < 1e-12);
        assert!(s.relative_to(0.0).is_infinite());
    }

    #[test]
    fn measure_errors_uses_truth() {
        let mut values = vec![9.0, 11.0, 10.0].into_iter();
        let s = measure_errors(10.0, 3, move || values.next().unwrap());
        assert!((s.mean - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_errors_rejected() {
        ErrorStats::from_errors(vec![]);
    }

    #[test]
    fn single_trial() {
        let s = ErrorStats::from_errors(vec![7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p90, 7.0);
    }
}
