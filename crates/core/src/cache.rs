//! Graph-keyed cache for the deterministic Lipschitz-extension family.
//!
//! Evaluating `{f_Δ}` on the selection grid is by far the most expensive part
//! of [`estimate()`](crate::PrivateSpanningForestEstimator::estimate) — and it
//! is *deterministic*: the same graph, grid and solver backend always produce
//! the same family values (all randomness lives downstream, in GEM selection
//! and the Laplace release, and privacy is unaffected by caching a
//! data-dependent intermediate that never leaves the process). Multi-release
//! serving — several ε releases of one graph, error-measurement harnesses,
//! baseline comparisons — therefore pays the family cost once and replays it
//! from this cache afterwards (~20× cheaper repeated estimates).
//!
//! The cache is keyed by the exact edge list (plus grid and backend), bounded
//! in size with FIFO eviction, and safe to share across estimators and
//! threads. Hit/miss counters are exposed for tests and capacity planning.

use crate::error::CoreError;
use crate::extension::{evaluate_family_with, ExtensionEvaluation};
use ccdp_lp::SolverBackend;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default number of (graph, grid, backend) entries kept per cache.
pub const DEFAULT_FAMILY_CACHE_CAPACITY: usize = 64;

/// Exact identity of one family evaluation.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct CacheKey {
    num_vertices: usize,
    edges: Vec<(usize, usize)>,
    grid: Vec<usize>,
    backend: SolverBackend,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<CacheKey, Arc<Vec<ExtensionEvaluation>>>,
    order: VecDeque<CacheKey>,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate the family.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A bounded, thread-safe, graph-keyed cache of family evaluations.
pub struct ExtensionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ExtensionCache {
    /// A cache holding at most `capacity` family evaluations (≥ 1).
    pub fn new(capacity: usize) -> Self {
        ExtensionCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().map.len(),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Evaluates the family `{f_Δ}` of `g` on `grid` with `backend`, answering
    /// from the cache when this exact evaluation has been done before.
    pub fn evaluate_family(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        let key = CacheKey {
            num_vertices: g.num_vertices(),
            edges: g.edge_vec(),
            grid: grid.to_vec(),
            backend,
        };
        if let Some(hit) = self.lock().map.get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Evaluate outside the lock: family evaluation can take a while and
        // concurrent estimates on other graphs should not serialize on it.
        let evals = Arc::new(evaluate_family_with(g, grid, backend)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                } else {
                    break;
                }
            }
            inner.order.push_back(key.clone());
            inner.map.insert(key, Arc::clone(&evals));
        }
        Ok(evals)
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Default for ExtensionCache {
    fn default() -> Self {
        Self::new(DEFAULT_FAMILY_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for ExtensionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ExtensionCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::{generators, Graph};

    #[test]
    fn repeated_evaluations_hit_the_cache() {
        let cache = ExtensionCache::new(8);
        let g = generators::caveman(3, 4);
        let grid = [1usize, 2, 4, 8];
        let first = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let second = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_graphs_grids_and_backends_are_distinct_entries() {
        let cache = ExtensionCache::new(8);
        let a = generators::path(5);
        let b = generators::cycle(5);
        let grid = [1usize, 2, 4];
        cache
            .evaluate_family(&a, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&b, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&a, &grid[..2], SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&a, &grid, SolverBackend::Simplex)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 4, 4));
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let cache = ExtensionCache::new(2);
        let grid = [1usize, 2];
        let graphs: Vec<Graph> = (3..6).map(generators::path).collect();
        for g in &graphs {
            cache
                .evaluate_family(g, &grid, SolverBackend::Combinatorial)
                .unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        // The oldest entry (path(3)) was evicted: re-evaluating it misses.
        cache
            .evaluate_family(&graphs[0], &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn cached_values_match_direct_evaluation() {
        let cache = ExtensionCache::default();
        let g = generators::complete(5);
        let grid = [1usize, 2, 4];
        let cached = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let direct = evaluate_family_with(&g, &grid, SolverBackend::Combinatorial).unwrap();
        assert_eq!(cached.len(), direct.len());
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c.value - d.value).abs() < 1e-12);
            assert_eq!(c.delta, d.delta);
            assert_eq!(c.path, d.path);
        }
    }
}
