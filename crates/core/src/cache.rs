//! Graph-keyed cache for the deterministic Lipschitz-extension family.
//!
//! Evaluating `{f_Δ}` on the selection grid is by far the most expensive part
//! of [`estimate()`](crate::PrivateSpanningForestEstimator::estimate) — and it
//! is *deterministic*: the same graph, grid and solver backend always produce
//! the same family values (all randomness lives downstream, in GEM selection
//! and the Laplace release, and privacy is unaffected by caching a
//! data-dependent intermediate that never leaves the process). Multi-release
//! serving — several ε releases of one graph, error-measurement harnesses,
//! baseline comparisons — therefore pays the family cost once and replays it
//! from this cache afterwards (~20× cheaper repeated estimates).
//!
//! The cache is keyed by a 128-bit fingerprint of the graph's CSR arena
//! (plus vertex count, grid and backend), bounded in size with LRU eviction
//! (hits refresh an entry's recency), and safe to share across estimators and
//! threads. Fingerprinting replaces the previous exact-edge-list key: hashing
//! and key comparison are O(1) in the number of edges instead of O(m), which
//! matters once graphs reach 10^5–10^6 edges. Every entry keeps the
//! [`CsrGraph`] it was computed from as a *witness*; a fingerprint hit is
//! confirmed structurally against the witness before it is served, so a
//! fingerprint collision degrades to a safe miss, never to a wrong answer.
//!
//! Concurrent misses on the same key are **single-flighted**: the first
//! caller evaluates while the others wait on an in-flight table and receive
//! the same shared result, so a thundering herd of identical requests costs
//! one family evaluation instead of one per thread. Hit/miss/coalesce/
//! eviction counters are exposed for tests and capacity planning.
//!
//! The thread budget and family fast-path toggles of an evaluation are
//! deliberately **not** part of the key: family values are bit-for-bit
//! identical for every budget and toggle combination, so an entry computed
//! with 8 workers and the micro solver answers a sequential, fully general
//! request and vice versa.

use crate::error::CoreError;
use crate::extension::{evaluate_family_tuned_obs, ExtensionEvaluation, FamilyOptions};
use ccdp_exec::PhaseProfiler;
use ccdp_graph::{CsrGraph, GraphVersion};
use ccdp_lp::SolverBackend;
use ccdp_obs::{Counter, Gauge, MetricsRegistry, SpanKind, TraceCtx};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Default number of (graph, grid, backend) entries kept per cache.
pub const DEFAULT_FAMILY_CACHE_CAPACITY: usize = 64;

/// Catalog identity of a graph snapshot: which graph, at which version.
///
/// Untagged evaluations are keyed by the exact edge list alone. A serving or
/// streaming tier that names its graphs tags each evaluation with the
/// snapshot it came from, which buys two things the edge list cannot:
/// entries of superseded versions can be [invalidated in
/// bulk](ExtensionCache::invalidate_graph), and a release served for version
/// `v` can never replay a family cached under any other version — even if
/// two versions happen to share an edge list, their cache entries stay
/// distinct.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct GraphTag {
    /// Catalog id of the graph.
    pub id: String,
    /// Snapshot version the evaluation belongs to.
    pub version: GraphVersion,
}

impl GraphTag {
    /// A tag for `id` at `version`.
    pub fn new(id: impl Into<String>, version: GraphVersion) -> Self {
        GraphTag {
            id: id.into(),
            version,
        }
    }
}

impl std::fmt::Display for GraphTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.id, self.version)
    }
}

/// Identity of one family evaluation: graph fingerprint plus grid, backend
/// and optional catalog tag. The fingerprint is confirmed against the stored
/// witness arena before a hit is served (collisions become safe misses).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct CacheKey {
    num_vertices: usize,
    fingerprint: u128,
    grid: Vec<usize>,
    backend: SolverBackend,
    /// Catalog identity, when the caller serves versioned snapshots.
    tag: Option<GraphTag>,
}

/// One in-flight family evaluation that followers can wait on.
struct Flight {
    /// `None` while the leader is evaluating; the leader's result afterwards.
    outcome: Mutex<Option<Result<Arc<Vec<ExtensionEvaluation>>, CoreError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Publishes the leader's result and wakes every waiting follower.
    fn publish(&self, result: Result<Arc<Vec<ExtensionEvaluation>>, CoreError>) {
        let mut slot = self
            .outcome
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the leader publishes, then returns a clone of its result.
    fn wait(&self) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        let mut slot = self
            .outcome
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while slot.is_none() {
            slot = self
                .done
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        slot.as_ref().expect("published outcome").clone()
    }
}

/// One stored evaluation with its recency stamp and structural witness.
struct CacheEntry {
    evals: Arc<Vec<ExtensionEvaluation>>,
    /// The CSR arena the evaluation was computed from. A fingerprint hit is
    /// served only after the request graph matches this witness structurally,
    /// so a colliding key can never replay another graph's family.
    witness: Arc<CsrGraph>,
    /// Monotonic tick of the last hit (or the insert); the eviction victim
    /// is the minimum. Hits are O(1); the scan cost lives on the rare
    /// over-capacity insert instead.
    last_used: u64,
}

/// One registered in-flight evaluation with the leader's witness arena.
struct InFlightEntry {
    flight: Arc<Flight>,
    witness: Arc<CsrGraph>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    /// Monotonic recency clock, bumped per lookup/insert.
    tick: u64,
    /// Single-flight table of evaluations currently being computed.
    in_flight: HashMap<CacheKey, InFlightEntry>,
}

impl CacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate the family (one per in-flight leader).
    pub misses: u64,
    /// Lookups that joined another caller's in-flight evaluation instead of
    /// racing it (single-flight coalescing).
    pub coalesced: u64,
    /// Entries dropped to enforce the capacity bound.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation
    /// ([`invalidate_graph`](ExtensionCache::invalidate_graph) /
    /// [`invalidate_versions_below`](ExtensionCache::invalidate_versions_below)).
    pub invalidations: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups that avoided a fresh family evaluation (hits plus
    /// coalesced joins over all lookups); 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let avoided = self.hits + self.coalesced;
        let total = avoided + self.misses;
        if total == 0 {
            0.0
        } else {
            avoided as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe, graph-keyed cache of family evaluations with
/// LRU eviction and single-flight coalescing of concurrent misses.
pub struct ExtensionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    coalesced: Counter,
    evictions: Counter,
    invalidations: Counter,
    entries_gauge: Gauge,
}

impl ExtensionCache {
    /// A cache holding at most `capacity` family evaluations (≥ 1), with
    /// detached counters (no registry; see
    /// [`with_metrics`](Self::with_metrics)).
    pub fn new(capacity: usize) -> Self {
        ExtensionCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: Counter::detached(),
            misses: Counter::detached(),
            coalesced: Counter::detached(),
            evictions: Counter::detached(),
            invalidations: Counter::detached(),
            entries_gauge: Gauge::detached(),
        }
    }

    /// A cache whose counters are registered in `registry` as the
    /// `ccdp_core_cache_*` island, so a `/metrics` scrape sees exactly what
    /// [`stats`](Self::stats) reports.
    pub fn with_metrics(capacity: usize, registry: &MetricsRegistry) -> Self {
        let mut cache = Self::new(capacity);
        cache.hits = registry.counter("ccdp_core_cache_hits_total");
        cache.misses = registry.counter("ccdp_core_cache_misses_total");
        cache.coalesced = registry.counter("ccdp_core_cache_coalesced_total");
        cache.evictions = registry.counter("ccdp_core_cache_evictions_total");
        cache.invalidations = registry.counter("ccdp_core_cache_invalidations_total");
        cache.entries_gauge = registry.gauge("ccdp_core_cache_entries");
        cache
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            entries: self.lock().map.len(),
        }
    }

    /// Drops every stored entry (counters and in-flight evaluations are kept).
    pub fn clear(&self) {
        self.lock().map.clear();
        self.entries_gauge.set(0);
    }

    /// Evicts every entry tagged with catalog id `graph_id`, whatever its
    /// version; returns how many entries were dropped (also added to the
    /// `invalidations` counter). Untagged entries are never touched.
    ///
    /// An in-flight evaluation of the graph is not interrupted: its result is
    /// still delivered to the callers already waiting on it and may be
    /// inserted after this call returns. Callers that retire a graph should
    /// therefore invalidate *after* the last request for it has drained, or
    /// simply stop issuing its tag.
    pub fn invalidate_graph(&self, graph_id: &str) -> usize {
        self.invalidate_where(|tag| tag.id == graph_id)
    }

    /// Evicts every entry of `graph_id` with a version strictly below
    /// `version` (bulk invalidation of superseded snapshots); returns how
    /// many entries were dropped.
    pub fn invalidate_versions_below(&self, graph_id: &str, version: GraphVersion) -> usize {
        self.invalidate_where(|tag| tag.id == graph_id && tag.version < version)
    }

    fn invalidate_where(&self, victim: impl Fn(&GraphTag) -> bool) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        inner
            .map
            .retain(|key, _| !key.tag.as_ref().is_some_and(&victim));
        let dropped = before - inner.map.len();
        self.invalidations.add(dropped as u64);
        self.entries_gauge.set(inner.map.len() as i64);
        dropped
    }

    /// Evaluates the family `{f_Δ}` of `g` on `grid` with `backend`, answering
    /// from the cache when this exact evaluation has been done before, and
    /// joining an in-flight evaluation when another thread is already
    /// computing this exact key.
    pub fn evaluate_family(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        self.evaluate_family_tagged(g, grid, backend, None, 1)
    }

    /// [`evaluate_family`](Self::evaluate_family) with a thread budget for
    /// the evaluation on a miss. The budget never enters the cache key —
    /// family values are identical for every budget — so threaded and
    /// sequential callers share entries.
    pub fn evaluate_family_threaded(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
        threads: usize,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        self.evaluate_family_tagged(g, grid, backend, None, threads)
    }

    /// [`evaluate_family`](Self::evaluate_family) with an optional catalog
    /// [`GraphTag`] and a thread budget. Tagged entries are keyed by
    /// `(id, version)` *in addition to* the graph fingerprint, so evaluations
    /// of different snapshot versions never answer for each other and can be
    /// invalidated per graph or per version range.
    pub fn evaluate_family_tagged(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
        tag: Option<&GraphTag>,
        threads: usize,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        self.evaluate_family_tuned(g, grid, backend, tag, threads, FamilyOptions::default())
    }

    /// [`evaluate_family_tagged`](Self::evaluate_family_tagged) with explicit
    /// family fast-path toggles for the evaluation on a miss. Like the thread
    /// budget, the toggles never enter the cache key: every combination
    /// produces bit-identical family values, so toggled and default callers
    /// share entries.
    pub fn evaluate_family_tuned(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
        tag: Option<&GraphTag>,
        threads: usize,
        options: FamilyOptions,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        self.evaluate_family_observed(g, grid, backend, tag, threads, options, None, None)
    }

    /// [`evaluate_family_tuned`](Self::evaluate_family_tuned) with optional
    /// observability handles: the profiler records family phase timings on a
    /// miss (leading or uncached evaluation), and the trace context receives
    /// a `cache/hit`, `cache/miss` (timed over the evaluation) or
    /// `cache/coalesced` (timed over the wait) span event for the lookup.
    /// Observation only — values, keys and counters are unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_family_observed(
        &self,
        g: &ccdp_graph::Graph,
        grid: &[usize],
        backend: SolverBackend,
        tag: Option<&GraphTag>,
        threads: usize,
        options: FamilyOptions,
        profiler: Option<&PhaseProfiler>,
        trace: Option<&TraceCtx>,
    ) -> Result<Arc<Vec<ExtensionEvaluation>>, CoreError> {
        let csr = Arc::new(CsrGraph::from_graph(g));
        let key = CacheKey {
            num_vertices: g.num_vertices(),
            fingerprint: csr.fingerprint(),
            grid: grid.to_vec(),
            backend,
            tag: tag.cloned(),
        };

        let started = trace.map(|_| Instant::now());
        let action = {
            let mut inner = self.lock();
            let tick = inner.next_tick();
            if let Some(entry) = inner.map.get_mut(&key) {
                // Confirm the fingerprint hit structurally before serving it:
                // a collision must degrade to a miss, never replay another
                // graph's family.
                if entry.witness.matches_graph(g) {
                    entry.last_used = tick;
                    self.hits.inc();
                    if let Some(ctx) = trace {
                        ctx.event(SpanKind::CacheHit);
                    }
                    return Ok(Arc::clone(&entry.evals));
                }
            }
            match inner.in_flight.get(&key) {
                Some(in_flight) if in_flight.witness.matches_graph(g) => {
                    // Someone else is already evaluating this exact graph:
                    // join their flight instead of racing a duplicate
                    // evaluation.
                    self.coalesced.inc();
                    LookupAction::Join(Arc::clone(&in_flight.flight))
                }
                Some(_) => {
                    // Fingerprint collision with a different in-flight graph:
                    // evaluate on the side without touching the cache.
                    LookupAction::EvaluateUncached
                }
                None => {
                    inner.in_flight.insert(
                        key.clone(),
                        InFlightEntry {
                            flight: Arc::new(Flight::new()),
                            witness: Arc::clone(&csr),
                        },
                    );
                    LookupAction::Lead
                }
            }
        };
        match action {
            LookupAction::Join(flight) => {
                let result = flight.wait();
                if let Some(ctx) = trace {
                    ctx.event_timed(SpanKind::CacheCoalesced, started.expect("timed").elapsed());
                }
                result
            }
            LookupAction::EvaluateUncached => {
                let result =
                    evaluate_family_tuned_obs(g, grid, backend, threads, options, profiler)
                        .map(Arc::new);
                self.misses.inc();
                if let Some(ctx) = trace {
                    ctx.event_timed(SpanKind::CacheMiss, started.expect("timed").elapsed());
                }
                result
            }
            LookupAction::Lead => {
                // We are the flight leader: evaluate outside the lock (family
                // evaluation can take a while and lookups of other graphs
                // must not serialize on it), then store, publish and wake the
                // followers. The guard publishes an error if evaluation
                // panics, so followers are never left waiting on a flight
                // whose leader died.
                let guard = FlightGuard {
                    cache: self,
                    key,
                    witness: csr,
                    armed: true,
                };
                let result =
                    evaluate_family_tuned_obs(g, grid, backend, threads, options, profiler)
                        .map(Arc::new);
                guard.finish(result.clone());
                self.misses.inc();
                if let Some(ctx) = trace {
                    ctx.event_timed(SpanKind::CacheMiss, started.expect("timed").elapsed());
                }
                result
            }
        }
    }

    /// Removes the flight for `key` (returning it so the caller can publish),
    /// and on success stores the result with LRU eviction.
    fn complete_flight(
        &self,
        key: &CacheKey,
        witness: &Arc<CsrGraph>,
        result: &Result<Arc<Vec<ExtensionEvaluation>>, CoreError>,
    ) -> Option<Arc<Flight>> {
        let mut inner = self.lock();
        let flight = inner.in_flight.remove(key).map(|e| e.flight);
        if let Ok(evals) = result {
            if !inner.map.contains_key(key) {
                while inner.map.len() >= self.capacity {
                    // Evict the least recently used entry. The scan is
                    // O(entries) but runs only on over-capacity inserts —
                    // the hit path stays O(1).
                    let victim = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone());
                    match victim {
                        Some(v) => {
                            inner.map.remove(&v);
                            self.evictions.inc();
                        }
                        None => break,
                    }
                }
                let tick = inner.next_tick();
                inner.map.insert(
                    key.clone(),
                    CacheEntry {
                        evals: Arc::clone(evals),
                        witness: Arc::clone(witness),
                        last_used: tick,
                    },
                );
            }
            self.entries_gauge.set(inner.map.len() as i64);
        }
        flight
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// What a cache lookup decided to do after consulting the stored entries and
/// the in-flight table.
enum LookupAction {
    /// Wait on another caller's in-flight evaluation of the same graph.
    Join(Arc<Flight>),
    /// Lead a registered flight: evaluate, store, publish.
    Lead,
    /// Fingerprint collision with a different in-flight graph: evaluate on
    /// the side without registering or storing anything.
    EvaluateUncached,
}

/// Cleans up a leader's flight even on unwind: followers receive an error
/// instead of blocking forever if the evaluation panicked.
struct FlightGuard<'a> {
    cache: &'a ExtensionCache,
    key: CacheKey,
    witness: Arc<CsrGraph>,
    armed: bool,
}

impl FlightGuard<'_> {
    fn finish(mut self, result: Result<Arc<Vec<ExtensionEvaluation>>, CoreError>) {
        self.armed = false;
        if let Some(flight) = self
            .cache
            .complete_flight(&self.key, &self.witness, &result)
        {
            flight.publish(result);
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let result = Err(CoreError::InvalidParameter(
            "family evaluation panicked in another thread".to_string(),
        ));
        if let Some(flight) = self
            .cache
            .complete_flight(&self.key, &self.witness, &result)
        {
            flight.publish(result);
        }
    }
}

impl Default for ExtensionCache {
    fn default() -> Self {
        Self::new(DEFAULT_FAMILY_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for ExtensionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ExtensionCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("coalesced", &stats.coalesced)
            .field("evictions", &stats.evictions)
            .field("invalidations", &stats.invalidations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::{generators, Graph};

    #[test]
    fn repeated_evaluations_hit_the_cache() {
        let cache = ExtensionCache::new(8);
        let g = generators::caveman(3, 4);
        let grid = [1usize, 2, 4, 8];
        let first = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let second = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.coalesced, stats.evictions), (0, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_graphs_grids_and_backends_are_distinct_entries() {
        let cache = ExtensionCache::new(8);
        let a = generators::path(5);
        let b = generators::cycle(5);
        let grid = [1usize, 2, 4];
        cache
            .evaluate_family(&a, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&b, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&a, &grid[..2], SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&a, &grid, SolverBackend::Simplex)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 4, 4));
    }

    #[test]
    fn capacity_is_enforced_lru() {
        let cache = ExtensionCache::new(2);
        let grid = [1usize, 2];
        let graphs: Vec<Graph> = (3..6).map(generators::path).collect();
        for g in &graphs {
            cache
                .evaluate_family(g, &grid, SolverBackend::Combinatorial)
                .unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        // The least recently used entry (path(3)) was evicted: re-evaluating
        // it misses.
        cache
            .evaluate_family(&graphs[0], &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn hits_refresh_recency_so_eviction_is_lru_not_fifo() {
        let cache = ExtensionCache::new(2);
        let grid = [1usize, 2];
        let a = generators::path(3);
        let b = generators::path(4);
        let c = generators::path(5);
        cache
            .evaluate_family(&a, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&b, &grid, SolverBackend::Combinatorial)
            .unwrap();
        // Touch `a`: under FIFO it would still be evicted next; under LRU the
        // victim becomes `b`.
        cache
            .evaluate_family(&a, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&c, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let before = cache.stats();
        assert_eq!((before.evictions, before.entries), (1, 2));
        // `a` must still be resident (hit), `b` must have been evicted (miss).
        cache
            .evaluate_family(&a, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1);
        cache
            .evaluate_family(&b, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.stats().misses, before.misses + 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = ExtensionCache::new(8);
        let grid = [1usize, 2];
        let g = generators::path(4);
        cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A cleared cache re-evaluates.
        cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_values_match_direct_evaluation() {
        let cache = ExtensionCache::default();
        let g = generators::complete(5);
        let grid = [1usize, 2, 4];
        let cached = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let direct =
            crate::extension::evaluate_family_with(&g, &grid, SolverBackend::Combinatorial)
                .unwrap();
        assert_eq!(cached.len(), direct.len());
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c.value - d.value).abs() < 1e-12);
            assert_eq!(c.delta, d.delta);
            assert_eq!(c.path, d.path);
        }
    }

    #[test]
    fn thread_budget_is_not_part_of_the_key() {
        // A sequential evaluation answers a threaded request and vice versa:
        // values are identical for every budget, so the entries are shared.
        let cache = ExtensionCache::new(8);
        let g = generators::caveman(3, 4);
        let grid = [1usize, 2, 4, 8];
        let seq = cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let par = cache
            .evaluate_family_threaded(&g, &grid, SolverBackend::Combinatorial, 8)
            .unwrap();
        assert!(Arc::ptr_eq(&seq, &par));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn tags_separate_versions_of_one_graph() {
        let cache = ExtensionCache::new(8);
        let g = generators::path(5);
        let grid = [1usize, 2, 4];
        let v0 = GraphTag::new("fleet/g0", GraphVersion::INITIAL);
        let v1 = GraphTag::new("fleet/g0", GraphVersion::new(1));
        // Same edge list, different versions: distinct entries, no replay.
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&v0), 1)
            .unwrap();
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&v1), 1)
            .unwrap();
        // And distinct from the untagged entry of the same edge list.
        cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 3));
        // Re-asking for a version is a hit.
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&v0), 1)
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_graph_bulk_evicts_all_versions() {
        let cache = ExtensionCache::new(16);
        let g = generators::path(4);
        let grid = [1usize, 2];
        for v in 0..3 {
            let tag = GraphTag::new("a", GraphVersion::new(v));
            cache
                .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&tag), 1)
                .unwrap();
        }
        let other = GraphTag::new("b", GraphVersion::INITIAL);
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&other), 1)
            .unwrap();
        cache
            .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
            .unwrap();
        assert_eq!(cache.invalidate_graph("a"), 3);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 3);
        // `b` and the untagged entry survive; capacity evictions were not
        // involved.
        assert_eq!((stats.entries, stats.evictions), (2, 0));
        // The invalidated versions re-evaluate from scratch.
        let tag = GraphTag::new("a", GraphVersion::new(2));
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&tag), 1)
            .unwrap();
        assert_eq!(cache.stats().misses, 6);
    }

    #[test]
    fn invalidate_versions_below_keeps_the_frontier() {
        let cache = ExtensionCache::new(16);
        let g = generators::star(4);
        let grid = [1usize, 2];
        for v in 0..4 {
            let tag = GraphTag::new("g", GraphVersion::new(v));
            cache
                .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&tag), 1)
                .unwrap();
        }
        assert_eq!(
            cache.invalidate_versions_below("g", GraphVersion::new(3)),
            3
        );
        assert_eq!(cache.stats().entries, 1);
        // The frontier version is still a hit.
        let tag = GraphTag::new("g", GraphVersion::new(3));
        cache
            .evaluate_family_tagged(&g, &grid, SolverBackend::Combinatorial, Some(&tag), 1)
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn racing_threads_coalesce_to_one_evaluation() {
        let cache = Arc::new(ExtensionCache::new(8));
        let g = generators::caveman(4, 5);
        let grid = [1usize, 2, 4, 8, 16];
        let threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let g = g.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
                        .unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert!((r[0].value - results[0][0].value).abs() < 1e-12);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one leader must have evaluated");
        assert_eq!(
            stats.hits + stats.coalesced + stats.misses,
            threads as u64,
            "every lookup is a hit, a coalesced join or the one miss: {stats:?}"
        );
    }
}
