//! Error types: the algorithm-level [`CoreError`] and the unified public
//! [`CcdpError`] returned by every [`Estimator`](crate::estimator::Estimator).

use crate::config::ConfigError;
use ccdp_dp::composition::BudgetExceeded;
use ccdp_lp::{LpError, PolytopeError};

/// Errors surfaced by the core algorithms (extension evaluation and the
/// constraint-generation loop).
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The underlying LP solver failed (unbounded / iteration limit / bad input).
    Lp(LpError),
    /// The cutting-plane loop did not converge within its round limit.
    SeparationDidNotConverge {
        /// Number of rounds the loop ran before giving up.
        rounds: usize,
    },
    /// An invalid parameter was supplied.
    InvalidParameter(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Lp(e) => write!(f, "LP solver error: {e}"),
            CoreError::SeparationDidNotConverge { rounds } => {
                write!(
                    f,
                    "constraint generation did not converge within {rounds} rounds"
                )
            }
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

impl From<PolytopeError> for CoreError {
    fn from(e: PolytopeError) -> Self {
        match e {
            PolytopeError::InvalidDelta { delta } => {
                CoreError::InvalidParameter(format!("delta must be positive, got {delta}"))
            }
            PolytopeError::Lp(lp) => CoreError::Lp(lp),
            PolytopeError::SeparationDidNotConverge { rounds } => {
                CoreError::SeparationDidNotConverge { rounds }
            }
        }
    }
}

/// The one error type of the public estimator API: every failure mode of the
/// layer crates converges here via `From` conversions, so callers (and
/// `Box<dyn Estimator>` serving loops) match on a single enum.
#[derive(Clone, Debug, PartialEq)]
pub enum CcdpError {
    /// An estimator was built or run with an invalid configuration.
    Config(ConfigError),
    /// A mechanism requested more privacy budget than remained.
    Budget(BudgetExceeded),
    /// The underlying algorithm failed (LP solver, constraint generation, …).
    Algorithm(CoreError),
}

impl std::fmt::Display for CcdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcdpError::Config(e) => write!(f, "configuration error: {e}"),
            CcdpError::Budget(e) => write!(f, "privacy budget error: {e}"),
            CcdpError::Algorithm(e) => write!(f, "algorithm error: {e}"),
        }
    }
}

impl std::error::Error for CcdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcdpError::Config(e) => Some(e),
            CcdpError::Budget(e) => Some(e),
            CcdpError::Algorithm(e) => Some(e),
        }
    }
}

impl From<ConfigError> for CcdpError {
    fn from(e: ConfigError) -> Self {
        CcdpError::Config(e)
    }
}

impl From<BudgetExceeded> for CcdpError {
    fn from(e: BudgetExceeded) -> Self {
        CcdpError::Budget(e)
    }
}

impl From<CoreError> for CcdpError {
    fn from(e: CoreError) -> Self {
        CcdpError::Algorithm(e)
    }
}

impl From<LpError> for CcdpError {
    fn from(e: LpError) -> Self {
        CcdpError::Algorithm(CoreError::Lp(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::SeparationDidNotConverge { rounds: 7 };
        assert!(e.to_string().contains('7'));
        let e = CoreError::InvalidParameter("epsilon must be positive".into());
        assert!(e.to_string().contains("epsilon"));
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.to_string().contains("unbounded"));
    }

    #[test]
    fn every_layer_error_converts_into_ccdp_error() {
        let from_config: CcdpError = ConfigError::InvalidEpsilon { value: -1.0 }.into();
        assert!(matches!(from_config, CcdpError::Config(_)));
        assert!(from_config.to_string().contains("epsilon"));

        let from_budget: CcdpError = BudgetExceeded {
            requested: 2.0,
            remaining: 1.0,
        }
        .into();
        assert!(matches!(from_budget, CcdpError::Budget(_)));

        let from_core: CcdpError = CoreError::SeparationDidNotConverge { rounds: 3 }.into();
        assert!(matches!(from_core, CcdpError::Algorithm(_)));

        let from_lp: CcdpError = LpError::Unbounded.into();
        assert!(matches!(from_lp, CcdpError::Algorithm(CoreError::Lp(_))));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e: CcdpError = ConfigError::InvalidBeta { value: 2.0 }.into();
        assert!(e.source().is_some());
    }
}
