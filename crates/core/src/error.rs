//! Error type of the core library.

use ccdp_lp::LpError;

/// Errors surfaced by the core algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The underlying LP solver failed (unbounded / iteration limit / bad input).
    Lp(LpError),
    /// The cutting-plane loop did not converge within its round limit.
    SeparationDidNotConverge { rounds: usize },
    /// An invalid parameter was supplied.
    InvalidParameter(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Lp(e) => write!(f, "LP solver error: {e}"),
            CoreError::SeparationDidNotConverge { rounds } => {
                write!(f, "constraint generation did not converge within {rounds} rounds")
            }
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::SeparationDidNotConverge { rounds: 7 };
        assert!(e.to_string().contains('7'));
        let e = CoreError::InvalidParameter("epsilon must be positive".into());
        assert!(e.to_string().contains("epsilon"));
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.to_string().contains("unbounded"));
    }
}
