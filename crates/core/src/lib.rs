//! Node-differentially private estimation of the number of connected components.
//!
//! This crate reproduces the algorithm of Kalemaj, Raskhodnikova, Smith and
//! Tsourakakis, *"Node-Differentially Private Estimation of the Number of
//! Connected Components"* (PODS 2023): the first node-private algorithm for
//! releasing `f_cc(G)`, built from an efficiently computable family of Lipschitz
//! extensions of the spanning-forest size.
//!
//! # Quick start
//!
//! ```
//! use ccdp_core::{PrivateCcEstimator, LipschitzExtension};
//! use ccdp_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A forest of 30 small stars plus 10 isolated sensors: 40 components.
//! let g = generators::planted_star_forest(30, 3, 10);
//!
//! // Release the number of connected components with ε = 1 node-DP.
//! let estimator = PrivateCcEstimator::new(1.0);
//! let released = estimator.estimate(&g, &mut rng).unwrap();
//! let truth = g.num_connected_components() as f64;
//! assert!((released.value - truth).abs() < 60.0);
//!
//! // The Lipschitz extension underlying the algorithm can be evaluated directly.
//! let f2 = LipschitzExtension::new(2).evaluate(&g).unwrap();
//! assert!(f2 <= g.spanning_forest_size() as f64);
//! ```
//!
//! # Module map
//!
//! * [`polytope`] — the Δ-bounded forest polytope LP with its min-cut separation
//!   oracle (Definition 3.1, Padberg–Wolsey separation).
//! * [`extension`] — the Lipschitz extension family `{f_Δ}` (Lemma 3.3) with the
//!   spanning-forest fast path.
//! * [`algorithm`] — Algorithm 1 (private spanning-forest size) and the derived
//!   connected-components estimator.
//! * [`downsens_extension`] — the exponential-time Lemma A.1 extension used as an
//!   optimality comparator.
//! * [`anchor`] — anchor-set membership checks (Lemma 1.9 / A.3).
//! * [`baselines`] — non-private, edge-DP, naive node-DP and fixed-Δ baselines.
//! * [`accuracy`] — the error-measurement harness shared by the experiments.

pub mod accuracy;
pub mod algorithm;
pub mod anchor;
pub mod baselines;
pub mod downsens_extension;
pub mod error;
pub mod extension;
pub mod polytope;

pub use accuracy::{measure_errors, ErrorStats};
pub use algorithm::{
    PrivateCcEstimate, PrivateCcEstimator, PrivateEstimate, PrivateSpanningForestEstimator,
};
pub use anchor::{in_anchor_set, in_optimal_monotone_anchor_set, smallest_anchor_delta};
pub use baselines::{
    CcEstimator, EdgeDpBaseline, FixedDeltaBaseline, NaiveNodeDpBaseline, NonPrivateBaseline,
};
pub use downsens_extension::{downsens_extension, downsens_extension_fsf};
pub use error::CoreError;
pub use extension::{evaluate_family, EvaluationPath, ExtensionEvaluation, LipschitzExtension};
pub use polytope::{forest_polytope_max, PolytopeSolution};
