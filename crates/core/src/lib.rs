//! Node-differentially private estimation of the number of connected components.
//!
//! This crate reproduces the algorithm of Kalemaj, Raskhodnikova, Smith and
//! Tsourakakis, *"Node-Differentially Private Estimation of the Number of
//! Connected Components"* (PODS 2023): the first node-private algorithm for
//! releasing `f_cc(G)`, built from an efficiently computable family of Lipschitz
//! extensions of the spanning-forest size.
//!
//! The public surface is one coherent API: every estimator — private algorithms
//! and baselines alike — implements the object-safe [`Estimator`] trait, is
//! configured through the validating [`EstimatorConfig`] builder, and produces
//! a typed [`Release`] whose non-private diagnostics are gated behind
//! [`DiagnosticsAccess`]. (Applications usually depend on the `ccdp` facade
//! crate, which re-exports all of this plus the graph layer as a prelude.)
//!
//! # Quick start
//!
//! ```
//! use ccdp_core::{
//!     DiagnosticsAccess, Estimator, EstimatorConfig, LipschitzExtension, PrivateCcEstimator,
//! };
//! use ccdp_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A forest of 30 small stars plus 10 isolated sensors: 40 components.
//! let g = generators::planted_star_forest(30, 3, 10);
//!
//! // Release the number of connected components with ε = 1 node-DP.
//! let estimator = PrivateCcEstimator::from_config(EstimatorConfig::new(1.0))?;
//! let release = estimator.estimate(&g, &mut rng)?;
//! let truth = g.num_connected_components() as f64;
//! assert!((release.value() - truth).abs() < 60.0);
//!
//! // Non-private diagnostics require an explicit acknowledgement token.
//! let diagnostics = release.diagnostics(DiagnosticsAccess::acknowledge_non_private());
//! assert!(diagnostics.selected_delta.unwrap() >= 1);
//!
//! // The Lipschitz extension underlying the algorithm can be evaluated directly.
//! let f2 = LipschitzExtension::new(2).evaluate(&g)?;
//! assert!(f2 <= g.spanning_forest_size() as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Module map
//!
//! * [`estimator`] — the unified, object-safe [`Estimator`] trait.
//! * [`release`] — the type-safe [`Release`] output: private value by default,
//!   [`Diagnostics`] gated behind [`DiagnosticsAccess`].
//! * [`config`] — the shared [`EstimatorConfig`] builder with typed
//!   [`ConfigError`] validation.
//! * [`error`] — [`CoreError`] (algorithm internals) and the unified
//!   [`CcdpError`] returned by every estimator.
//! * [`polytope`] — the Δ-bounded forest polytope (Definition 3.1) behind the
//!   pluggable [`PolytopeSolver`] trait: a combinatorial backend (default) and
//!   a warm-started cutting-plane simplex backend, selected by
//!   [`SolverBackend`].
//! * [`extension`] — the Lipschitz extension family `{f_Δ}` (Lemma 3.3) with the
//!   spanning-forest fast path.
//! * [`cache`] — the graph-keyed [`ExtensionCache`] that makes repeated
//!   `estimate()` calls on the same graph ~20× cheaper.
//! * [`algorithm`] — Algorithm 1 (private spanning-forest size) and the derived
//!   connected-components estimator, threading one
//!   [`PrivacyBudget`](ccdp_dp::PrivacyBudget) accountant through both stages.
//! * [`downsens_extension`] — the exponential-time Lemma A.1 extension used as an
//!   optimality comparator.
//! * [`anchor`] — anchor-set membership checks (Lemma 1.9 / A.3).
//! * [`baselines`] — non-private, edge-DP, naive node-DP and fixed-Δ baselines,
//!   all behind the same [`Estimator`] trait.
//! * [`accuracy`] — the error-measurement harness shared by the experiments.

pub mod accuracy;
pub mod algorithm;
pub mod anchor;
pub mod baselines;
pub mod cache;
pub mod config;
pub mod downsens_extension;
pub mod error;
pub mod estimator;
pub mod extension;
pub mod polytope;
pub mod release;

pub use accuracy::{measure_errors, ErrorStats};
pub use algorithm::{PrivateCcEstimator, PrivateSpanningForestEstimator};
pub use anchor::{in_anchor_set, in_optimal_monotone_anchor_set, smallest_anchor_delta};
pub use baselines::{EdgeDpBaseline, FixedDeltaBaseline, NaiveNodeDpBaseline, NonPrivateBaseline};
pub use cache::{CacheStats, ExtensionCache, GraphTag};
pub use config::{ConfigError, EstimatorConfig, ObsHandles};
pub use downsens_extension::{
    downsens_extension, downsens_extension_fdelta, downsens_extension_fsf,
};
pub use error::{CcdpError, CoreError};
pub use estimator::Estimator;
pub use extension::{
    evaluate_family, evaluate_family_csr, evaluate_family_csr_profiled, evaluate_family_csr_with,
    evaluate_family_threaded, evaluate_family_tuned, evaluate_family_tuned_obs,
    evaluate_family_with, EvaluationPath, ExtensionEvaluation, FamilyOptions, LipschitzExtension,
};
pub use polytope::{
    forest_polytope_max, forest_polytope_max_threaded, forest_polytope_max_with, PolytopeSolution,
    PolytopeSolver, SolverBackend,
};
pub use release::{Diagnostics, DiagnosticsAccess, Privacy, Release};
