//! Type-safe released outputs.
//!
//! The old `PrivateEstimate` struct mixed the differentially private estimate
//! with non-private intermediate values (`extension_value`, `family_values`,
//! …) behind nothing but a doc-comment warning. [`Release`] separates the two
//! at the type level: the default surface exposes only the private
//! [`Release::value`] (plus data-independent metadata), while the non-private
//! [`Diagnostics`] are reachable only through an explicit
//! [`DiagnosticsAccess`] capability token — so leaking them takes a visible,
//! greppable acknowledgement instead of an accidental field access.

use std::fmt;

/// The privacy guarantee attached to a [`Release`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Privacy {
    /// ε node-differential privacy (the paper's setting).
    NodeDp {
        /// The privacy parameter ε.
        epsilon: f64,
    },
    /// ε edge-differential privacy (a weaker neighbor relation).
    EdgeDp {
        /// The privacy parameter ε.
        epsilon: f64,
    },
    /// No privacy guarantee (baseline accuracy ceiling).
    NonPrivate,
}

impl Privacy {
    /// The ε of the guarantee, or `None` for non-private output.
    pub fn epsilon(&self) -> Option<f64> {
        match *self {
            Privacy::NodeDp { epsilon } | Privacy::EdgeDp { epsilon } => Some(epsilon),
            Privacy::NonPrivate => None,
        }
    }
}

impl fmt::Display for Privacy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privacy::NodeDp { epsilon } => write!(f, "ε={epsilon} node-DP"),
            Privacy::EdgeDp { epsilon } => write!(f, "ε={epsilon} edge-DP"),
            Privacy::NonPrivate => write!(f, "non-private"),
        }
    }
}

/// Capability token gating access to non-private [`Diagnostics`].
///
/// Constructing it spells out the contract at the call site:
///
/// ```
/// use ccdp_core::DiagnosticsAccess;
/// let token = DiagnosticsAccess::acknowledge_non_private();
/// # let _ = token;
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DiagnosticsAccess {
    _private: (),
}

impl DiagnosticsAccess {
    /// Acknowledges that diagnostics reference non-private intermediate values
    /// and must not be published if the privacy guarantee is to be preserved.
    pub fn acknowledge_non_private() -> Self {
        DiagnosticsAccess { _private: () }
    }
}

/// Non-private diagnostics recorded alongside a release, for experiments,
/// debugging and tests. **Never publish these**: several fields are exact
/// functions of the sensitive input graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnostics {
    /// The Lipschitz parameter Δ̂ selected by GEM (adaptive estimators only).
    pub selected_delta: Option<usize>,
    /// The exact value of the selected extension `f_Δ̂(G)` (non-private!).
    pub extension_value: Option<f64>,
    /// Scale of the Laplace noise added in the final release step.
    pub noise_scale: Option<f64>,
    /// The GEM failure probability β that was used.
    pub beta: Option<f64>,
    /// Whether any evaluated extension needed the LP path.
    pub used_lp: bool,
    /// The evaluated grid of `(Δ, f_Δ(G))` pairs (non-private!).
    pub family_values: Vec<(usize, f64)>,
    /// The private Laplace release of `|V(G)|` used by Equation (1), if any.
    pub node_count_estimate: Option<f64>,
    /// The private spanning-forest estimate combined by Equation (1), if any.
    pub spanning_forest_estimate: Option<f64>,
    /// The per-stage privacy-budget ledger `(stage, ε)`.
    pub budget_ledger: Vec<(String, f64)>,
}

/// A released estimate: the differentially private value plus data-independent
/// metadata, with non-private diagnostics gated behind [`DiagnosticsAccess`].
///
/// `Debug` and `Display` deliberately elide the diagnostics, so logging a
/// release never leaks them.
#[derive(Clone)]
pub struct Release {
    value: f64,
    privacy: Privacy,
    estimator: &'static str,
    diagnostics: Diagnostics,
}

impl Release {
    /// Assembles a release. Implementors of
    /// [`Estimator`](crate::estimator::Estimator) outside this crate can use
    /// this to produce compatible output.
    pub fn new(
        value: f64,
        privacy: Privacy,
        estimator: &'static str,
        diagnostics: Diagnostics,
    ) -> Self {
        Release {
            value,
            privacy,
            estimator,
            diagnostics,
        }
    }

    /// The released estimate. This is the only data-dependent field that is
    /// safe to publish (under the guarantee reported by [`Release::privacy`]).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The privacy guarantee under which [`Release::value`] was produced.
    pub fn privacy(&self) -> Privacy {
        self.privacy
    }

    /// Name of the estimator that produced this release.
    pub fn estimator(&self) -> &'static str {
        self.estimator
    }

    /// Borrows the non-private diagnostics. Requires an explicit
    /// [`DiagnosticsAccess`] acknowledgement; see the module docs.
    pub fn diagnostics(&self, _access: DiagnosticsAccess) -> &Diagnostics {
        &self.diagnostics
    }

    /// Consumes the release and returns the non-private diagnostics.
    pub fn into_diagnostics(self, _access: DiagnosticsAccess) -> Diagnostics {
        self.diagnostics
    }
}

impl fmt::Debug for Release {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Release")
            .field("value", &self.value)
            .field("privacy", &self.privacy)
            .field("estimator", &self.estimator)
            .field("diagnostics", &"<gated: DiagnosticsAccess required>")
            .finish()
    }
}

impl fmt::Display for Release {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {:.3} ({})",
            self.estimator, self.value, self.privacy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_release() -> Release {
        Release::new(
            41.5,
            Privacy::NodeDp { epsilon: 1.0 },
            "test-estimator",
            Diagnostics {
                selected_delta: Some(4),
                ..Diagnostics::default()
            },
        )
    }

    #[test]
    fn default_surface_exposes_value_and_metadata_only() {
        let r = sample_release();
        assert_eq!(r.value(), 41.5);
        assert_eq!(r.privacy().epsilon(), Some(1.0));
        assert_eq!(r.estimator(), "test-estimator");
    }

    #[test]
    fn debug_and_display_never_print_diagnostics() {
        let r = sample_release();
        let debug = format!("{r:?}");
        assert!(debug.contains("gated"), "{debug}");
        assert!(!debug.contains("selected_delta: Some(4)"), "{debug}");
        let display = format!("{r}");
        assert!(
            display.contains("test-estimator") && display.contains("node-DP"),
            "{display}"
        );
    }

    #[test]
    fn diagnostics_require_the_token() {
        let r = sample_release();
        let token = DiagnosticsAccess::acknowledge_non_private();
        assert_eq!(r.diagnostics(token).selected_delta, Some(4));
        assert_eq!(r.into_diagnostics(token).selected_delta, Some(4));
    }

    #[test]
    fn privacy_epsilon_accessor() {
        assert_eq!(Privacy::EdgeDp { epsilon: 2.0 }.epsilon(), Some(2.0));
        assert_eq!(Privacy::NonPrivate.epsilon(), None);
        assert!(Privacy::NonPrivate.to_string().contains("non-private"));
    }
}
