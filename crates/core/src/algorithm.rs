//! Algorithm 1: the node-differentially private estimator for the size of the
//! spanning forest, and the derived estimator for the number of connected
//! components.
//!
//! The pipeline is exactly the paper's:
//!
//! 1. Evaluate the family of Lipschitz extensions `f_Δ` on the doubling grid
//!    `Δ ∈ {1, 2, 4, …, Δmax}` (Algorithm 4, steps 2–4).
//! 2. Select `Δ̂` with the Generalized Exponential Mechanism using privacy budget
//!    `ε/2` and failure probability `β` (default `1 / ln ln n`).
//! 3. Release `f_Δ̂(G) + Lap(2Δ̂/ε)` (the Laplace mechanism with the remaining
//!    `ε/2` budget and sensitivity `Δ̂`).
//!
//! The connected-components estimator uses `f_cc(G) = |V(G)| − f_sf(G)`
//! (Equation (1)): it spends a small share of the budget on a Laplace release of
//! the node count (sensitivity 1 under node-DP) and the rest on the spanning-forest
//! estimate.

use crate::error::CoreError;
use crate::extension::{evaluate_family, EvaluationPath};
use ccdp_dp::composition::PrivacyBudget;
use ccdp_dp::gem::{generalized_exponential_mechanism, power_of_two_grid, GemCandidate};
use ccdp_dp::laplace::laplace_mechanism;
use ccdp_graph::Graph;
use rand::Rng;

/// Output of the private spanning-forest estimator, with diagnostics that the
/// experiments use. Only [`PrivateEstimate::value`] is differentially private
/// output; the diagnostic fields reference non-private intermediate values and
/// must not be released if the privacy guarantee is to be preserved.
#[derive(Clone, Debug)]
pub struct PrivateEstimate {
    /// The released (private) estimate.
    pub value: f64,
    /// The Lipschitz parameter selected by GEM.
    pub selected_delta: usize,
    /// The (non-private) value of the selected extension `f_Δ̂(G)`.
    pub extension_value: f64,
    /// Scale of the Laplace noise added in the final step.
    pub noise_scale: f64,
    /// Failure probability β used for GEM.
    pub beta: f64,
    /// Whether any of the evaluated extensions needed the LP path.
    pub used_lp: bool,
    /// The evaluated grid of (Δ, f_Δ(G)) pairs (non-private diagnostics).
    pub family_values: Vec<(usize, f64)>,
}

/// Node-private estimator for `f_sf(G)` (Algorithm 1).
#[derive(Clone, Debug)]
pub struct PrivateSpanningForestEstimator {
    epsilon: f64,
    beta: Option<f64>,
    delta_max: Option<usize>,
}

impl PrivateSpanningForestEstimator {
    /// Creates an estimator with privacy parameter `epsilon > 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        PrivateSpanningForestEstimator { epsilon, beta: None, delta_max: None }
    }

    /// Overrides the failure probability β (default `1 / ln ln n`, clamped to
    /// `(0.001, 0.5)`).
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0, 1)");
        self.beta = Some(beta);
        self
    }

    /// Overrides the largest Δ of the selection grid (default `|V(G)|`).
    ///
    /// This is a public, data-independent parameter; choosing it below the graph's
    /// Δ* degrades accuracy but never privacy.
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        assert!(delta_max >= 1, "delta_max must be at least 1");
        self.delta_max = Some(delta_max);
        self
    }

    /// The privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Default β from the paper's analysis: `1 / ln ln n`.
    fn default_beta(n: usize) -> f64 {
        let lnln = (n.max(3) as f64).ln().ln();
        (1.0 / lnln).clamp(0.001, 0.5)
    }

    /// Runs Algorithm 1 on `g` and returns the private estimate of `f_sf(G)`.
    pub fn estimate(&self, g: &Graph, rng: &mut impl Rng) -> Result<PrivateEstimate, CoreError> {
        let n = g.num_vertices();
        if n == 0 {
            // No data to protect; release the trivially correct 0 with noise so the
            // interface stays consistent.
            let value = laplace_mechanism(0.0, 1.0, self.epsilon, rng);
            return Ok(PrivateEstimate {
                value,
                selected_delta: 1,
                extension_value: 0.0,
                noise_scale: 1.0 / self.epsilon,
                beta: self.beta.unwrap_or(0.5),
                used_lp: false,
                family_values: Vec::new(),
            });
        }
        let beta = self.beta.unwrap_or_else(|| Self::default_beta(n));
        let mut budget = PrivacyBudget::new(self.epsilon);
        let eps_gem = budget.spend_fraction("gem-threshold-selection", 0.5).expect("half budget");
        let eps_release = budget.spend_fraction("laplace-release", 0.5).expect("half budget");

        // Steps 2–4 of Algorithm 4: evaluate the family on the doubling grid.
        let delta_max = self.delta_max.unwrap_or(n).min(n.max(1));
        let grid = power_of_two_grid(delta_max);
        let evals = evaluate_family(g, &grid)?;
        let used_lp = evals.iter().any(|e| e.path == EvaluationPath::LinearProgram);
        let candidates: Vec<GemCandidate> = grid
            .iter()
            .zip(&evals)
            .map(|(&d, e)| GemCandidate { delta: d as f64, value: e.value })
            .collect();
        let true_value = g.spanning_forest_size() as f64;

        // Step 1 of Algorithm 1: GEM with ε/2.
        let selection =
            generalized_exponential_mechanism(&candidates, true_value, eps_gem, beta, rng);
        let selected_delta = grid[selection.index];
        let extension_value = selection.value;

        // Step 3: Laplace release with the remaining ε/2 and sensitivity Δ̂,
        // i.e. noise scale 2Δ̂/ε.
        let noise_scale = selected_delta as f64 / eps_release;
        let value = laplace_mechanism(extension_value, selected_delta as f64, eps_release, rng);

        Ok(PrivateEstimate {
            value,
            selected_delta,
            extension_value,
            noise_scale,
            beta,
            used_lp,
            family_values: grid.iter().copied().zip(evals.iter().map(|e| e.value)).collect(),
        })
    }
}

/// Output of the private connected-components estimator.
#[derive(Clone, Debug)]
pub struct PrivateCcEstimate {
    /// The released (private) estimate of `f_cc(G)`.
    pub value: f64,
    /// The private estimate of the node count used in Equation (1).
    pub node_count_estimate: f64,
    /// The spanning-forest estimate and its diagnostics.
    pub spanning_forest: PrivateEstimate,
}

/// Node-private estimator for the number of connected components `f_cc(G)`.
///
/// Combines a Laplace release of `|V(G)|` (sensitivity 1) with the Algorithm 1
/// estimate of `f_sf(G)` via `f_cc = |V| − f_sf`.
#[derive(Clone, Debug)]
pub struct PrivateCcEstimator {
    epsilon: f64,
    node_count_fraction: f64,
    beta: Option<f64>,
    delta_max: Option<usize>,
}

impl PrivateCcEstimator {
    /// Creates an estimator with total privacy parameter `epsilon > 0`.
    ///
    /// By default 10% of the budget is spent on the node count and 90% on the
    /// spanning-forest size.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        PrivateCcEstimator { epsilon, node_count_fraction: 0.1, beta: None, delta_max: None }
    }

    /// Sets the fraction of ε spent on the node-count release (in `(0, 1)`).
    pub fn with_node_count_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must lie in (0, 1)");
        self.node_count_fraction = fraction;
        self
    }

    /// Overrides the GEM failure probability β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Overrides the largest Δ of the selection grid.
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        self.delta_max = Some(delta_max);
        self
    }

    /// The total privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Runs the estimator on `g` and returns the private estimate of `f_cc(G)`.
    pub fn estimate(&self, g: &Graph, rng: &mut impl Rng) -> Result<PrivateCcEstimate, CoreError> {
        let mut budget = PrivacyBudget::new(self.epsilon);
        let eps_count =
            budget.spend_fraction("node-count", self.node_count_fraction).expect("within budget");
        let eps_sf = budget.remaining_epsilon();

        // |V| has node sensitivity exactly 1.
        let node_count_estimate =
            laplace_mechanism(g.num_vertices() as f64, 1.0, eps_count, rng);

        let mut sf = PrivateSpanningForestEstimator::new(eps_sf);
        if let Some(beta) = self.beta {
            sf = sf.with_beta(beta);
        }
        if let Some(dm) = self.delta_max {
            sf = sf.with_delta_max(dm);
        }
        let spanning_forest = sf.estimate(g, rng)?;

        Ok(PrivateCcEstimate {
            value: node_count_estimate - spanning_forest.value,
            node_count_estimate,
            spanning_forest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimator_is_reasonably_accurate_on_star_forests() {
        // Δ* = 3 for this family, so errors should be O(Δ* ln ln n / ε) ≪ f_cc.
        let mut rng = StdRng::seed_from_u64(100);
        let g = generators::planted_star_forest(40, 3, 20);
        let est = PrivateSpanningForestEstimator::new(1.0);
        let truth = g.spanning_forest_size() as f64;
        let mut total_err = 0.0;
        let runs = 20;
        for _ in 0..runs {
            let r = est.estimate(&g, &mut rng).unwrap();
            total_err += (r.value - truth).abs();
        }
        let mean_err = total_err / runs as f64;
        assert!(mean_err < 60.0, "mean error {mean_err} too large for a Δ*=3 instance");
    }

    #[test]
    fn selected_delta_is_small_for_low_degree_graphs() {
        let mut rng = StdRng::seed_from_u64(101);
        let g = generators::planted_star_forest(60, 2, 0);
        let est = PrivateSpanningForestEstimator::new(2.0);
        let mut small = 0;
        for _ in 0..10 {
            let r = est.estimate(&g, &mut rng).unwrap();
            if r.selected_delta <= 8 {
                small += 1;
            }
        }
        assert!(small >= 8, "GEM selected a large Δ too often ({small}/10 small)");
    }

    #[test]
    fn cc_estimator_matches_identity() {
        let mut rng = StdRng::seed_from_u64(102);
        let g = generators::planted_star_forest(30, 2, 10);
        let est = PrivateCcEstimator::new(1.0);
        let r = est.estimate(&g, &mut rng).unwrap();
        assert!((r.value - (r.node_count_estimate - r.spanning_forest.value)).abs() < 1e-9);
        let truth = g.num_connected_components() as f64;
        // Very loose sanity bound: the estimate is in the right ballpark.
        assert!((r.value - truth).abs() < 80.0, "estimate {} vs truth {}", r.value, truth);
    }

    #[test]
    fn empty_graph_is_handled() {
        let mut rng = StdRng::seed_from_u64(103);
        let g = ccdp_graph::Graph::new(0);
        let est = PrivateSpanningForestEstimator::new(1.0);
        let r = est.estimate(&g, &mut rng).unwrap();
        assert!(r.value.abs() < 50.0);
        assert_eq!(r.selected_delta, 1);
    }

    #[test]
    fn noise_scale_reflects_selected_delta() {
        let mut rng = StdRng::seed_from_u64(104);
        let g = generators::star(20);
        let est = PrivateSpanningForestEstimator::new(1.0);
        let r = est.estimate(&g, &mut rng).unwrap();
        assert!((r.noise_scale - r.selected_delta as f64 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn family_values_are_monotone_and_bounded_by_fsf() {
        let mut rng = StdRng::seed_from_u64(105);
        let g = generators::caveman(4, 4);
        let est = PrivateSpanningForestEstimator::new(1.0);
        let r = est.estimate(&g, &mut rng).unwrap();
        let fsf = g.spanning_forest_size() as f64;
        for w in r.family_values.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for &(_, v) in &r.family_values {
            assert!(v <= fsf + 1e-6);
        }
    }

    #[test]
    fn delta_max_override_limits_grid() {
        let mut rng = StdRng::seed_from_u64(106);
        let g = generators::path(50);
        let est = PrivateSpanningForestEstimator::new(1.0).with_delta_max(4);
        let r = est.estimate(&g, &mut rng).unwrap();
        assert!(r.family_values.iter().all(|&(d, _)| d <= 4));
        assert!(r.selected_delta <= 4);
    }

    #[test]
    #[should_panic]
    fn invalid_epsilon_is_rejected() {
        PrivateSpanningForestEstimator::new(-1.0);
    }
}
