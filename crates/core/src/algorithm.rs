//! Algorithm 1: the node-differentially private estimator for the size of the
//! spanning forest, and the derived estimator for the number of connected
//! components.
//!
//! The pipeline is exactly the paper's:
//!
//! 1. Evaluate the family of Lipschitz extensions `f_Δ` on the doubling grid
//!    `Δ ∈ {1, 2, 4, …, Δmax}` (Algorithm 4, steps 2–4).
//! 2. Select `Δ̂` with the Generalized Exponential Mechanism using privacy budget
//!    `ε/2` and failure probability `β` (default `1 / ln ln n`).
//! 3. Release `f_Δ̂(G) + Lap(2Δ̂/ε)` (the Laplace mechanism with the remaining
//!    `ε/2` budget and sensitivity `Δ̂`).
//!
//! The connected-components estimator uses `f_cc(G) = |V(G)| − f_sf(G)`
//! (Equation (1)): it spends a small share of the budget on a Laplace release of
//! the node count (sensitivity 1 under node-DP) and the rest on the spanning-forest
//! estimate.
//!
//! Both estimators are configured through [`EstimatorConfig`] (typed validation,
//! no panics), account every ε through one [`PrivacyBudget`] threaded down the
//! call chain, and release typed [`Release`] values whose non-private
//! diagnostics are gated behind [`DiagnosticsAccess`](crate::DiagnosticsAccess).

use crate::cache::ExtensionCache;
use crate::config::{ConfigError, EstimatorConfig};
use crate::error::CcdpError;
use crate::estimator::Estimator;
use crate::extension::{
    evaluate_family_csr_profiled, evaluate_family_tuned_obs, EvaluationPath, ExtensionEvaluation,
};
use crate::release::{Diagnostics, Privacy, Release};
use ccdp_dp::composition::{BudgetExceeded, PrivacyBudget};
use ccdp_dp::gem::{generalized_exponential_mechanism, power_of_two_grid, GemCandidate};
use ccdp_dp::laplace::laplace_mechanism;
use ccdp_dp::NoiseBatch;
use ccdp_exec::PhaseProfiler;
use ccdp_graph::{CsrGraph, Graph};
use rand::{Rng, RngCore};

/// The ε splits, β and Δ grid of one spanning-forest release, fixed before
/// the family evaluation starts (stage spends are recorded up front).
struct ReleasePlan {
    epsilon: f64,
    eps_gem: f64,
    eps_release: f64,
    beta: f64,
    grid: Vec<usize>,
}

/// Node-private estimator for `f_sf(G)` (Algorithm 1).
#[derive(Clone, Debug)]
pub struct PrivateSpanningForestEstimator {
    config: EstimatorConfig,
    /// Memo for the deterministic family evaluation (`None` when disabled).
    /// Clones share it, so a cloned serving fleet warms one cache.
    family_cache: Option<std::sync::Arc<ExtensionCache>>,
}

impl PrivateSpanningForestEstimator {
    /// Name reported by the [`Estimator`] implementation.
    pub const NAME: &'static str = "private-spanning-forest";

    /// Creates an estimator with privacy parameter `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self, ConfigError> {
        Self::from_config(EstimatorConfig::new(epsilon))
    }

    /// Creates an estimator from a validated configuration.
    pub fn from_config(config: EstimatorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let family_cache = config.resolve_family_cache();
        Ok(PrivateSpanningForestEstimator {
            config,
            family_cache,
        })
    }

    /// The privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon()
    }

    /// The configuration this estimator runs with.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The family cache this estimator consults, if caching is enabled.
    pub fn family_cache(&self) -> Option<&std::sync::Arc<ExtensionCache>> {
        self.family_cache.as_ref()
    }

    /// Evaluates the family through the cache (or directly when disabled).
    /// Returns a shared handle so cache hits copy nothing — each evaluation
    /// carries per-Δ LP details that would otherwise be cloned per estimate.
    fn family(
        &self,
        g: &Graph,
        grid: &[usize],
    ) -> Result<std::sync::Arc<Vec<ExtensionEvaluation>>, CcdpError> {
        let backend = self.config.solver();
        let threads = self.config.resolved_threads();
        let options = self.config.family_options();
        let obs = self.config.obs();
        let profiler = obs.profiler.as_deref();
        match &self.family_cache {
            Some(cache) => Ok(cache.evaluate_family_observed(
                g,
                grid,
                backend,
                self.config.graph_tag(),
                threads,
                options,
                profiler,
                obs.trace.as_ref(),
            )?),
            None => Ok(std::sync::Arc::new(evaluate_family_tuned_obs(
                g, grid, backend, threads, options, profiler,
            )?)),
        }
    }

    /// Fixes the ε splits, β and the doubling grid for a release over `n`
    /// vertices, recording the stage spends against `budget` up front so the
    /// ledger order is identical no matter which family engine runs next.
    fn plan_release(&self, n: usize, budget: &mut PrivacyBudget) -> Result<ReleasePlan, CcdpError> {
        let epsilon = budget.remaining_epsilon();
        if epsilon <= 0.0 {
            // An exhausted accountant cannot fund another stage: any positive
            // request exceeds what remains.
            return Err(CcdpError::Budget(BudgetExceeded {
                requested: f64::MIN_POSITIVE,
                remaining: epsilon,
            }));
        }
        let eps_gem = budget.spend("gem-threshold-selection", epsilon / 2.0)?;
        let eps_release = budget.spend("laplace-release", epsilon / 2.0)?;
        let beta = self.config.resolved_beta(n);
        let delta_max = self.config.delta_max().unwrap_or(n).min(n.max(1));
        let grid = power_of_two_grid(delta_max);
        Ok(ReleasePlan {
            epsilon,
            eps_gem,
            eps_release,
            beta,
            grid,
        })
    }

    /// Steps 1 and 3 of Algorithm 1 once the family values are in hand: GEM
    /// selection with ε/2 followed by the Laplace release with ε/2. Shared by
    /// the adjacency-list and CSR entry points so both consume randomness and
    /// assemble diagnostics identically.
    fn finish_release<R: Rng + ?Sized>(
        &self,
        plan: &ReleasePlan,
        evals: &[ExtensionEvaluation],
        true_value: f64,
        budget: &PrivacyBudget,
        rng: &mut R,
    ) -> Release {
        let used_lp = evals
            .iter()
            .any(|e| e.path == EvaluationPath::LinearProgram);
        let candidates: Vec<GemCandidate> = plan
            .grid
            .iter()
            .zip(evals.iter())
            .map(|(&d, e)| GemCandidate {
                delta: d as f64,
                value: e.value,
            })
            .collect();

        // The release consumes a statically known amount of randomness: one
        // word for the GEM draw, one for the Laplace release. Prefetch both
        // into a batch and replay it — the samples are bit-for-bit what
        // drawing from `rng` directly would produce, and the exhaustion
        // check below pins the draw count against accounting drift.
        let mut noise = NoiseBatch::prefetch(rng, 2);
        if let Some(ctx) = &self.config.obs().trace {
            ctx.event_full(ccdp_obs::SpanKind::NoiseDraw, std::time::Duration::ZERO, 2);
        }

        // Step 1 of Algorithm 1: GEM with ε/2.
        let selection = generalized_exponential_mechanism(
            &candidates,
            true_value,
            plan.eps_gem,
            plan.beta,
            &mut noise,
        );
        let selected_delta = plan.grid[selection.index];
        let extension_value = selection.value;

        // Step 3: Laplace release with the remaining ε/2 and sensitivity Δ̂,
        // i.e. noise scale 2Δ̂/ε.
        let noise_scale = selected_delta as f64 / plan.eps_release;
        let value = laplace_mechanism(
            extension_value,
            selected_delta as f64,
            plan.eps_release,
            &mut noise,
        );
        assert!(
            noise.is_exhausted(),
            "spanning-forest release must consume exactly its prefetched noise"
        );

        Release::new(
            value,
            Privacy::NodeDp {
                epsilon: plan.epsilon,
            },
            Self::NAME,
            Diagnostics {
                selected_delta: Some(selected_delta),
                extension_value: Some(extension_value),
                noise_scale: Some(noise_scale),
                beta: Some(plan.beta),
                used_lp,
                family_values: plan
                    .grid
                    .iter()
                    .copied()
                    .zip(evals.iter().map(|e| e.value))
                    .collect(),
                node_count_estimate: None,
                spanning_forest_estimate: None,
                budget_ledger: budget.ledger().to_vec(),
            },
        )
    }

    /// Runs Algorithm 1 on `g` and returns the private release of `f_sf(G)`.
    pub fn estimate<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Result<Release, CcdpError> {
        let mut budget = PrivacyBudget::new(self.config.epsilon());
        self.estimate_with_budget(g, &mut budget, rng)
    }

    /// Runs Algorithm 1 drawing from an externally owned [`PrivacyBudget`].
    ///
    /// This is the single accountant seam of the crate: composed estimators
    /// (e.g. [`PrivateCcEstimator`]) pass their budget down instead of
    /// re-deriving ε splits, so one ledger records every stage. The entire
    /// remaining budget is consumed: half on GEM selection, half on the
    /// Laplace release.
    pub fn estimate_with_budget<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        budget: &mut PrivacyBudget,
        rng: &mut R,
    ) -> Result<Release, CcdpError> {
        // Steps 2–4 of Algorithm 4: evaluate the family on the doubling grid.
        // The empty graph takes the same path as everything else: the grid
        // degenerates to {1}, the extension value to 0.
        let plan = self.plan_release(g.num_vertices(), budget)?;
        let evals = self.family(g, &plan.grid)?;
        let profiler = self.config.obs().profiler.clone();
        let profiler = profiler.as_deref();
        let true_value = {
            let _t = profiler.map(|p| p.phase("release/true-value"));
            g.spanning_forest_size() as f64
        };
        let _t = profiler.map(|p| p.phase("release/mechanisms"));
        Ok(self.finish_release(&plan, &evals, true_value, budget, rng))
    }

    /// Runs Algorithm 1 directly on a CSR arena, bypassing both the
    /// adjacency-list [`Graph`] and the [`ExtensionCache`]. This is the
    /// large-scale entry point: the family is evaluated by the partitioned
    /// CSR engine and the release is bit-for-bit identical to
    /// [`Self::estimate`] on the equivalent `Graph` with the same RNG state.
    pub fn estimate_csr<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        rng: &mut R,
    ) -> Result<Release, CcdpError> {
        let mut budget = PrivacyBudget::new(self.config.epsilon());
        self.estimate_csr_with_budget(arena, &mut budget, rng, None)
    }

    /// [`Self::estimate_csr`] with per-phase wall-clock attribution: family
    /// phases (`family/partition`, `family/anchor`, `family/lp`) are recorded
    /// by the CSR engine, and this wrapper adds `release/true-value` (the
    /// exact spanning-forest size fed to GEM) and `release/mechanisms` (GEM
    /// selection plus the Laplace release).
    pub fn estimate_csr_profiled<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        rng: &mut R,
        profiler: &PhaseProfiler,
    ) -> Result<Release, CcdpError> {
        let mut budget = PrivacyBudget::new(self.config.epsilon());
        self.estimate_csr_with_budget(arena, &mut budget, rng, Some(profiler))
    }

    /// CSR counterpart of [`Self::estimate_with_budget`]. Budget spends, the
    /// Δ grid, noise consumption and diagnostics all match the `Graph` path;
    /// only the family engine differs (and is itself value-identical).
    pub fn estimate_csr_with_budget<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        budget: &mut PrivacyBudget,
        rng: &mut R,
        profiler: Option<&PhaseProfiler>,
    ) -> Result<Release, CcdpError> {
        // An explicit profiler argument wins; otherwise the one threaded
        // through the configuration (the serving tier's per-request handle).
        let config_profiler = self.config.obs().profiler.clone();
        let profiler = profiler.or(config_profiler.as_deref());
        let plan = self.plan_release(arena.num_vertices(), budget)?;
        let evals = evaluate_family_csr_profiled(
            arena,
            &plan.grid,
            self.config.resolved_threads(),
            self.config.family_options(),
            profiler,
        )?;
        let true_value = {
            let _t = profiler.map(|p| p.phase("release/true-value"));
            arena.spanning_forest_size() as f64
        };
        let _t = profiler.map(|p| p.phase("release/mechanisms"));
        Ok(self.finish_release(&plan, &evals, true_value, budget, rng))
    }
}

impl Estimator for PrivateSpanningForestEstimator {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn privacy(&self) -> Privacy {
        Privacy::NodeDp {
            epsilon: self.config.epsilon(),
        }
    }

    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        PrivateSpanningForestEstimator::estimate(self, g, rng)
    }
}

/// Node-private estimator for the number of connected components `f_cc(G)`.
///
/// Combines a Laplace release of `|V(G)|` (sensitivity 1) with the Algorithm 1
/// estimate of `f_sf(G)` via `f_cc = |V| − f_sf`. A single [`PrivacyBudget`]
/// accounts both stages.
#[derive(Clone, Debug)]
pub struct PrivateCcEstimator {
    config: EstimatorConfig,
    spanning_forest: PrivateSpanningForestEstimator,
}

impl PrivateCcEstimator {
    /// Name reported by the [`Estimator`] implementation.
    pub const NAME: &'static str = "private-connected-components";

    /// Creates an estimator with total privacy parameter `epsilon`.
    ///
    /// By default 10% of the budget is spent on the node count and 90% on the
    /// spanning-forest size ([`EstimatorConfig::DEFAULT_NODE_COUNT_FRACTION`]).
    pub fn new(epsilon: f64) -> Result<Self, ConfigError> {
        Self::from_config(EstimatorConfig::new(epsilon))
    }

    /// Creates an estimator from a validated configuration.
    pub fn from_config(config: EstimatorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let spanning_forest = PrivateSpanningForestEstimator::from_config(config.clone())?;
        Ok(PrivateCcEstimator {
            config,
            spanning_forest,
        })
    }

    /// The total privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon()
    }

    /// The configuration this estimator runs with.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Runs the estimator on `g` and returns the private release of `f_cc(G)`.
    pub fn estimate<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Result<Release, CcdpError> {
        let n = g.num_vertices();
        let (mut budget, node_count_estimate) = self.count_stage(n, rng)?;

        // The spanning-forest stage consumes everything that remains, drawing
        // from the same accountant.
        let sf_release = self
            .spanning_forest
            .estimate_with_budget(g, &mut budget, rng)?;
        Ok(self.assemble(node_count_estimate, sf_release, &budget))
    }

    /// Runs the estimator directly on a CSR arena — the large-scale twin of
    /// [`Self::estimate`], bit-for-bit identical on the equivalent `Graph`
    /// with the same RNG state.
    pub fn estimate_csr<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        rng: &mut R,
    ) -> Result<Release, CcdpError> {
        self.estimate_csr_inner(arena, rng, None)
    }

    /// [`Self::estimate_csr`] with per-phase wall-clock attribution recorded
    /// into `profiler` (see [`PrivateSpanningForestEstimator::estimate_csr_profiled`]).
    pub fn estimate_csr_profiled<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        rng: &mut R,
        profiler: &PhaseProfiler,
    ) -> Result<Release, CcdpError> {
        self.estimate_csr_inner(arena, rng, Some(profiler))
    }

    fn estimate_csr_inner<R: Rng + ?Sized>(
        &self,
        arena: &CsrGraph,
        rng: &mut R,
        profiler: Option<&PhaseProfiler>,
    ) -> Result<Release, CcdpError> {
        let (mut budget, node_count_estimate) = self.count_stage(arena.num_vertices(), rng)?;
        let sf_release =
            self.spanning_forest
                .estimate_csr_with_budget(arena, &mut budget, rng, profiler)?;
        Ok(self.assemble(node_count_estimate, sf_release, &budget))
    }

    /// Stage 1 shared by both entry points: spend the node-count slice and
    /// release `|V|` with sensitivity 1.
    ///
    /// The single noise word is prefetched like the spanning-forest stage's,
    /// so a full release consumes exactly three words from `rng` in a fixed
    /// order.
    fn count_stage<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<(PrivacyBudget, f64), CcdpError> {
        let epsilon = self.config.epsilon();
        let mut budget = PrivacyBudget::new(epsilon);
        let eps_count = budget.spend("node-count", epsilon * self.config.node_count_fraction())?;
        let mut noise = NoiseBatch::prefetch(rng, 1);
        if let Some(ctx) = &self.config.obs().trace {
            ctx.event_full(ccdp_obs::SpanKind::NoiseDraw, std::time::Duration::ZERO, 1);
        }
        let node_count_estimate = laplace_mechanism(n as f64, 1.0, eps_count, &mut noise);
        assert!(noise.is_exhausted());
        Ok((budget, node_count_estimate))
    }

    fn assemble(
        &self,
        node_count_estimate: f64,
        sf_release: Release,
        budget: &PrivacyBudget,
    ) -> Release {
        let sf_value = sf_release.value();
        let mut diagnostics = sf_release
            .into_diagnostics(crate::release::DiagnosticsAccess::acknowledge_non_private());
        diagnostics.node_count_estimate = Some(node_count_estimate);
        diagnostics.spanning_forest_estimate = Some(sf_value);
        diagnostics.budget_ledger = budget.ledger().to_vec();

        Release::new(
            node_count_estimate - sf_value,
            Privacy::NodeDp {
                epsilon: self.config.epsilon(),
            },
            Self::NAME,
            diagnostics,
        )
    }
}

impl Estimator for PrivateCcEstimator {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn privacy(&self) -> Privacy {
        Privacy::NodeDp {
            epsilon: self.config.epsilon(),
        }
    }

    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError> {
        PrivateCcEstimator::estimate(self, g, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::DiagnosticsAccess;
    use ccdp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn token() -> DiagnosticsAccess {
        DiagnosticsAccess::acknowledge_non_private()
    }

    #[test]
    fn estimator_is_reasonably_accurate_on_star_forests() {
        // Δ* = 3 for this family, so errors should be O(Δ* ln ln n / ε) ≪ f_cc.
        let mut rng = StdRng::seed_from_u64(100);
        let g = generators::planted_star_forest(40, 3, 20);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let truth = g.spanning_forest_size() as f64;
        let mut total_err = 0.0;
        let runs = 20;
        for _ in 0..runs {
            let r = est.estimate(&g, &mut rng).unwrap();
            total_err += (r.value() - truth).abs();
        }
        let mean_err = total_err / runs as f64;
        assert!(
            mean_err < 60.0,
            "mean error {mean_err} too large for a Δ*=3 instance"
        );
    }

    #[test]
    fn selected_delta_is_small_for_low_degree_graphs() {
        let mut rng = StdRng::seed_from_u64(101);
        let g = generators::planted_star_forest(60, 2, 0);
        let est = PrivateSpanningForestEstimator::new(2.0).unwrap();
        let mut small = 0;
        for _ in 0..10 {
            let r = est.estimate(&g, &mut rng).unwrap();
            if r.diagnostics(token()).selected_delta.unwrap() <= 8 {
                small += 1;
            }
        }
        assert!(
            small >= 8,
            "GEM selected a large Δ too often ({small}/10 small)"
        );
    }

    #[test]
    fn csr_release_is_bitwise_identical_to_graph_release() {
        // The CSR entry points must release the exact bits the Graph path
        // does for the same RNG stream: same family values, same GEM draw,
        // same Laplace sample — across micro/dedup toggles and thread counts.
        let g = generators::erdos_renyi(600, 1.3 / 600.0, &mut StdRng::seed_from_u64(77));
        let arena = CsrGraph::from_graph(&g);
        for (micro, dedup) in [(true, true), (true, false), (false, true), (false, false)] {
            let config = EstimatorConfig::new(1.0)
                .with_micro_solver(micro)
                .with_solve_dedup(dedup);
            let sf = PrivateSpanningForestEstimator::from_config(config.clone()).unwrap();
            let base = sf.estimate(&g, &mut StdRng::seed_from_u64(9)).unwrap();
            let csr = sf
                .estimate_csr(&arena, &mut StdRng::seed_from_u64(9))
                .unwrap();
            assert_eq!(base.value().to_bits(), csr.value().to_bits());
            let (bd, cd) = (base.diagnostics(token()), csr.diagnostics(token()));
            assert_eq!(bd.selected_delta, cd.selected_delta);
            assert_eq!(bd.family_values, cd.family_values);

            let cc = PrivateCcEstimator::from_config(config).unwrap();
            let base = cc.estimate(&g, &mut StdRng::seed_from_u64(10)).unwrap();
            let csr = cc
                .estimate_csr(&arena, &mut StdRng::seed_from_u64(10))
                .unwrap();
            assert_eq!(base.value().to_bits(), csr.value().to_bits());
        }

        // The profiled variant is the same release and records the phases.
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let profiler = ccdp_exec::PhaseProfiler::new();
        let plain = est
            .estimate_csr(&arena, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let profiled = est
            .estimate_csr_profiled(&arena, &mut StdRng::seed_from_u64(11), &profiler)
            .unwrap();
        assert_eq!(plain.value().to_bits(), profiled.value().to_bits());
        let phases: Vec<String> = profiler.report().into_iter().map(|p| p.name).collect();
        assert!(phases.iter().any(|p| p == "release/mechanisms"));
        assert!(phases.iter().any(|p| p == "release/true-value"));
        assert!(phases.iter().any(|p| p == "family/partition"));
    }

    #[test]
    fn cc_estimator_matches_identity() {
        let mut rng = StdRng::seed_from_u64(102);
        let g = generators::planted_star_forest(30, 2, 10);
        let est = PrivateCcEstimator::new(1.0).unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        let d = r.diagnostics(token());
        let identity = d.node_count_estimate.unwrap() - d.spanning_forest_estimate.unwrap();
        assert!((r.value() - identity).abs() < 1e-9);
        let truth = g.num_connected_components() as f64;
        // Very loose sanity bound: the estimate is in the right ballpark.
        assert!(
            (r.value() - truth).abs() < 80.0,
            "estimate {} vs truth {}",
            r.value(),
            truth
        );
    }

    #[test]
    fn empty_graph_takes_the_standard_path() {
        let mut rng = StdRng::seed_from_u64(103);
        let g = ccdp_graph::Graph::new(0);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        assert!(r.value().abs() < 50.0);
        let d = r.diagnostics(token()).clone();
        // Same release/diagnostics shape as the non-empty path: the grid
        // degenerates to {1}, β comes from the shared default, the ledger
        // records both stages.
        assert_eq!(d.selected_delta, Some(1));
        assert_eq!(d.extension_value, Some(0.0));
        assert_eq!(d.family_values, vec![(1, 0.0)]);
        assert_eq!(d.beta, Some(EstimatorConfig::new(1.0).resolved_beta(0)));
        assert_eq!(d.noise_scale, Some(1.0 / 0.5));
        assert_eq!(d.budget_ledger.len(), 2);
        // A β override is honored on the empty graph exactly like elsewhere.
        let est =
            PrivateSpanningForestEstimator::from_config(EstimatorConfig::new(1.0).with_beta(0.123))
                .unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        assert_eq!(r.diagnostics(token()).beta, Some(0.123));
    }

    #[test]
    fn noise_scale_reflects_selected_delta() {
        let mut rng = StdRng::seed_from_u64(104);
        let g = generators::star(20);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        let d = r.diagnostics(token());
        assert!((d.noise_scale.unwrap() - d.selected_delta.unwrap() as f64 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn family_values_are_monotone_and_bounded_by_fsf() {
        let mut rng = StdRng::seed_from_u64(105);
        let g = generators::caveman(4, 4);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        let fsf = g.spanning_forest_size() as f64;
        let d = r.diagnostics(token());
        for w in d.family_values.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for &(_, v) in &d.family_values {
            assert!(v <= fsf + 1e-6);
        }
    }

    #[test]
    fn delta_max_override_limits_grid() {
        let mut rng = StdRng::seed_from_u64(106);
        let g = generators::path(50);
        let est = PrivateSpanningForestEstimator::from_config(
            EstimatorConfig::new(1.0).with_delta_max(4),
        )
        .unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        let d = r.diagnostics(token());
        assert!(d.family_values.iter().all(|&(delta, _)| delta <= 4));
        assert!(d.selected_delta.unwrap() <= 4);
    }

    #[test]
    fn releases_are_identical_for_every_thread_budget() {
        let g = generators::planted_star_forest(40, 3, 20);
        let baseline_cfg = EstimatorConfig::new(1.0).with_threads(1);
        let mut rng = StdRng::seed_from_u64(2024);
        let baseline = PrivateCcEstimator::from_config(baseline_cfg)
            .unwrap()
            .estimate(&g, &mut rng)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let cfg = EstimatorConfig::new(1.0).with_threads(threads);
            let mut rng = StdRng::seed_from_u64(2024);
            let r = PrivateCcEstimator::from_config(cfg)
                .unwrap()
                .estimate(&g, &mut rng)
                .unwrap();
            assert_eq!(
                baseline.value().to_bits(),
                r.value().to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                baseline.diagnostics(token()).selected_delta,
                r.diagnostics(token()).selected_delta
            );
        }
    }

    #[test]
    fn invalid_epsilon_is_a_typed_error_not_a_panic() {
        let err = PrivateSpanningForestEstimator::new(-1.0).unwrap_err();
        assert_eq!(err, ConfigError::InvalidEpsilon { value: -1.0 });
        let err = PrivateCcEstimator::new(f64::NAN).unwrap_err();
        assert!(matches!(err, ConfigError::InvalidEpsilon { .. }));
    }

    #[test]
    fn budget_ledger_accounts_the_advertised_epsilon() {
        let mut rng = StdRng::seed_from_u64(107);
        let g = generators::planted_star_forest(20, 2, 5);
        let est = PrivateCcEstimator::new(2.0).unwrap();
        let r = est.estimate(&g, &mut rng).unwrap();
        let ledger = &r.diagnostics(token()).budget_ledger;
        assert_eq!(ledger.len(), 3, "node-count + gem + laplace stages");
        let spent: f64 = ledger.iter().map(|(_, e)| e).sum();
        assert!(
            (spent - 2.0).abs() < 1e-9,
            "ledger {ledger:?} must sum to ε"
        );
    }
}
