//! The unified, object-safe estimator interface.
//!
//! Every estimator in this crate — the paper's private algorithms *and* the
//! non-private / edge-DP / naive baselines — implements [`Estimator`], so a
//! serving loop, bench harness or experiment can hold heterogeneous estimators
//! as `Box<dyn Estimator>` and treat their outputs uniformly as typed
//! [`Release`]s.
//!
//! ```
//! use ccdp_core::baselines::{EdgeDpBaseline, NonPrivateBaseline};
//! use ccdp_core::{Estimator, PrivateCcEstimator};
//! use ccdp_graph::generators;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let fleet: Vec<Box<dyn Estimator>> = vec![
//!     Box::new(NonPrivateBaseline),
//!     Box::new(EdgeDpBaseline::new(1.0).unwrap()),
//!     Box::new(PrivateCcEstimator::new(1.0).unwrap()),
//! ];
//! let g = generators::planted_star_forest(10, 2, 3);
//! let mut rng = StdRng::seed_from_u64(7);
//! for est in &fleet {
//!     let release = est.estimate(&g, &mut rng).unwrap();
//!     println!("{}: {:.1}", est.name(), release.value());
//! }
//! ```

use crate::error::CcdpError;
use crate::release::{Privacy, Release};
use ccdp_graph::Graph;
use rand::RngCore;

/// An estimator of a graph statistic that produces a typed [`Release`].
///
/// Object-safe by construction: randomness comes in as `&mut dyn RngCore` and
/// results leave as [`Release`] / [`CcdpError`], so implementations with
/// completely different internals share one vtable-friendly signature.
pub trait Estimator {
    /// Stable, human-readable name (used in experiment tables and logs).
    fn name(&self) -> &'static str;

    /// The privacy guarantee this estimator advertises for its releases.
    fn privacy(&self) -> Privacy;

    /// Runs the estimator on `g`.
    fn estimate(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Release, CcdpError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time proof of object safety (independent of any implementor).
    fn _assert_object_safe(_: &dyn Estimator) {}
}
