//! Concurrent-correctness stress tests for the serving tier.
//!
//! (a) Single-flight coalescing: 16 racing clients asking for the same
//!     (graph, grid, backend) key must trigger exactly one family
//!     evaluation — the rest are cache hits or in-flight joins.
//! (b) Budget-ledger safety: under arbitrary interleavings of concurrent
//!     spends, no tenant's granted ε ever exceeds its quota, and the ledger's
//!     accounting equals the sum of the grants the clients observed.

use ccdp_core::{ExtensionCache, SolverBackend};
use ccdp_graph::generators;
use ccdp_serve::{
    BudgetLedger, GraphRegistry, ServeConfig, ServeError, ServeRequest, Server, TenantId,
};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

/// 16 clients race one cache key through a barrier: exactly one evaluation.
#[test]
fn sixteen_racing_clients_coalesce_to_one_family_evaluation() {
    let cache = Arc::new(ExtensionCache::new(8));
    let g = generators::caveman(5, 5);
    let grid = [1usize, 2, 4, 8, 16];
    let clients = 16;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let g = g.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache
                    .evaluate_family(&g, &grid, SolverBackend::Combinatorial)
                    .unwrap()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results {
        assert!((r[0].value - results[0][0].value).abs() < 1e-12);
    }
    let stats = cache.stats();
    assert_eq!(
        stats.misses, 1,
        "16 racing clients must share one evaluation: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.coalesced,
        (clients - 1) as u64,
        "all other lookups must be hits or in-flight joins: {stats:?}"
    );
    assert_eq!(stats.entries, 1);
}

/// The same race end-to-end through the server: 16 clients, one graph, one
/// shared cache — exactly one family evaluation per unique key.
#[test]
fn racing_server_requests_share_one_evaluation_per_unique_key() {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("a", generators::caveman(4, 5));
    registry.insert("b", generators::planted_star_forest(12, 3, 4));
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("acme", 1e6).unwrap();
    let server = Arc::new(Server::start(
        ServeConfig::new().with_workers(8).with_queue_capacity(64),
        registry,
        ledger,
    ));
    let clients = 16;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let graph = if i % 2 == 0 { "a" } else { "b" };
                server
                    .submit(ServeRequest::new("acme", graph, 0.1))
                    .unwrap()
                    .wait()
                    .result
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let cache = server.cache_stats();
    assert_eq!(
        cache.misses, 2,
        "two unique keys → two evaluations, all other requests coalesce or hit: {cache:?}"
    );
    assert_eq!(cache.hits + cache.coalesced, (clients - 2) as u64);
    let snap = Arc::try_unwrap(server).unwrap().shutdown();
    assert_eq!(snap.completed, clients as u64);
    assert_eq!(snap.failed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A shared ledger under arbitrary concurrent interleavings never grants
    /// a tenant more than its quota, and its books match what clients saw.
    #[test]
    fn ledger_never_overspends_under_concurrency(
        quota_tenths in 5u64..60,        // quota ε in [0.5, 6.0)
        threads in 2usize..8,
        spends_per_thread in 1usize..12,
        spend_tenths in 1u64..10,        // per-spend ε in [0.1, 1.0)
    ) {
        let quota = quota_tenths as f64 / 10.0;
        let eps = spend_tenths as f64 / 10.0;
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("tenant", quota).unwrap();
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let tenant = TenantId::new("tenant");
                    let mut granted = 0.0f64;
                    let mut grants = 0usize;
                    for _ in 0..spends_per_thread {
                        match ledger.try_spend(&tenant, "stress", eps) {
                            Ok(spent) => {
                                granted += spent;
                                grants += 1;
                            }
                            Err(ServeError::BudgetExhausted { .. }) => {}
                            Err(other) => panic!("unexpected ledger error: {other:?}"),
                        }
                    }
                    (granted, grants)
                })
            })
            .collect();
        let mut total_granted = 0.0f64;
        let mut total_grants = 0usize;
        for h in handles {
            let (granted, grants) = h.join().unwrap();
            total_granted += granted;
            total_grants += grants;
        }
        // The invariant: granted ε never exceeds the quota (beyond the
        // accountant's numerical slack), under ANY interleaving.
        prop_assert!(
            total_granted <= quota + 1e-9,
            "granted {total_granted} ε exceeds quota {quota}"
        );
        let view = ledger.account_view(&TenantId::new("tenant")).unwrap();
        prop_assert!((view.spent_epsilon - total_granted).abs() < 1e-9);
        prop_assert_eq!(view.grants, total_grants);
        // No under-refusal either: refusals only happen once the quota
        // genuinely cannot fund another spend of this size.
        let attempts = (threads * spends_per_thread) as f64;
        if attempts * eps <= quota + 1e-9 {
            prop_assert_eq!(
                total_grants,
                threads * spends_per_thread,
                "nothing should be refused while the quota covers every spend"
            );
        } else {
            prop_assert!(
                view.remaining_epsilon < eps + 1e-9,
                "refusals happened while {} ε remained for {} ε spends",
                view.remaining_epsilon,
                eps
            );
        }
    }

    /// Independent tenants are isolated: hammering one tenant's quota cannot
    /// consume another's.
    #[test]
    fn tenants_are_isolated_under_concurrency(
        threads in 2usize..6,
        spends in 2usize..10,
    ) {
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("hot", 1.0).unwrap();
        ledger.register("cold", 1.0).unwrap();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    let hot = TenantId::new("hot");
                    for _ in 0..spends {
                        let _ = ledger.try_spend(&hot, "x", 0.3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let cold = ledger.account_view(&TenantId::new("cold")).unwrap();
        prop_assert_eq!(cold.grants, 0);
        prop_assert!((cold.remaining_epsilon - 1.0).abs() < 1e-12);
        let hot = ledger.account_view(&TenantId::new("hot")).unwrap();
        prop_assert!(hot.spent_epsilon <= 1.0 + 1e-9);
    }
}
