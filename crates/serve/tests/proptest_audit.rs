//! Audit-journal replay correctness under concurrency.
//!
//! The tentpole invariant of the audit tier: for every tenant, folding the
//! journaled `budget_charge` / `budget_refusal` events MUST reconstruct the
//! live [`BudgetLedger`] accountant **bit-for-bit** — same quota, same spent
//! ε down to the `f64` bit pattern (the replay applies grants in journal
//! order with the same `+=`, and the journal is written under the same
//! per-tenant lock as the accountant, so the orders agree), same charge and
//! refusal counts. Property-tested here under arbitrary concurrent
//! interleavings of racing spends across many tenants, with quotas sized so
//! refusals genuinely happen.

use ccdp_obs::{replay_tenant, AuditJournal, AuditKind};
use ccdp_serve::{BudgetLedger, ServeError, TenantId};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Racing spends + refusals across many tenants always leave a journal
    /// whose per-tenant replay equals the live ledger snapshot exactly.
    #[test]
    fn concurrent_spends_replay_to_the_exact_ledger_state(
        tenants in 1usize..6,
        threads in 2usize..8,
        spends_per_thread in 1usize..14,
        quota_tenths in 3u64..40,        // quota ε in [0.3, 4.0)
        spend_milli in 50u64..900,       // per-spend ε in [0.05, 0.9)
    ) {
        let ledger = Arc::new(BudgetLedger::new());
        let journal = Arc::new(AuditJournal::with_capacity(1 << 12));
        ledger.set_journal(Arc::clone(&journal));
        let names: Vec<String> = (0..tenants).map(|t| format!("tenant-{t}")).collect();
        for name in &names {
            ledger.register(name.as_str(), quota_tenths as f64 / 10.0).unwrap();
        }
        let eps = spend_milli as f64 / 1000.0;

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let ledger = Arc::clone(&ledger);
                let barrier = Arc::clone(&barrier);
                let names = names.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..spends_per_thread {
                        // Every worker walks the tenants at its own offset, so
                        // each tenant sees genuinely racing spends.
                        let tenant = TenantId::new(&names[(worker + i) % names.len()]);
                        let stage = format!("g{}@{}", i % 3, worker);
                        match ledger.try_spend(&tenant, &stage, eps) {
                            Ok(_) | Err(ServeError::BudgetExhausted { .. }) => {}
                            Err(other) => panic!("unexpected ledger error: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Nothing fell off the ring (it comfortably out-sizes the workload);
        // replay equality is only claimable over a complete journal.
        prop_assert_eq!(journal.dropped(), 0);

        // The ledger's own bitwise verifier accepts its journal...
        let verified = ledger.verify_replay(&journal);
        prop_assert_eq!(verified, Ok(tenants));

        // ...and so does an independent per-tenant fold.
        for name in &names {
            let live = ledger.audit_snapshot(&TenantId::new(name)).unwrap();
            let events = journal.events_for_tenant(name);
            let replay = replay_tenant(name, &events);
            prop_assert_eq!(
                replay.quota_epsilon.to_bits(), live.quota_epsilon.to_bits(),
                "{}: replayed quota {} != live {}", name, replay.quota_epsilon, live.quota_epsilon
            );
            prop_assert_eq!(
                replay.spent_epsilon.to_bits(), live.spent_epsilon.to_bits(),
                "{}: replayed spend {} != live {}", name, replay.spent_epsilon, live.spent_epsilon
            );
            prop_assert_eq!(replay.charges, live.charges);
            prop_assert_eq!(replay.refusals, live.refusals);

            // The journal is an ordered history: sequence numbers per tenant
            // are strictly increasing, and every charge was actually funded.
            let mut last_seq = None;
            for event in &events {
                prop_assert!(last_seq.is_none_or(|s| event.seq > s));
                last_seq = Some(event.seq);
                if event.kind == AuditKind::BudgetCharge {
                    prop_assert!(event.epsilon_granted > 0.0);
                }
            }
        }
    }

    /// Attaching the journal mid-flight (after traffic) checkpoints the
    /// existing accounts, so replay equality holds from any attach point.
    #[test]
    fn mid_flight_journal_attach_checkpoints_and_stays_replayable(
        pre_spends in 0usize..8,
        post_spends in 0usize..8,
    ) {
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 3.0).unwrap();
        let acme = TenantId::new("acme");
        for i in 0..pre_spends {
            let _ = ledger.try_spend(&acme, &format!("pre{i}"), 0.4);
        }
        let journal = Arc::new(AuditJournal::with_capacity(256));
        ledger.set_journal(Arc::clone(&journal));
        for i in 0..post_spends {
            let _ = ledger.try_spend(&acme, &format!("post{i}"), 0.4);
        }
        prop_assert_eq!(ledger.verify_replay(&journal), Ok(1));
    }
}
