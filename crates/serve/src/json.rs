//! The one hand-rolled JSON codec of the whole stack.
//!
//! Every byte of JSON this repository emits — [`LoadReport`](crate::LoadReport)
//! summaries, the wire tier's `/stats` and error bodies, the CLI's output —
//! goes through [`JsonWriter`], and every byte it accepts comes back through
//! [`parse`]. One module is the single source of truth for the wire format:
//! escaping rules, number formatting and nesting cannot drift between the
//! load generator, the HTTP listener and the client.
//!
//! The build environment has no registry access (see `crates/compat/`), so
//! this is a deliberate, minimal, dependency-free implementation rather than
//! a serde stand-in: objects, arrays, strings (with `\uXXXX` escapes),
//! finite numbers, booleans and null. Non-finite floats serialize as `null`
//! (JSON has no NaN), and the parser enforces a nesting-depth cap so
//! adversarial input cannot blow the stack.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth [`parse`] accepts before refusing the document.
pub const MAX_PARSE_DEPTH: usize = 32;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only JSON object/array writer.
///
/// The writer tracks comma placement itself, so call sites just emit fields
/// in order:
///
/// ```
/// use ccdp_serve::json::JsonWriter;
///
/// let mut w = JsonWriter::object();
/// w.field_str("tenant", "acme");
/// w.field_u64("requests", 3);
/// w.field_f64("epsilon", 0.5);
/// assert_eq!(w.finish(), r#"{"tenant":"acme","requests":3,"epsilon":0.5}"#);
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    /// Stack of "has this scope already emitted an element" flags; the last
    /// entry is the open scope.
    scopes: Vec<bool>,
    closer: Vec<char>,
}

impl JsonWriter {
    /// A writer with `{` already open; [`finish`](Self::finish) closes it.
    pub fn object() -> Self {
        JsonWriter {
            buf: String::from("{"),
            scopes: vec![false],
            closer: vec!['}'],
        }
    }

    /// A writer with `[` already open; [`finish`](Self::finish) closes it.
    pub fn array() -> Self {
        JsonWriter {
            buf: String::from("["),
            scopes: vec![false],
            closer: vec![']'],
        }
    }

    fn comma(&mut self) {
        if let Some(emitted) = self.scopes.last_mut() {
            if *emitted {
                self.buf.push(',');
            }
            *emitted = true;
        }
    }

    fn key(&mut self, name: &str) {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Emits `"name": "value"` with full string escaping.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Emits `"name": value` for an unsigned integer.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Emits `"name": value` for a float (`null` when non-finite — JSON has
    /// no NaN/Infinity).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        push_f64(&mut self.buf, value);
        self
    }

    /// Emits `"name": value` rounded to `digits` decimal places (the report
    /// format; full precision is rarely wire-worthy).
    pub fn field_f64_rounded(&mut self, name: &str, value: f64, digits: usize) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.digits$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emits `"name": true|false`.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Opens a nested object under `name`; close with
    /// [`end`](Self::end).
    pub fn begin_object(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push('{');
        self.scopes.push(false);
        self.closer.push('}');
        self
    }

    /// Opens a nested array under `name`; close with [`end`](Self::end).
    pub fn begin_array(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        self.scopes.push(false);
        self.closer.push(']');
        self
    }

    /// Appends one string element to the open array.
    pub fn element_str(&mut self, value: &str) -> &mut Self {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends one float element to the open array.
    pub fn element_f64(&mut self, value: f64) -> &mut Self {
        self.comma();
        push_f64(&mut self.buf, value);
        self
    }

    /// Opens an object element inside the open array.
    pub fn begin_element_object(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.scopes.push(false);
        self.closer.push('}');
        self
    }

    /// Closes the innermost open object/array (not the root; the root closes
    /// in [`finish`](Self::finish)).
    pub fn end(&mut self) -> &mut Self {
        if self.scopes.len() > 1 {
            self.scopes.pop();
            let c = self.closer.pop().expect("closer stack tracks scopes");
            self.buf.push(c);
        }
        self
    }

    /// Closes every open scope and returns the document.
    pub fn finish(mut self) -> String {
        while let Some(c) = self.closer.pop() {
            self.buf.push(c);
        }
        self.buf
    }
}

fn push_f64(buf: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(buf, "{value}");
    } else {
        buf.push_str("null");
    }
}

/// Appends `s` to `out` with JSON string escaping (`"`, `\`, control
/// characters as `\uXXXX`, and the common short escapes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One top-level convenience: `{"error": {"code": ..., "message": ...}}` —
/// the error-body shape shared by the wire tier and the CLI.
pub fn error_body(code: &str, message: &str) -> String {
    let mut w = JsonWriter::object();
    w.begin_object("error");
    w.field_str("code", code);
    w.field_str("message", message);
    w.end();
    w.finish()
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (the minimal model the wire tier needs).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. A `BTreeMap` keeps key order deterministic; duplicate keys
    /// keep the last occurrence (the common lenient behavior).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number that
    /// fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => push_f64(out, *n),
            JsonValue::String(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, key);
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes back to compact JSON (object keys in `BTreeMap` order, so the
/// output is deterministic; non-finite numbers render as `null`, matching
/// [`JsonWriter`]).
impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render_into(&mut out);
        f.write_str(&out)
    }
}

/// Why a document failed to parse. The offset is a byte position into the
/// input, good enough to point an operator at the problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are refused rather than paired: the
                            // writer never emits them, so accepting lone
                            // halves would only launder invalid input.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 3; // the +1 below completes the 4
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and punctuation are ASCII");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_nested_documents() {
        let mut w = JsonWriter::object();
        w.field_str("name", "a \"quoted\"\nline");
        w.field_u64("count", 7);
        w.field_f64("nan", f64::NAN);
        w.begin_object("inner");
        w.field_bool("ok", true);
        w.end();
        w.begin_array("xs");
        w.element_f64(1.5).element_str("two");
        w.end();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\"\nline"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
        assert_eq!(
            v.get("inner").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            v.get("xs"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.5),
                JsonValue::String("two".into())
            ]))
        );
    }

    #[test]
    fn finish_closes_unbalanced_scopes() {
        let mut w = JsonWriter::object();
        w.begin_object("a");
        w.begin_array("b");
        w.element_f64(1.0);
        let text = w.finish();
        assert!(parse(&text).is_ok(), "{text}");
    }

    #[test]
    fn error_body_shape_is_stable() {
        let body = error_body("queue_full", "request queue full (capacity 8)");
        let v = parse(&body).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").unwrap().as_str(), Some("queue_full"));
        assert!(e.get("message").unwrap().as_str().unwrap().contains('8'));
    }

    #[test]
    fn parser_round_trips_escapes_and_numbers() {
        let v = parse(r#"{"s":"\u0041\n\"","n":-1.5e2,"b":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("A\n\""));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
        assert_eq!(
            v.get("b"),
            Some(&JsonValue::Array(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ]))
        );
    }

    #[test]
    fn parser_refuses_malformed_documents_with_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "01x",
            "{} trailing",
            "\"\\u12\"",
            "\"\\ud800\"", // lone surrogate
            "nan",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "must refuse {bad:?}");
        }
        // Depth bomb: refused, not a stack overflow.
        let bomb = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn parser_accepts_unicode_and_whitespace() {
        let v = parse(" { \"k\" : \"héllo ☂\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo ☂"));
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
