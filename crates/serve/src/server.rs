//! The serving core: a fixed worker pool over a bounded request queue.
//!
//! [`Server::start`] spins up `workers` OS threads that pull
//! [`ServeRequest`]s from one bounded `mpsc` channel. Submission is
//! non-blocking: a full queue is a typed [`ServeError::QueueFull`] refusal
//! (backpressure the caller can act on), never a silent block. Each request
//! flows through the same pipeline:
//!
//! 1. resolve the graph in the shared [`GraphRegistry`],
//! 2. atomically reserve the request's ε against the tenant's
//!    [`BudgetLedger`] account (typed refusal if the quota can't fund it),
//! 3. run the private estimator with the server's shared
//!    [`ExtensionCache`] — concurrent requests for the same graph coalesce
//!    into one family evaluation via the cache's single-flight table,
//! 4. answer the caller through a per-request response channel.
//!
//! Shutdown is graceful: [`Server::shutdown`] closes the queue, lets the
//! workers drain every accepted request, and joins them.
//!
//! Randomness is deterministic per request: worker threads derive a
//! [`StdRng`] from the server seed and the request id, so a seeded server
//! replays identical releases for an identical request schedule regardless
//! of thread interleaving.

use crate::error::ServeError;
use crate::ledger::{BudgetLedger, TenantId};
use crate::registry::{GraphId, GraphRegistry};
use crate::stats::{RequestOutcome, ServeStats, StatsSnapshot};
use ccdp_core::SolverBackend;
use ccdp_core::{
    CacheStats, Estimator, EstimatorConfig, ExtensionCache, PrivateCcEstimator, Release,
};
use ccdp_exec::PhaseProfiler;
use ccdp_graph::GraphVersion;
use ccdp_obs::{
    AuditEvent, AuditJournal, AuditKind, Counter, MetricsRegistry, SloAlert, SloEngine,
    SloObservation, SloStatus, SpanKind, TraceCtx, TraceId, TraceIdGen, Tracer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Server`] (non-panicking builder; values are clamped
/// to sane minimums at start).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    solver: SolverBackend,
    seed: u64,
    delta_max: Option<usize>,
    estimator_threads: Option<usize>,
    estimator_micro: bool,
    estimator_dedup: bool,
    tracing: bool,
    audit: bool,
}

impl ServeConfig {
    /// Defaults: 4 workers, queue capacity 256, default cache capacity,
    /// default solver backend, seed 0.
    pub fn new() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: ccdp_core::cache::DEFAULT_FAMILY_CACHE_CAPACITY,
            solver: SolverBackend::default(),
            seed: 0,
            delta_max: None,
            estimator_threads: None,
            estimator_micro: true,
            estimator_dedup: true,
            tracing: false,
            audit: true,
        }
    }

    /// Enables request-scoped tracing (default off). Off, every would-be
    /// span emission costs exactly one branch; on, requests get a minted
    /// [`TraceId`] and their span events land in the server's [`Tracer`]
    /// ring for `GET /trace/{id}` / `ccdp trace` assembly.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Whether request-scoped tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enables or disables the privacy-budget audit journal (default on).
    /// Off, every would-be event emission costs exactly one branch; on,
    /// every budget decision (charge, refusal, registration, publish,
    /// drain) lands as a typed [`AuditEvent`] in the server's
    /// [`AuditJournal`] ring for `GET /audit/{tenant}` / `ccdp audit`
    /// assembly and bit-for-bit ledger replay.
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Whether the audit journal is enabled.
    pub fn audit(&self) -> bool {
        self.audit
    }

    /// Number of worker threads (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounded queue capacity (clamped to ≥ 1); beyond it submissions get
    /// [`ServeError::QueueFull`].
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Capacity of the shared extension-family cache.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Forest-polytope solver backend used by every request.
    pub fn with_solver(mut self, solver: SolverBackend) -> Self {
        self.solver = solver;
        self
    }

    /// Base seed of the per-request RNG derivation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Δmax override forwarded to every estimator (see
    /// [`EstimatorConfig::with_delta_max`]).
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        self.delta_max = Some(delta_max);
        self
    }

    /// Per-request estimator thread budget forwarded to
    /// [`EstimatorConfig::with_threads`]. Unset keeps the estimator's own
    /// default (machine parallelism); serving fleets that already saturate
    /// their cores with request workers typically pin this to 1. Released
    /// values are identical for every budget, so this is purely a
    /// scheduling knob.
    pub fn with_estimator_threads(mut self, threads: usize) -> Self {
        self.estimator_threads = Some(threads.max(1));
        self
    }

    /// Enables or disables the micro-component closed-form solver forwarded
    /// to [`EstimatorConfig::with_micro_solver`]. On by default; released
    /// values are identical either way, so this exists for A/B timing and
    /// fallback drills.
    pub fn with_estimator_micro(mut self, micro: bool) -> Self {
        self.estimator_micro = micro;
        self
    }

    /// Enables or disables isomorphism-class solve dedup forwarded to
    /// [`EstimatorConfig::with_solve_dedup`]. On by default; value-neutral
    /// like the micro toggle.
    pub fn with_estimator_dedup(mut self, dedup: bool) -> Self {
        self.estimator_dedup = dedup;
        self
    }

    /// The configured worker count (after clamping).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The configured queue capacity (after clamping).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity.max(1)
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One request for a private connected-components release.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// The tenant whose budget funds the release.
    pub tenant: TenantId,
    /// The catalog graph to estimate on.
    pub graph: GraphId,
    /// The snapshot version to serve from: a pinned version, or `None` for
    /// the latest at execution time.
    pub version: Option<GraphVersion>,
    /// The ε of this release (spent from the tenant's quota).
    pub epsilon: f64,
    /// The request's trace id: pre-minted by a boundary (the net tier mints
    /// before submission so even refusals carry an id), or `None` to let
    /// [`Server::submit`] mint one when tracing is on.
    pub trace: Option<TraceId>,
}

impl ServeRequest {
    /// Convenience constructor (serves the latest snapshot).
    pub fn new(tenant: impl Into<TenantId>, graph: impl Into<GraphId>, epsilon: f64) -> Self {
        ServeRequest {
            tenant: tenant.into(),
            graph: graph.into(),
            version: None,
            epsilon,
            trace: None,
        }
    }

    /// Pins the request to an exact snapshot version; resolution fails with
    /// [`ServeError::UnknownVersion`] rather than silently serving another
    /// version.
    pub fn at_version(mut self, version: GraphVersion) -> Self {
        self.version = Some(version);
        self
    }

    /// Attaches a pre-minted trace id (see [`Server::mint_trace`]).
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// The server's answer to one request.
#[derive(Debug)]
pub struct ServeResponse {
    /// Server-assigned id (submission order).
    pub request_id: u64,
    /// The request this answers.
    pub request: ServeRequest,
    /// The snapshot version the release was served from. `None` whenever no
    /// release was produced — including failures (budget refusals, estimator
    /// errors) that happened *after* a snapshot had been resolved.
    pub version: Option<GraphVersion>,
    /// The release, or the typed refusal/failure.
    pub result: Result<Release, ServeError>,
    /// End-to-end latency (accepted → answered), including queue time.
    pub latency: Duration,
    /// The request's trace id, when tracing was on.
    pub trace: Option<TraceId>,
}

/// A handle to a response that has not necessarily been produced yet.
#[derive(Debug)]
pub struct PendingResponse {
    request_id: u64,
    rx: Receiver<ServeResponse>,
}

impl PendingResponse {
    /// The server-assigned request id.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResponse {
        self.rx
            .recv()
            .expect("worker pool dropped a request without answering")
    }

    /// Blocks up to `timeout`; `Err(self)` if the response is still pending.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResponse, PendingResponse> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => Ok(resp),
            Err(_) => Err(self),
        }
    }
}

/// One queued unit of work.
struct Job {
    request_id: u64,
    request: ServeRequest,
    accepted: Instant,
    reply: SyncSender<ServeResponse>,
}

/// The state every worker shares: catalog, ledger, cache, stats, config and
/// the observability tier (one bundle so the loop signature stays legible).
struct WorkerShared {
    registry: Arc<GraphRegistry>,
    ledger: Arc<BudgetLedger>,
    cache: Arc<ExtensionCache>,
    stats: Arc<ServeStats>,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    slo: Arc<SloEngine>,
}

/// A multi-tenant serving instance: shared graph catalog, shared budget
/// ledger, shared family cache, fixed worker pool.
pub struct Server {
    registry: Arc<GraphRegistry>,
    ledger: Arc<BudgetLedger>,
    cache: Arc<ExtensionCache>,
    stats: Arc<ServeStats>,
    config: ServeConfig,
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    next_request_id: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    trace_ids: TraceIdGen,
    journal: Arc<AuditJournal>,
    slo: Arc<SloEngine>,
    trace_dropped: Counter,
    audit_dropped: Counter,
}

impl Server {
    /// Starts the worker pool over the given catalog and ledger.
    pub fn start(
        config: ServeConfig,
        registry: Arc<GraphRegistry>,
        ledger: Arc<BudgetLedger>,
    ) -> Self {
        // One registry per server: every telemetry island registers into it,
        // so a single scrape covers serve, cache, budget and phase series.
        let metrics = Arc::new(MetricsRegistry::new());
        let cache = Arc::new(ExtensionCache::with_metrics(
            config.cache_capacity.max(1),
            &metrics,
        ));
        let stats = Arc::new(ServeStats::with_metrics(&metrics));
        ledger.publish_metrics_shared(&metrics);
        let tracer = Arc::new(Tracer::new());
        tracer.set_enabled(config.tracing);
        // The audit journal is shared by every decision point: the ledger
        // (charges/refusals), the registry (publishes), the scheduler
        // (fires/invalidations, via its server handle) and the SLO engine
        // (alerts). One ring means one totally-ordered sequence.
        let journal = Arc::new(AuditJournal::new());
        journal.set_enabled(config.audit);
        ledger.set_journal(Arc::clone(&journal));
        registry.set_journal(Arc::clone(&journal));
        let slo = Arc::new(SloEngine::new());
        slo.set_journal(Arc::clone(&journal));
        for account in ledger.snapshot() {
            slo.set_quota(account.tenant.as_str(), account.quota_epsilon);
        }
        // Ring-drop accounting is pull-based (the rings only know their own
        // head), surfaced as counters refreshed on every metrics render.
        let trace_dropped = metrics.counter("ccdp_obs_trace_dropped_total");
        let audit_dropped = metrics.counter("ccdp_obs_audit_dropped_total");
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity());
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(WorkerShared {
            registry: Arc::clone(&registry),
            ledger: Arc::clone(&ledger),
            cache: Arc::clone(&cache),
            stats: Arc::clone(&stats),
            config: config.clone(),
            metrics: Arc::clone(&metrics),
            tracer: Arc::clone(&tracer),
            slo: Arc::clone(&slo),
        });
        let workers = (0..config.workers())
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();
        let trace_ids = TraceIdGen::new(config.seed);
        Server {
            registry,
            ledger,
            cache,
            stats,
            config,
            queue: Some(tx),
            workers,
            next_request_id: AtomicU64::new(0),
            metrics,
            tracer,
            trace_ids,
            journal,
            slo,
            trace_dropped,
            audit_dropped,
        }
    }

    /// The server's unified metrics registry (the `GET /metrics` source).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The server's span ring (the `GET /trace/{id}` / `ccdp top` source).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The server's audit journal (the `GET /audit/{tenant}` / `ccdp audit`
    /// source). Toggle at runtime with
    /// [`AuditJournal::set_enabled`]; attach a JSONL file sink with
    /// [`AuditJournal::set_sink_path`].
    pub fn journal(&self) -> &Arc<AuditJournal> {
        &self.journal
    }

    /// The server's per-tenant SLO engine (the `GET /slo` / `ccdp slo`
    /// source). Add objectives with [`SloEngine::add_spec`]; the worker
    /// pool feeds it one observation per finished request.
    pub fn slo(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// Evaluates every SLO spec against every tenant *now*, returning the
    /// alerts that newly fired (each also recorded into the audit
    /// journal). Tenant ε quotas are synced from the ledger first so
    /// burn-rate objectives see late registrations.
    pub fn evaluate_slos(&self) -> Vec<SloAlert> {
        self.sync_slo_quotas();
        self.slo.evaluate_at(unix_micros())
    }

    /// The current health of every `(spec, tenant)` pair — breached or not
    /// — without mutating alert state.
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        self.sync_slo_quotas();
        self.slo.statuses_at(unix_micros())
    }

    fn sync_slo_quotas(&self) {
        for account in self.ledger.snapshot() {
            self.slo
                .set_quota(account.tenant.as_str(), account.quota_epsilon);
        }
    }

    /// Folds the observability rings' drop counts into their exported
    /// counters (`ccdp_obs_trace_dropped_total`,
    /// `ccdp_obs_audit_dropped_total`). Counters are monotone, so the fold
    /// is a delta-add against the last exported value.
    pub fn refresh_drop_counters(&self) {
        let dropped = self.tracer.dropped();
        let exported = self.trace_dropped.get();
        if dropped > exported {
            self.trace_dropped.add(dropped - exported);
        }
        let dropped = self.journal.dropped();
        let exported = self.audit_dropped.get();
        if dropped > exported {
            self.audit_dropped.add(dropped - exported);
        }
    }

    /// Renders the Prometheus text exposition with ring-drop counters
    /// refreshed first — the one call every scrape path (net tier, CLI)
    /// should use instead of rendering the registry directly.
    pub fn render_metrics(&self) -> String {
        self.refresh_drop_counters();
        self.metrics.render_prometheus()
    }

    /// Mints the next trace id from the server's deterministic generator.
    /// Boundaries (the net tier) mint *before* submission so refusals carry
    /// an id too; [`Server::submit`] mints automatically otherwise.
    pub fn mint_trace(&self) -> TraceId {
        self.trace_ids.mint()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (typed backpressure — nothing was enqueued) and
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, mut request: ServeRequest) -> Result<PendingResponse, ServeError> {
        if !(request.epsilon.is_finite() && request.epsilon > 0.0) {
            // Reject malformed requests before they consume queue space (and
            // long before the budget accountant could panic on them).
            return Err(ServeError::InvalidEpsilon {
                value: request.epsilon,
            });
        }
        // Tracing on and no boundary-minted id yet: mint here, so direct
        // submitters (tests, the release scheduler) get traced for free.
        if request.trace.is_none() && self.tracer.enabled() {
            request.trace = Some(self.trace_ids.mint());
        }
        // Emit boundary events straight through the tracer: a TraceCtx here
        // would clone the tracer Arc per submission, and its refcount line
        // bounces between the submitting core and the workers.
        let trace = request.trace;
        let queue = self.queue.as_ref().ok_or(ServeError::ShuttingDown)?;
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            request_id,
            request,
            accepted: Instant::now(),
            reply: reply_tx,
        };
        match queue.try_send(job) {
            Ok(()) => {
                // Counted only after acceptance, so rejected submissions can
                // never inflate the depth gauge or its peak; the gauge is
                // signed because a worker may record the matching dequeue
                // first.
                let depth = self.stats.on_enqueue();
                if let Some(id) = trace {
                    self.tracer
                        .emit(id, SpanKind::Queued, Duration::ZERO, depth.max(0) as u64);
                }
                Ok(PendingResponse {
                    request_id,
                    rx: reply_rx,
                })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.on_queue_full();
                if let Some(id) = trace {
                    self.tracer
                        .emit(id, SpanKind::QueueRefused, Duration::ZERO, 0);
                }
                Err(ServeError::QueueFull {
                    capacity: self.config.queue_capacity(),
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// The shared graph catalog.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.registry
    }

    /// The shared budget ledger.
    pub fn ledger(&self) -> &Arc<BudgetLedger> {
        &self.ledger
    }

    /// The shared extension-family cache itself (for co-located engines —
    /// e.g. a release scheduler invalidating superseded versions of what the
    /// worker pool computed). Counters only: see
    /// [`cache_stats`](Server::cache_stats).
    pub fn cache(&self) -> &Arc<ExtensionCache> {
        &self.cache
    }

    /// Whether the worker pool is still accepting submissions (readiness:
    /// `false` once shutdown has begun).
    pub fn is_accepting(&self) -> bool {
        self.queue.is_some()
    }

    /// The server's configuration (as clamped at start).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared extension-family cache (hit/miss/coalesce counters).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Live metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Closes the queue, drains every accepted request and joins the
    /// workers. Returns the final metrics snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        if self.queue.is_some() {
            // One Drain event marks the boundary: every event after it in
            // the journal belongs to the drain, none to new admissions.
            self.journal.record(
                AuditEvent::new(AuditKind::Drain)
                    .detail("queue closed; draining accepted requests"),
            );
        }
        // Dropping the sender closes the channel; workers finish what was
        // accepted, then their `recv` errors out and they exit.
        self.queue = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("graphs", &self.registry.len())
            .field("tenants", &self.ledger.tenants().len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

/// Wall-clock micros since the UNIX epoch (the audit/SLO time base).
fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Pulls jobs until the queue closes. The mutex is held only for the `recv`
/// itself, so workers hand off jobs one at a time but process in parallel.
fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &WorkerShared) {
    // Phase-name → interned span-name id, cached per worker: the same few
    // phase names repeat every request, and skipping the tracer's interner
    // lock keeps the traced hot path within its overhead budget.
    let mut phase_name_ids: std::collections::HashMap<String, u32> =
        std::collections::HashMap::new();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let job = match job {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained: graceful exit
        };
        shared.stats.on_dequeue();
        // The worker emits through `shared.tracer` directly and materializes
        // a TraceCtx only to hand the estimator config an owned handle: every
        // tracer-Arc clone is a refcount bump on a line every worker shares.
        let trace_id = job.request.trace;
        if let Some(id) = trace_id {
            shared
                .tracer
                .emit(id, SpanKind::Dequeued, job.accepted.elapsed(), 0);
        }
        // Every request gets a fresh profiler: its per-phase wall clock is
        // published into the registry afterwards (fresh-then-publish keeps
        // the `ccdp_exec_phase_*` series monotone) and, when traced, its
        // phases become `phase/*` spans of this trace.
        let profiler = Arc::new(PhaseProfiler::new());
        let handle_started = Instant::now();
        // Contain panics: a pathological request must cost its caller a typed
        // error, never a worker (a shrinking pool would be a silent brownout).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let trace = trace_id.map(|id| TraceCtx::new(id, Arc::clone(&shared.tracer)));
            handle_request(&job, shared, trace, Arc::clone(&profiler))
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(ServeError::Estimator(ccdp_core::CcdpError::Algorithm(
                ccdp_core::CoreError::InvalidParameter(msg),
            )))
        });
        let handle_time = handle_started.elapsed();
        profiler.publish(&shared.metrics);
        if let Some(id) = trace_id {
            // No-alloc walk: cloning and sorting the report per request is
            // measurable against the 5% tracing budget.
            profiler.visit(|name, seconds, _invocations, _count| {
                let name_id = match phase_name_ids.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = shared.tracer.intern_name(name);
                        phase_name_ids.insert(name.to_string(), id);
                        id
                    }
                };
                shared
                    .tracer
                    .emit_phase_id(id, name_id, Duration::from_secs_f64(seconds));
            });
            let kind = match &result {
                Ok(_) => SpanKind::Release,
                // The budget refusal span was already emitted at the ledger;
                // the trace still terminates with a typed failure marker so
                // `slowest`/assembly see a finished trace.
                Err(_) => SpanKind::Failed,
            };
            shared.tracer.emit(id, kind, handle_time, 0);
        }
        let outcome = match &result {
            Ok(_) => RequestOutcome::Completed,
            Err(ServeError::BudgetExhausted { .. }) => RequestOutcome::BudgetRefused,
            Err(_) => RequestOutcome::Failed,
        };
        let latency = job.accepted.elapsed();
        shared.stats.on_done(latency, outcome);
        // Feed the SLO engine one observation per finished request. A
        // budget refusal is the service working as designed — it counts as
        // an availability success, and only its latency is recorded. ε is
        // observed whenever the charge went through, which includes
        // estimator failures after the reservation (spent budget is never
        // refunded, so the burn-rate window must see it too).
        let now = unix_micros();
        let tenant = job.request.tenant.as_str();
        let latency_micros = latency.as_micros() as u64;
        match &result {
            Ok(_) => {
                shared
                    .slo
                    .observe_at(tenant, now, SloObservation::Success { latency_micros });
                shared.slo.observe_at(
                    tenant,
                    now,
                    SloObservation::BudgetSpend {
                        epsilon: job.request.epsilon,
                    },
                );
            }
            Err(ServeError::BudgetExhausted { .. }) => {
                shared
                    .slo
                    .observe_at(tenant, now, SloObservation::Success { latency_micros });
            }
            Err(err) => {
                shared
                    .slo
                    .observe_at(tenant, now, SloObservation::Failure { latency_micros });
                if matches!(err, ServeError::Estimator(_)) {
                    shared.slo.observe_at(
                        tenant,
                        now,
                        SloObservation::BudgetSpend {
                            epsilon: job.request.epsilon,
                        },
                    );
                }
            }
        }
        let version = result.as_ref().ok().map(|(_, v)| *v);
        // A dropped PendingResponse just means nobody is listening; the
        // request was still served and accounted.
        let _ = job.reply.try_send(ServeResponse {
            request_id: job.request_id,
            trace: job.request.trace,
            request: job.request,
            version,
            result: result.map(|(release, _)| release),
            latency,
        });
    }
}

/// The per-request pipeline: resolve snapshot → reserve budget → estimate.
fn handle_request(
    job: &Job,
    shared: &WorkerShared,
    trace: Option<TraceCtx>,
    profiler: Arc<PhaseProfiler>,
) -> Result<(Release, GraphVersion), ServeError> {
    let registry = &shared.registry;
    let ledger = &shared.ledger;
    let config = &shared.config;
    // A pinned version resolves exactly or fails typed; an unpinned request
    // binds to the latest snapshot *now*, and the bound version is what the
    // cache is tagged with and what the response reports.
    let (version, graph) = match job.request.version {
        Some(v) => (v, registry.resolve_version(&job.request.graph, v)?),
        None => registry.resolve_latest(&job.request.graph)?,
    };
    // Reserve the whole request ε atomically *before* any computation: a
    // refused request consumes neither budget nor solver time. Spent budget
    // is never refunded on estimator failure — conservative accounting that
    // can only over-count, never under-count, a tenant's exposure. The stage
    // name is the graph id (borrowed, not formatted — this is the hot path),
    // so the tenant ledger records which graph each grant funded.
    let spend = ledger.try_spend_traced(
        &job.request.tenant,
        job.request.graph.as_str(),
        job.request.epsilon,
        job.request.trace,
    );
    if let Some(ctx) = &trace {
        let kind = match &spend {
            Ok(_) => SpanKind::BudgetCharge,
            Err(ServeError::BudgetExhausted { .. }) => SpanKind::BudgetRefusal,
            Err(_) => SpanKind::BudgetRefusal, // unknown tenant / bad ε
        };
        ctx.event_full(kind, Duration::ZERO, job.request.epsilon.to_bits());
    }
    spend?;
    let mut est_config = EstimatorConfig::new(job.request.epsilon)
        .with_solver(config.solver)
        .with_shared_family_cache(Arc::clone(&shared.cache))
        .with_graph_tag(job.request.graph.as_str(), version)
        .with_profiler(profiler);
    if let Some(ctx) = trace {
        est_config = est_config.with_trace(ctx);
    }
    if let Some(delta_max) = config.delta_max {
        est_config = est_config.with_delta_max(delta_max);
    }
    if let Some(threads) = config.estimator_threads {
        est_config = est_config.with_threads(threads);
    }
    est_config = est_config
        .with_micro_solver(config.estimator_micro)
        .with_solve_dedup(config.estimator_dedup);
    let estimator =
        PrivateCcEstimator::from_config(est_config).map_err(|e| ServeError::Estimator(e.into()))?;
    // Deterministic per-request stream: the same (seed, request id) pair
    // draws the same noise whichever worker runs it.
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(job.request_id),
    );
    let release = Estimator::estimate(&estimator, &graph, &mut rng)?;
    Ok((release, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    fn fleet() -> (Arc<GraphRegistry>, Arc<BudgetLedger>) {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("stars", generators::planted_star_forest(10, 2, 3));
        registry.insert("path", generators::path(12));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 10.0).unwrap();
        (registry, ledger)
    }

    #[test]
    fn serves_a_release_end_to_end() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(2), registry, ledger);
        let pending = server
            .submit(ServeRequest::new("acme", "stars", 1.0))
            .unwrap();
        let response = pending.wait();
        let release = response.result.unwrap();
        assert!(release.value().is_finite());
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn unknown_graph_and_tenant_are_typed_failures() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(1), registry, ledger);
        let r = server
            .submit(ServeRequest::new("acme", "nope", 1.0))
            .unwrap()
            .wait();
        assert!(matches!(r.result, Err(ServeError::UnknownGraph { .. })));
        let r = server
            .submit(ServeRequest::new("ghost", "stars", 1.0))
            .unwrap()
            .wait();
        assert!(matches!(r.result, Err(ServeError::UnknownTenant { .. })));
        let snap = server.shutdown();
        assert_eq!(snap.failed, 2);
    }

    #[test]
    fn budget_exhaustion_is_refused_not_served() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(1),
            registry,
            Arc::clone(&ledger),
        );
        let ok = server
            .submit(ServeRequest::new("acme", "path", 8.0))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        let refused = server
            .submit(ServeRequest::new("acme", "path", 8.0))
            .unwrap()
            .wait();
        assert!(matches!(
            refused.result,
            Err(ServeError::BudgetExhausted { .. })
        ));
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.budget_refusals, 1);
        // The refused request spent nothing.
        let view = ledger.account_view(&TenantId::new("acme")).unwrap();
        assert!((view.spent_epsilon - 8.0).abs() < 1e-9);
    }

    #[test]
    fn full_queue_is_typed_backpressure() {
        let registry = Arc::new(GraphRegistry::new());
        // A big enough graph that one request occupies the lone worker for a
        // moment, letting the queue fill behind it.
        registry.insert("g", generators::caveman(6, 6));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 1e6).unwrap();
        let server = Server::start(
            ServeConfig::new().with_workers(1).with_queue_capacity(1),
            registry,
            ledger,
        );
        let mut pending = Vec::new();
        let mut saw_queue_full = false;
        for _ in 0..50 {
            match server.submit(ServeRequest::new("acme", "g", 0.1)) {
                Ok(p) => pending.push(p),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_queue_full = true;
                }
                Err(other) => panic!("unexpected submit error: {other:?}"),
            }
        }
        assert!(saw_queue_full, "queue of capacity 1 never reported full");
        for p in pending {
            assert!(p.wait().result.is_ok());
        }
        let snap = server.shutdown();
        assert!(snap.rejected_queue_full > 0);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(2).with_queue_capacity(64),
            registry,
            ledger,
        );
        let pending: Vec<_> = (0..16)
            .map(|_| {
                server
                    .submit(ServeRequest::new("acme", "path", 0.05))
                    .unwrap()
            })
            .collect();
        let snap = server.shutdown();
        assert_eq!(snap.completed, 16, "graceful shutdown must drain the queue");
        for p in pending {
            assert!(p.wait().result.is_ok());
        }
    }

    #[test]
    fn malformed_epsilon_is_refused_at_submission() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(1), registry, ledger);
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    server.submit(ServeRequest::new("acme", "path", bad)),
                    Err(ServeError::InvalidEpsilon { .. })
                ),
                "epsilon {bad} must be refused"
            );
        }
        // The refusals consumed no queue slots, workers or budget, and the
        // pool still serves.
        let ok = server
            .submit(ServeRequest::new("acme", "path", 0.5))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        let snap = server.shutdown();
        assert_eq!((snap.received, snap.completed, snap.failed), (1, 1, 0));
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let (registry, ledger) = fleet();
        let mut server = Server::start(ServeConfig::new(), registry, ledger);
        server.shutdown_in_place();
        assert!(matches!(
            server.submit(ServeRequest::new("acme", "path", 0.1)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn version_pinned_requests_serve_the_pinned_snapshot() {
        let (registry, ledger) = fleet();
        // Publish a second version of "path" with a different vertex count.
        registry.insert("path", generators::path(30));
        let server = Server::start(ServeConfig::new().with_workers(2), registry, ledger);
        // Unpinned binds to the latest; pinned resolves each exact version.
        let latest = server
            .submit(ServeRequest::new("acme", "path", 0.5))
            .unwrap()
            .wait();
        assert_eq!(latest.version, Some(GraphVersion::new(1)));
        assert!(latest.result.is_ok());
        let pinned = server
            .submit(ServeRequest::new("acme", "path", 0.5).at_version(GraphVersion::INITIAL))
            .unwrap()
            .wait();
        assert_eq!(pinned.version, Some(GraphVersion::INITIAL));
        assert!(pinned.result.is_ok());
        // A pinned miss is a typed UnknownVersion, not a silent fallback, and
        // resolution failures report no served version.
        let missing = server
            .submit(ServeRequest::new("acme", "path", 0.5).at_version(GraphVersion::new(9)))
            .unwrap()
            .wait();
        assert!(matches!(
            missing.result,
            Err(ServeError::UnknownVersion { .. })
        ));
        assert_eq!(missing.version, None);
        // The two served versions used distinct cache slots: two misses,
        // never a cross-version replay.
        let cache = server.cache_stats();
        assert_eq!(cache.misses, 2, "{cache:?}");
        server.shutdown();
    }

    #[test]
    fn identical_seeded_runs_release_identical_values() {
        let run = || {
            let (registry, ledger) = fleet();
            let server = Server::start(
                ServeConfig::new().with_workers(3).with_seed(7),
                registry,
                ledger,
            );
            let pending: Vec<_> = (0..8)
                .map(|i| {
                    let graph = if i % 2 == 0 { "stars" } else { "path" };
                    server
                        .submit(ServeRequest::new("acme", graph, 0.5))
                        .unwrap()
                })
                .collect();
            let mut values: Vec<(u64, f64)> = pending
                .into_iter()
                .map(|p| {
                    let r = p.wait();
                    (r.request_id, r.result.unwrap().value())
                })
                .collect();
            values.sort_by_key(|&(id, _)| id);
            values
        };
        assert_eq!(
            run(),
            run(),
            "per-request seeding must make runs replayable"
        );
    }

    #[test]
    fn tracing_off_records_nothing_and_mints_no_ids() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(1), registry, ledger);
        let response = server
            .submit(ServeRequest::new("acme", "stars", 0.5))
            .unwrap()
            .wait();
        assert!(response.result.is_ok());
        assert_eq!(response.trace, None);
        assert_eq!(server.tracer().recorded(), 0);
        server.shutdown();
    }

    #[test]
    fn traced_requests_assemble_a_full_span_tree() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new()
                .with_workers(1)
                .with_seed(5)
                .with_tracing(true),
            registry,
            ledger,
        );
        let response = server
            .submit(ServeRequest::new("acme", "stars", 0.5))
            .unwrap()
            .wait();
        assert!(response.result.is_ok());
        let id = response.trace.expect("tracing on must mint an id");
        let tree = server.tracer().assemble(id).expect("trace must assemble");
        let names = tree.span_names();
        for expected in [
            "queued",
            "dequeued",
            "budget/charge",
            "cache/miss",
            "noise/draw",
            "release",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected}: {names:?}"
            );
        }
        // Solver phases from the per-request profiler ride along: the small
        // graph takes the direct family route plus the two release phases.
        for expected in [
            "phase/family/direct",
            "phase/release/true-value",
            "phase/release/mechanisms",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected}: {names:?}"
            );
        }
        // A budget refusal still produces a finished trace (the 403 path).
        let t = TenantId::new("acme");
        let view = server.ledger().account_view(&t).unwrap();
        let refused = server
            .submit(ServeRequest::new(
                "acme",
                "stars",
                view.remaining_epsilon + 1.0,
            ))
            .unwrap()
            .wait();
        assert!(matches!(
            refused.result,
            Err(ServeError::BudgetExhausted { .. })
        ));
        let refused_tree = server
            .tracer()
            .assemble(refused.trace.unwrap())
            .expect("refusal trace must assemble");
        let refused_names = refused_tree.span_names();
        for expected in ["queued", "dequeued", "budget/refusal", "failed"] {
            assert!(
                refused_names.iter().any(|n| n == expected),
                "missing {expected}: {refused_names:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn metrics_registry_agrees_with_the_island_snapshots() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(2),
            registry,
            Arc::clone(&ledger),
        );
        let pending: Vec<_> = (0..6)
            .map(|_| {
                server
                    .submit(ServeRequest::new("acme", "stars", 0.25))
                    .unwrap()
            })
            .collect();
        for p in pending {
            assert!(p.wait().result.is_ok());
        }
        let snap = server.metrics().snapshot();
        let stats = server.stats();
        let cache = server.cache_stats();
        assert_eq!(
            snap.value("ccdp_serve_requests_total"),
            Some(stats.received as f64)
        );
        assert_eq!(
            snap.value("ccdp_serve_completed_total"),
            Some(stats.completed as f64)
        );
        assert_eq!(
            snap.value("ccdp_core_cache_hits_total").unwrap()
                + snap.value("ccdp_core_cache_coalesced_total").unwrap(),
            (cache.hits + cache.coalesced) as f64
        );
        assert_eq!(
            snap.value("ccdp_core_cache_misses_total"),
            Some(cache.misses as f64)
        );
        assert_eq!(
            snap.value("ccdp_dp_budget_charges_total"),
            Some(ledger.charges() as f64)
        );
        // The per-request profilers published solver phases into the
        // registry even with tracing off.
        assert!(
            snap.sum("ccdp_exec_phase_invocations_total") > 0.0,
            "exec phase island missing from the scrape"
        );
        server.shutdown();
    }

    #[test]
    fn repeated_requests_share_one_family_evaluation() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(4).with_seed(3),
            registry,
            ledger,
        );
        let pending: Vec<_> = (0..12)
            .map(|_| {
                server
                    .submit(ServeRequest::new("acme", "stars", 0.25))
                    .unwrap()
            })
            .collect();
        for p in pending {
            assert!(p.wait().result.is_ok());
        }
        let cache = server.cache_stats();
        assert_eq!(
            cache.misses, 1,
            "12 requests for one graph must evaluate the family once: {cache:?}"
        );
        assert_eq!(cache.hits + cache.coalesced, 11);
        server.shutdown();
    }

    #[test]
    fn audit_journal_records_decisions_and_replays_the_ledger() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(1).with_tracing(true),
            registry,
            Arc::clone(&ledger),
        );
        let journal = Arc::clone(server.journal());
        let ok = server
            .submit(ServeRequest::new("acme", "stars", 2.0))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        let refused = server
            .submit(ServeRequest::new("acme", "stars", 100.0))
            .unwrap()
            .wait();
        assert!(matches!(
            refused.result,
            Err(ServeError::BudgetExhausted { .. })
        ));
        // The charge and the refusal carry the request's trace id.
        let events = journal.events_for_tenant("acme");
        let charge = events
            .iter()
            .find(|e| e.kind == AuditKind::BudgetCharge)
            .expect("charge event");
        assert_eq!(charge.trace, ok.trace);
        assert_eq!(charge.epsilon_granted.to_bits(), 2.0f64.to_bits());
        let refusal = events
            .iter()
            .find(|e| e.kind == AuditKind::BudgetRefusal)
            .expect("refusal event");
        assert_eq!(refusal.trace, refused.trace);
        // Replaying the journal reconstructs the live accountant exactly.
        assert_eq!(ledger.verify_replay(&journal), Ok(1));
        // Shutdown marks the drain boundary in the same stream.
        server.shutdown();
        assert!(journal
            .snapshot()
            .iter()
            .any(|e| e.kind == AuditKind::Drain));
    }

    #[test]
    fn audit_off_records_nothing() {
        let (registry, ledger) = fleet();
        let server = Server::start(
            ServeConfig::new().with_workers(1).with_audit(false),
            registry,
            ledger,
        );
        assert!(!server.config().audit());
        let ok = server
            .submit(ServeRequest::new("acme", "stars", 1.0))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        assert_eq!(server.journal().recorded(), 0);
        server.shutdown();
    }

    #[test]
    fn burn_rate_alert_fires_and_lands_in_the_journal() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(1), registry, ledger);
        // Quota 10 over a 1-hour horizon allows ~2.8e-3 ε/s; spending 2 ε
        // inside a 10-second window is a burn of ~72× — far past 1.0.
        server.slo().add_spec(ccdp_obs::SloSpec::new(
            "budget-burn",
            ccdp_obs::SloObjective::BurnRate {
                horizon_micros: 3_600_000_000,
                max_burn: 1.0,
            },
            10_000_000,
        ));
        let ok = server
            .submit(ServeRequest::new("acme", "stars", 2.0))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        let fired = server.evaluate_slos();
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].tenant, "acme");
        assert!(fired[0].measured > fired[0].threshold);
        // The alert is itself an audit event, retrievable per tenant.
        assert!(server
            .journal()
            .events_for_tenant("acme")
            .iter()
            .any(|e| e.kind == AuditKind::SloAlert));
        // Statuses report the breach without re-firing.
        let statuses = server.slo_statuses();
        assert!(statuses.iter().any(|s| s.breached));
        assert!(server.evaluate_slos().is_empty(), "alert must deduplicate");
        server.shutdown();
    }

    #[test]
    fn drop_counters_surface_ring_overwrites_in_the_exposition() {
        let (registry, ledger) = fleet();
        let server = Server::start(ServeConfig::new().with_workers(1), registry, ledger);
        let ok = server
            .submit(ServeRequest::new("acme", "stars", 0.5))
            .unwrap()
            .wait();
        assert!(ok.result.is_ok());
        let text = server.render_metrics();
        assert!(
            text.contains("ccdp_obs_trace_dropped_total 0"),
            "missing trace drop counter:\n{text}"
        );
        assert!(
            text.contains("ccdp_obs_audit_dropped_total 0"),
            "missing audit drop counter:\n{text}"
        );
        assert!(text.ends_with("# EOF\n"));
        server.shutdown();
    }
}
