//! Deterministic load generation for the serving tier.
//!
//! A [`LoadSpec`] fully describes a serving workload — the graph fleet, the
//! tenant mix with ε quotas, the client count and the request schedule — and
//! [`LoadSpec::run`] executes it against a freshly started [`Server`]:
//! closed-loop clients on OS threads, each submitting its share of the
//! schedule and waiting for every response (retrying with a short backoff on
//! [`QueueFull`](crate::ServeError::QueueFull) backpressure). Everything is
//! seeded, so a spec is a reproducible benchmark: same graphs, same tenant
//! assignment, same request order per client.
//!
//! The summary [`LoadReport`] carries the acceptance metrics the CI smoke
//! job tracks (throughput, p50/p99 latency, cache hit rate, refusal counts)
//! and serializes itself to JSON without external dependencies.

use crate::ledger::BudgetLedger;
use crate::registry::{GraphId, GraphRegistry};
use crate::server::{ServeConfig, ServeRequest, Server};
use crate::stats::StatsSnapshot;
use crate::ServeError;
use ccdp_core::CacheStats;
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic description of one catalog graph.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// `G(n, p)` with `p = avg_degree / n`, generated from `seed`.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Expected average degree (`p = avg_degree / n`).
        avg_degree: f64,
        /// Generation seed.
        seed: u64,
    },
    /// A star with `leaves` leaves.
    Star {
        /// Number of leaves.
        leaves: usize,
    },
    /// A path on `n` vertices.
    Path {
        /// Number of vertices.
        n: usize,
    },
}

impl GraphSpec {
    /// Materializes the graph (deterministic per spec).
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::ErdosRenyi {
                n,
                avg_degree,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let p = (avg_degree / n.max(1) as f64).clamp(0.0, 1.0);
                generators::erdos_renyi(n, p, &mut rng)
            }
            GraphSpec::Star { leaves } => generators::star(leaves),
            GraphSpec::Path { n } => generators::path(n),
        }
    }
}

/// One tenant of the workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant name.
    pub name: String,
    /// Total ε quota registered in the ledger.
    pub quota_epsilon: f64,
    /// Relative share of the request schedule (≥ 0).
    pub weight: f64,
}

/// A full serving workload: fleet × tenant mix × request schedule.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// The graph fleet, registered as `fleet/g0`, `fleet/g1`, ….
    pub graphs: Vec<GraphSpec>,
    /// The tenant mix.
    pub tenants: Vec<TenantSpec>,
    /// Number of closed-loop client threads.
    pub clients: usize,
    /// Total number of requests across all clients.
    pub requests: usize,
    /// ε spent per request.
    pub epsilon_per_request: f64,
    /// Seed for tenant/graph assignment and server noise.
    pub seed: u64,
    /// Server configuration the workload runs against.
    pub server: ServeConfig,
}

impl LoadSpec {
    /// The fixed CI smoke spec: 64 clients, an 8-graph fleet (mixed ER, star
    /// and path), 4 tenants, 256 requests at ε = 0.25 each.
    ///
    /// Quotas are sized so three tenants serve their whole share while the
    /// `burst` tenant exhausts its small quota partway — the run must
    /// demonstrate typed budget refusals under concurrency, not just happy
    /// paths.
    pub fn ci_smoke() -> Self {
        LoadSpec {
            graphs: vec![
                GraphSpec::ErdosRenyi {
                    n: 60,
                    avg_degree: 3.0,
                    seed: 11,
                },
                GraphSpec::ErdosRenyi {
                    n: 80,
                    avg_degree: 2.0,
                    seed: 12,
                },
                GraphSpec::ErdosRenyi {
                    n: 50,
                    avg_degree: 4.0,
                    seed: 13,
                },
                GraphSpec::Star { leaves: 40 },
                GraphSpec::Star { leaves: 25 },
                GraphSpec::Path { n: 64 },
                GraphSpec::Path { n: 32 },
                GraphSpec::ErdosRenyi {
                    n: 40,
                    avg_degree: 1.5,
                    seed: 14,
                },
            ],
            tenants: vec![
                TenantSpec {
                    name: "alpha".into(),
                    quota_epsilon: 40.0,
                    weight: 1.0,
                },
                TenantSpec {
                    name: "beta".into(),
                    quota_epsilon: 40.0,
                    weight: 1.0,
                },
                TenantSpec {
                    name: "gamma".into(),
                    quota_epsilon: 40.0,
                    weight: 1.0,
                },
                TenantSpec {
                    name: "burst".into(),
                    quota_epsilon: 4.0,
                    weight: 1.0,
                },
            ],
            clients: 64,
            requests: 256,
            epsilon_per_request: 0.25,
            seed: 2023,
            server: ServeConfig::new().with_workers(4).with_queue_capacity(128),
        }
    }

    /// The catalog ids this spec's fleet registers under (`fleet/g0`,
    /// `fleet/g1`, …) — the single naming scheme shared by
    /// [`provision`](Self::provision) and anything that needs to address the
    /// fleet later (e.g. the wire-level load generator building its schedule
    /// against an already-provisioned remote server).
    pub fn graph_ids(&self) -> Vec<GraphId> {
        (0..self.graphs.len())
            .map(|i| GraphId::new(format!("fleet/g{i}")))
            .collect()
    }

    /// Builds the fleet into `registry` and registers the tenants in
    /// `ledger`, returning the catalog ids (`fleet/g0`, `fleet/g1`, …).
    /// Shared by the in-process run and the wire-level load generator, so
    /// both drive the identical workload.
    ///
    /// # Panics
    /// Panics on a duplicate tenant or graph id — a `LoadSpec` provisions a
    /// fresh fleet, it never merges into one.
    pub fn provision(&self, registry: &GraphRegistry, ledger: &BudgetLedger) -> Vec<GraphId> {
        let graph_ids = self.graph_ids();
        for (id, spec) in graph_ids.iter().zip(&self.graphs) {
            registry.insert(id.clone(), spec.build());
        }
        for t in &self.tenants {
            ledger
                .register(t.name.as_str(), t.quota_epsilon)
                .expect("duplicate tenant in LoadSpec");
        }
        graph_ids
    }

    /// The deterministic request schedule over `graph_ids`: tenant drawn by
    /// weight, graph uniform, fully derived from the spec seed.
    pub fn schedule(&self, graph_ids: &[GraphId]) -> Vec<ServeRequest> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_weight: f64 = self.tenants.iter().map(|t| t.weight.max(0.0)).sum();
        (0..self.requests)
            .map(|_| {
                let mut pick = rng.gen_range(0.0..total_weight.max(f64::MIN_POSITIVE));
                let mut tenant = &self.tenants[0];
                for t in &self.tenants {
                    tenant = t;
                    pick -= t.weight.max(0.0);
                    if pick <= 0.0 {
                        break;
                    }
                }
                let graph = &graph_ids[rng.gen_range(0..graph_ids.len())];
                ServeRequest::new(
                    tenant.name.as_str(),
                    graph.clone(),
                    self.epsilon_per_request,
                )
            })
            .collect()
    }

    /// Registers the fleet and tenants, starts a server, runs the schedule
    /// with closed-loop clients and returns the summary report.
    pub fn run(&self) -> LoadReport {
        let registry = Arc::new(GraphRegistry::new());
        let ledger = Arc::new(BudgetLedger::new());
        let graph_ids = self.provision(&registry, &ledger);
        let schedule = self.schedule(&graph_ids);

        let server = Arc::new(Server::start(
            self.server.clone().with_seed(self.seed),
            Arc::clone(&registry),
            Arc::clone(&ledger),
        ));

        // Closed-loop clients: each takes a strided share of the schedule,
        // submits one request at a time and waits for its response, retrying
        // with a short backoff when the bounded queue pushes back.
        let started = Instant::now();
        let clients = self.clients.max(1);
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                let mine: Vec<ServeRequest> =
                    schedule.iter().skip(c).step_by(clients).cloned().collect();
                std::thread::spawn(move || {
                    let mut outcomes = ClientOutcomes::default();
                    for request in mine {
                        let pending = loop {
                            match server.submit(request.clone()) {
                                Ok(p) => break Some(p),
                                Err(ServeError::QueueFull { .. }) => {
                                    outcomes.backpressure_retries += 1;
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(_) => break None,
                            }
                        };
                        let Some(pending) = pending else {
                            outcomes.submit_failures += 1;
                            continue;
                        };
                        match pending.wait().result {
                            Ok(_) => outcomes.completed += 1,
                            Err(ServeError::BudgetExhausted { .. }) => {
                                outcomes.budget_refusals += 1
                            }
                            Err(_) => outcomes.failed += 1,
                        }
                    }
                    outcomes
                })
            })
            .collect();
        let mut outcomes = ClientOutcomes::default();
        for h in handles {
            outcomes.absorb(h.join().expect("load client panicked"));
        }
        let wall_clock = started.elapsed();

        let cache = server.cache_stats();
        let server = Arc::try_unwrap(server).expect("all clients joined");
        let snapshot = server.shutdown();
        LoadReport {
            spec_requests: self.requests,
            completed: outcomes.completed,
            budget_refusals: outcomes.budget_refusals,
            failed: outcomes.failed,
            submit_failures: outcomes.submit_failures,
            backpressure_retries: outcomes.backpressure_retries,
            wall_clock,
            throughput_rps: if wall_clock.as_secs_f64() > 0.0 {
                outcomes.completed as f64 / wall_clock.as_secs_f64()
            } else {
                0.0
            },
            cache,
            snapshot,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct ClientOutcomes {
    completed: u64,
    budget_refusals: u64,
    failed: u64,
    submit_failures: u64,
    backpressure_retries: u64,
}

impl ClientOutcomes {
    fn absorb(&mut self, other: ClientOutcomes) {
        self.completed += other.completed;
        self.budget_refusals += other.budget_refusals;
        self.failed += other.failed;
        self.submit_failures += other.submit_failures;
        self.backpressure_retries += other.backpressure_retries;
    }
}

/// Summary of one [`LoadSpec::run`].
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests the spec scheduled.
    pub spec_requests: usize,
    /// Requests answered with a release.
    pub completed: u64,
    /// Requests refused by a tenant budget (typed, expected under quota
    /// pressure).
    pub budget_refusals: u64,
    /// Requests that failed any other way.
    pub failed: u64,
    /// Requests never accepted (server shut down mid-run).
    pub submit_failures: u64,
    /// Total client retries caused by queue backpressure.
    pub backpressure_retries: u64,
    /// Wall-clock time of the whole run.
    pub wall_clock: Duration,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Shared family-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Final server metrics (queue depth, latency percentiles, …).
    pub snapshot: StatsSnapshot,
}

impl LoadReport {
    /// Fraction of family lookups served without a fresh evaluation.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Whether every scheduled request was answered one way or another.
    pub fn is_complete(&self) -> bool {
        self.completed + self.budget_refusals + self.failed + self.submit_failures
            == self.spec_requests as u64
    }

    /// Serializes the metrics the CI smoke job tracks, through the shared
    /// [`json`](crate::json) writer (the single source of truth for every
    /// JSON byte the stack emits).
    pub fn to_json(&self) -> String {
        let mut w = crate::json::JsonWriter::object();
        w.field_u64("requests", self.spec_requests as u64);
        w.field_u64("completed", self.completed);
        w.field_u64("budget_refusals", self.budget_refusals);
        w.field_u64("failed", self.failed);
        w.field_u64("backpressure_retries", self.backpressure_retries);
        w.field_f64_rounded("wall_clock_s", self.wall_clock.as_secs_f64(), 6);
        w.field_f64_rounded("throughput_rps", self.throughput_rps, 3);
        w.field_f64_rounded(
            "p50_latency_ms",
            self.snapshot.p50_latency.as_secs_f64() * 1e3,
            3,
        );
        w.field_f64_rounded(
            "p99_latency_ms",
            self.snapshot.p99_latency.as_secs_f64() * 1e3,
            3,
        );
        w.field_u64("peak_queue_depth", self.snapshot.peak_queue_depth);
        w.field_u64("cache_hits", self.cache.hits);
        w.field_u64("cache_misses", self.cache.misses);
        w.field_u64("cache_coalesced", self.cache.coalesced);
        w.field_u64("cache_evictions", self.cache.evictions);
        w.field_f64_rounded("cache_hit_rate", self.cache_hit_rate(), 4);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_build_deterministically() {
        let spec = GraphSpec::ErdosRenyi {
            n: 30,
            avg_degree: 3.0,
            seed: 5,
        };
        assert_eq!(spec.build(), spec.build());
        assert_eq!(GraphSpec::Star { leaves: 4 }.build().num_edges(), 4);
        assert_eq!(GraphSpec::Path { n: 5 }.build().num_edges(), 4);
    }

    #[test]
    fn small_load_runs_to_completion_with_warm_cache() {
        let spec = LoadSpec {
            graphs: vec![GraphSpec::Path { n: 20 }, GraphSpec::Star { leaves: 10 }],
            tenants: vec![TenantSpec {
                name: "t".into(),
                quota_epsilon: 100.0,
                weight: 1.0,
            }],
            clients: 8,
            requests: 40,
            epsilon_per_request: 0.2,
            seed: 1,
            server: ServeConfig::new().with_workers(4).with_queue_capacity(16),
        };
        let report = spec.run();
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        // Two unique (graph, grid, backend) keys → at most two fresh
        // evaluations; everything else is a hit or a coalesced join.
        assert_eq!(report.cache.misses, 2, "{:?}", report.cache);
        assert!(report.cache_hit_rate() > 0.9);
        // The report round-trips through the shared JSON codec.
        let json = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(json.get("completed").unwrap().as_u64(), Some(40));
        assert!(json.get("cache_hit_rate").unwrap().as_f64().unwrap() > 0.9);
    }

    #[test]
    fn quota_pressure_surfaces_as_budget_refusals_not_failures() {
        let spec = LoadSpec {
            graphs: vec![GraphSpec::Path { n: 10 }],
            tenants: vec![TenantSpec {
                name: "small".into(),
                // Funds exactly 4 of the 12 scheduled requests.
                quota_epsilon: 2.0,
                weight: 1.0,
            }],
            clients: 4,
            requests: 12,
            epsilon_per_request: 0.5,
            seed: 2,
            server: ServeConfig::new().with_workers(2).with_queue_capacity(8),
        };
        let report = spec.run();
        assert!(report.is_complete());
        assert_eq!(report.completed, 4);
        assert_eq!(report.budget_refusals, 8);
        assert_eq!(report.failed, 0);
    }
}
