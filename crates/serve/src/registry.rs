//! The sharded, lock-striped, version-aware graph catalog behind a serving
//! fleet.
//!
//! A serving tier answers releases over a *catalog* of graphs, so the graphs
//! live in one shared [`GraphRegistry`] rather than being owned by any single
//! estimator. The registry is striped across shards, each guarded by its own
//! `RwLock`, so concurrent lookups of different graphs never contend on one
//! lock, and graphs are handed out as `Arc<Graph>` so requests share storage
//! with the registry instead of cloning edge lists.
//!
//! Each catalog id holds a *history* of immutable snapshot versions (see
//! [`GraphVersion`]): a streaming layer publishes new versions as the graph
//! mutates, requests resolve either a pinned `(id, version)` pair or the
//! latest pointer, and stale versions can be expired without disturbing the
//! frontier. Publishing the same `(id, version)` twice is a typed
//! [`ServeError::VersionExists`] refusal — snapshots are immutable, so
//! re-publishing could only mean two different graphs claiming one identity.

use crate::error::ServeError;
use ccdp_graph::{io, Graph, GraphVersion};
use ccdp_obs::{AuditEvent, AuditJournal, AuditKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use crate::ids::GraphId;

/// Default number of lock stripes.
pub const DEFAULT_SHARDS: usize = 16;

/// Default number of snapshot versions retained per graph id. Publishing
/// beyond it silently expires the oldest versions, so an update-style caller
/// that republishes one id forever holds bounded memory; pass `0` to
/// [`GraphRegistry::with_retention`] for unlimited histories.
pub const DEFAULT_VERSION_RETENTION: usize = 8;

/// The version history of one catalog id. The `BTreeMap` keeps versions
/// ordered, so the latest pointer is the last key and range expiry is a
/// split.
type History = BTreeMap<GraphVersion, Arc<Graph>>;

type Shard = HashMap<GraphId, History>;

/// A sharded map from [`GraphId`] to a version history of `Arc<Graph>`
/// snapshots.
#[derive(Debug)]
pub struct GraphRegistry {
    shards: Vec<RwLock<Shard>>,
    /// Per-id history bound enforced on publish (0 = unlimited).
    retention: usize,
    /// Audit journal for `release_published` events (attached by the
    /// serving tier; `None` for a standalone catalog).
    journal: RwLock<Option<Arc<AuditJournal>>>,
}

impl GraphRegistry {
    /// A registry with the default number of shards and version retention.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A registry striped across `shards` locks (≥ 1), with the default
    /// version retention.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_retention(shards, DEFAULT_VERSION_RETENTION)
    }

    /// A registry keeping at most `retention` snapshot versions per id
    /// (0 = unlimited): publishing past the bound expires the oldest
    /// versions, never the newly published frontier.
    pub fn with_retention(shards: usize, retention: usize) -> Self {
        GraphRegistry {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(Shard::new()))
                .collect(),
            retention,
            journal: RwLock::new(None),
        }
    }

    /// Attaches the audit journal every publish decision is recorded into
    /// (the serving tier attaches its shared journal at
    /// [`Server::start`](crate::Server::start)).
    pub fn set_journal(&self, journal: Arc<AuditJournal>) {
        *self
            .journal
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(journal);
    }

    /// Records one `release_published` event, if a journal is attached.
    fn audit_publish(&self, id: &GraphId, version: GraphVersion, detail: &str) {
        let guard = self
            .journal
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(journal) = guard.as_ref() {
            journal.record(
                AuditEvent::new(AuditKind::ReleasePublished)
                    .graph(id.as_str(), Some(version.value()))
                    .detail(detail),
            );
        }
    }

    /// The per-id version retention bound (0 = unlimited).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &GraphId) -> usize {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn read(&self, id: &GraphId) -> RwLockReadGuard<'_, Shard> {
        self.shards[self.shard_of(id)]
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self, id: &GraphId) -> RwLockWriteGuard<'_, Shard> {
        self.shards[self.shard_of(id)]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publishes `graph` under `id` as the next version after the current
    /// latest ([`GraphVersion::INITIAL`] for a fresh id), returning the
    /// previously latest snapshot if this superseded one.
    ///
    /// Prior versions are retained up to the registry's
    /// [`retention`](GraphRegistry::retention) bound — republishing one id
    /// forever holds bounded memory (see also
    /// [`GraphRegistry::evict_versions_below`] and
    /// [`GraphRegistry::retain_latest`] for explicit expiry).
    pub fn insert(
        &self,
        id: impl Into<GraphId>,
        graph: impl Into<Arc<Graph>>,
    ) -> Option<Arc<Graph>> {
        let id = id.into();
        let mut shard = self.write(&id);
        let history = shard.entry(id.clone()).or_default();
        let version = next_version(history);
        let previous = history.last_key_value().map(|(_, g)| Arc::clone(g));
        history.insert(version, graph.into());
        enforce_retention(history, self.retention);
        drop(shard);
        self.audit_publish(&id, version, "published as next version");
        previous
    }

    /// Publishes `graph` under the exact `(id, version)` pair (takes a
    /// `Graph` or an `Arc<Graph>` — an already-shared snapshot is published
    /// without copying).
    ///
    /// # Errors
    /// [`ServeError::VersionExists`] if that snapshot is already published
    /// (snapshots are immutable; nothing is overwritten), and
    /// [`ServeError::VersionExpired`] if the version is a backfill older
    /// than the retention window can hold — accepting it would expire it on
    /// the spot, so `Ok` always means the snapshot is actually resolvable.
    pub fn insert_version(
        &self,
        id: impl Into<GraphId>,
        version: GraphVersion,
        graph: impl Into<Arc<Graph>>,
    ) -> Result<Arc<Graph>, ServeError> {
        let id = id.into();
        let graph = graph.into();
        let mut shard = self.write(&id);
        let history = shard.entry(id.clone()).or_default();
        if history.contains_key(&version) {
            return Err(ServeError::VersionExists { graph: id, version });
        }
        if self.retention > 0 && history.len() >= self.retention {
            if let Some((&oldest, _)) = history.first_key_value() {
                if version < oldest {
                    return Err(ServeError::VersionExpired {
                        graph: id,
                        version,
                        oldest_retained: oldest,
                    });
                }
            }
        }
        history.insert(version, Arc::clone(&graph));
        enforce_retention(history, self.retention);
        drop(shard);
        self.audit_publish(&id, version, "published at explicit version");
        Ok(graph)
    }

    /// Parses `text` as a plain-text edge list (see [`ccdp_graph::io`]) and
    /// publishes the graph under `id` at [`GraphVersion::INITIAL`].
    ///
    /// # Errors
    /// [`ServeError::Ingest`] on a malformed edge list, and
    /// [`ServeError::VersionExists`] when `id` already holds an initial
    /// snapshot — re-ingesting an existing id is a typed refusal, never a
    /// silent overwrite.
    pub fn ingest_edge_list(
        &self,
        id: impl Into<GraphId>,
        text: &str,
    ) -> Result<Arc<Graph>, ServeError> {
        self.ingest_edge_list_version(id, GraphVersion::INITIAL, text)
    }

    /// [`ingest_edge_list`](Self::ingest_edge_list) at an explicit version.
    pub fn ingest_edge_list_version(
        &self,
        id: impl Into<GraphId>,
        version: GraphVersion,
        text: &str,
    ) -> Result<Arc<Graph>, ServeError> {
        let graph = io::from_edge_list(text)?;
        self.insert_version(id, version, graph)
    }

    /// The latest snapshot stored under `id`, if any.
    pub fn get(&self, id: &GraphId) -> Option<Arc<Graph>> {
        self.read(id)
            .get(id)
            .and_then(|h| h.last_key_value())
            .map(|(_, g)| Arc::clone(g))
    }

    /// The snapshot stored under `(id, version)`, if any.
    pub fn get_version(&self, id: &GraphId, version: GraphVersion) -> Option<Arc<Graph>> {
        self.read(id)
            .get(id)
            .and_then(|h| h.get(&version))
            .map(Arc::clone)
    }

    /// The latest published version of `id`, if any.
    pub fn latest_version(&self, id: &GraphId) -> Option<GraphVersion> {
        self.read(id)
            .get(id)
            .and_then(|h| h.last_key_value())
            .map(|(&v, _)| v)
    }

    /// All published versions of `id`, ascending.
    pub fn versions(&self, id: &GraphId) -> Vec<GraphVersion> {
        self.read(id)
            .get(id)
            .map(|h| h.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Resolves the latest snapshot of `id` or reports the typed refusal a
    /// request would get.
    pub fn resolve(&self, id: &GraphId) -> Result<Arc<Graph>, ServeError> {
        Ok(self.resolve_latest(id)?.1)
    }

    /// Resolves the latest snapshot of `id` together with its version.
    pub fn resolve_latest(&self, id: &GraphId) -> Result<(GraphVersion, Arc<Graph>), ServeError> {
        self.read(id)
            .get(id)
            .and_then(|h| h.last_key_value())
            .map(|(&v, g)| (v, Arc::clone(g)))
            .ok_or_else(|| ServeError::UnknownGraph { graph: id.clone() })
    }

    /// Resolves the exact `(id, version)` snapshot, distinguishing an unknown
    /// id ([`ServeError::UnknownGraph`]) from a known id whose requested
    /// version is unpublished or expired ([`ServeError::UnknownVersion`]).
    pub fn resolve_version(
        &self,
        id: &GraphId,
        version: GraphVersion,
    ) -> Result<Arc<Graph>, ServeError> {
        let shard = self.read(id);
        let history = shard
            .get(id)
            .ok_or_else(|| ServeError::UnknownGraph { graph: id.clone() })?;
        history
            .get(&version)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::UnknownVersion {
                graph: id.clone(),
                version,
            })
    }

    /// Expires every snapshot of `id` with a version strictly below
    /// `version`, returning how many were evicted. The latest snapshot is
    /// always kept, even if it falls below the cutoff — expiry prunes
    /// history, it never unpublishes a graph.
    pub fn evict_versions_below(&self, id: &GraphId, version: GraphVersion) -> usize {
        let mut shard = self.write(id);
        let Some(history) = shard.get_mut(id) else {
            return 0;
        };
        let Some((&latest, _)) = history.last_key_value() else {
            return 0;
        };
        let cutoff = version.min(latest);
        let kept = history.split_off(&cutoff);
        let evicted = history.len();
        *history = kept;
        evicted
    }

    /// Keeps only the `keep` most recent snapshots of `id` (≥ 1), returning
    /// how many older ones were evicted.
    pub fn retain_latest(&self, id: &GraphId, keep: usize) -> usize {
        let keep = keep.max(1);
        let mut shard = self.write(id);
        let Some(history) = shard.get_mut(id) else {
            return 0;
        };
        if history.len() <= keep {
            return 0;
        }
        let cutoff = *history.keys().nth_back(keep - 1).expect("len > keep");
        let kept = history.split_off(&cutoff);
        let evicted = history.len();
        *history = kept;
        evicted
    }

    /// Removes and returns exactly one published snapshot, dropping the id
    /// entirely when its history empties.
    ///
    /// Snapshots are normally immutable once published; this exists for the
    /// one caller with a legitimate claim — a publisher rolling back a
    /// version *it just published* that was never served (e.g. the release
    /// scheduler unwinding a publish after queue backpressure refused the
    /// estimate). Concurrent readers that already resolved the snapshot keep
    /// their `Arc` — removal unlists, it never invalidates.
    pub fn remove_version(&self, id: &GraphId, version: GraphVersion) -> Option<Arc<Graph>> {
        let mut shard = self.write(id);
        let history = shard.get_mut(id)?;
        let removed = history.remove(&version);
        if history.is_empty() {
            shard.remove(id);
        }
        removed
    }

    /// Removes and returns the latest snapshot stored under `id`, dropping
    /// the whole version history.
    pub fn remove(&self, id: &GraphId) -> Option<Arc<Graph>> {
        self.write(id)
            .remove(id)
            .and_then(|h| h.into_values().next_back())
    }

    /// Number of catalog ids across all shards (not versions; see
    /// [`GraphRegistry::num_versions`]).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Total number of stored snapshots across all ids and versions.
    pub fn num_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|p| p.into_inner())
                    .values()
                    .map(BTreeMap::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the registry holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All graph ids, sorted (stable across shard layouts).
    pub fn ids(&self) -> Vec<GraphId> {
        let mut ids: Vec<GraphId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|p| p.into_inner())
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }
}

/// The version `insert` publishes next: one past the latest, or the initial
/// version for a fresh history.
fn next_version(history: &History) -> GraphVersion {
    history
        .last_key_value()
        .map(|(&v, _)| v.next())
        .unwrap_or(GraphVersion::INITIAL)
}

/// Expires the oldest versions beyond the registry's retention bound
/// (0 = unlimited). Called on every publish, so histories can exceed the
/// bound only between a publish and this sweep — never observably.
fn enforce_retention(history: &mut History, retention: usize) {
    if retention == 0 {
        return;
    }
    while history.len() > retention {
        let oldest = *history.keys().next().expect("len > retention > 0");
        history.remove(&oldest);
    }
}

impl Default for GraphRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    #[test]
    fn insert_get_remove_round_trip() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        let g = generators::path(5);
        assert!(reg.insert("p5", g.clone()).is_none());
        assert_eq!(reg.len(), 1);
        let got = reg.get(&GraphId::new("p5")).unwrap();
        assert_eq!(*got, g);
        // Superseding returns the previously latest snapshot.
        let old = reg.insert("p5", generators::star(3)).unwrap();
        assert_eq!(*old, g);
        assert_eq!(reg.len(), 1);
        assert!(reg.remove(&GraphId::new("p5")).is_some());
        assert!(reg.is_empty());
    }

    #[test]
    fn insert_advances_the_version_history() {
        let reg = GraphRegistry::new();
        let id = GraphId::new("g");
        reg.insert(id.clone(), generators::path(2));
        reg.insert(id.clone(), generators::path(3));
        reg.insert(id.clone(), generators::path(4));
        assert_eq!(reg.latest_version(&id), Some(GraphVersion::new(2)));
        assert_eq!(
            reg.versions(&id),
            vec![
                GraphVersion::INITIAL,
                GraphVersion::new(1),
                GraphVersion::new(2)
            ]
        );
        assert_eq!(reg.num_versions(), 3);
        assert_eq!(reg.len(), 1);
        // Pinned resolution sees every retained version.
        assert_eq!(
            reg.get_version(&id, GraphVersion::INITIAL)
                .unwrap()
                .num_vertices(),
            2
        );
        assert_eq!(reg.resolve(&id).unwrap().num_vertices(), 4);
        let (v, g) = reg.resolve_latest(&id).unwrap();
        assert_eq!(v, GraphVersion::new(2));
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn insert_version_refuses_republishing() {
        let reg = GraphRegistry::new();
        let id = GraphId::new("g");
        reg.insert_version(id.clone(), GraphVersion::new(5), generators::path(3))
            .unwrap();
        let err = reg
            .insert_version(id.clone(), GraphVersion::new(5), generators::star(4))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::VersionExists {
                graph: id.clone(),
                version: GraphVersion::new(5)
            }
        );
        // The original snapshot survived the refused re-publish.
        assert_eq!(
            reg.get_version(&id, GraphVersion::new(5))
                .unwrap()
                .num_vertices(),
            3
        );
    }

    #[test]
    fn resolve_reports_typed_unknown_graph_and_version() {
        let reg = GraphRegistry::new();
        let err = reg.resolve(&GraphId::new("missing")).unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownGraph {
                graph: GraphId::new("missing")
            }
        );
        // Unknown id vs known id at an unpublished version are distinct
        // refusals.
        let id = GraphId::new("g");
        reg.insert(id.clone(), generators::path(3));
        let err = reg
            .resolve_version(&GraphId::new("missing"), GraphVersion::INITIAL)
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownGraph { .. }));
        let err = reg.resolve_version(&id, GraphVersion::new(9)).unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownVersion {
                graph: id,
                version: GraphVersion::new(9)
            }
        );
    }

    #[test]
    fn ingestion_parses_edge_lists_and_rejects_garbage() {
        let reg = GraphRegistry::new();
        let g = reg
            .ingest_edge_list("tri", "# 3 3\n0 1\n1 2\n0 2\n")
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(reg.get(&GraphId::new("tri")).is_some());
        let err = reg.ingest_edge_list("bad", "0 1\nnope\n").unwrap_err();
        assert!(matches!(err, ServeError::Ingest(_)));
        assert!(reg.get(&GraphId::new("bad")).is_none());
    }

    #[test]
    fn reingesting_an_existing_id_is_a_typed_refusal_not_an_overwrite() {
        // Regression: this used to silently overwrite the stored graph.
        let reg = GraphRegistry::new();
        reg.ingest_edge_list("g", "# 3 2\n0 1\n1 2\n").unwrap();
        let err = reg.ingest_edge_list("g", "# 2 1\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ServeError::VersionExists {
                graph: GraphId::new("g"),
                version: GraphVersion::INITIAL
            }
        );
        // The original graph is untouched.
        assert_eq!(reg.get(&GraphId::new("g")).unwrap().num_vertices(), 3);
        assert_eq!(reg.num_versions(), 1);
        // Publishing the same id at a *new* version is fine.
        reg.ingest_edge_list_version("g", GraphVersion::new(1), "# 2 1\n0 1\n")
            .unwrap();
        assert_eq!(reg.get(&GraphId::new("g")).unwrap().num_vertices(), 2);
    }

    #[test]
    fn stale_versions_can_be_expired_without_unpublishing() {
        let reg = GraphRegistry::new();
        let id = GraphId::new("g");
        for n in 2..7 {
            reg.insert(id.clone(), generators::path(n));
        }
        assert_eq!(reg.num_versions(), 5);
        // Expire everything below v3.
        assert_eq!(reg.evict_versions_below(&id, GraphVersion::new(3)), 3);
        assert_eq!(
            reg.versions(&id),
            vec![GraphVersion::new(3), GraphVersion::new(4)]
        );
        // An expired version is a typed UnknownVersion, the frontier remains.
        assert!(matches!(
            reg.resolve_version(&id, GraphVersion::INITIAL),
            Err(ServeError::UnknownVersion { .. })
        ));
        assert!(reg.resolve(&id).is_ok());
        // A cutoff past the latest still keeps the latest snapshot.
        assert_eq!(reg.evict_versions_below(&id, GraphVersion::new(100)), 1);
        assert_eq!(reg.versions(&id), vec![GraphVersion::new(4)]);
        assert_eq!(reg.latest_version(&id), Some(GraphVersion::new(4)));
    }

    #[test]
    fn retain_latest_bounds_history_depth() {
        let reg = GraphRegistry::new();
        let id = GraphId::new("g");
        for n in 2..10 {
            reg.insert(id.clone(), generators::path(n));
        }
        assert_eq!(reg.retain_latest(&id, 3), 5);
        assert_eq!(
            reg.versions(&id),
            vec![
                GraphVersion::new(5),
                GraphVersion::new(6),
                GraphVersion::new(7)
            ]
        );
        // Already within bound: nothing to do. keep=0 clamps to 1.
        assert_eq!(reg.retain_latest(&id, 3), 0);
        assert_eq!(reg.retain_latest(&id, 0), 2);
        assert_eq!(reg.versions(&id), vec![GraphVersion::new(7)]);
        // Version numbering continues after expiry — versions never recycle.
        reg.insert(id.clone(), generators::path(20));
        assert_eq!(reg.latest_version(&id), Some(GraphVersion::new(8)));
    }

    #[test]
    fn ids_are_sorted_and_cover_all_shards() {
        let reg = GraphRegistry::with_shards(4);
        for i in 0..20 {
            reg.insert(format!("g{i:02}"), generators::path(3));
        }
        let ids = reg.ids();
        assert_eq!(ids.len(), 20);
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(reg.len(), 20);
    }

    #[test]
    fn shard_striping_distributes_graphs() {
        let reg = GraphRegistry::with_shards(8);
        for i in 0..64 {
            reg.insert(format!("graph-{i}"), generators::path(2));
        }
        // Not a distribution test, just that striping is actually in use: no
        // single shard holds everything.
        let max_shard = reg
            .shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .max()
            .unwrap();
        assert!(max_shard < 64);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_graphs() {
        let reg = Arc::new(GraphRegistry::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        reg.insert(format!("t{t}-g{i}"), generators::star(3));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(reg.len(), 100);
    }

    #[test]
    fn default_retention_bounds_update_style_callers() {
        // Republishing one id forever must hold bounded memory: the history
        // stays at the retention bound, always keeping the frontier.
        let reg = GraphRegistry::new();
        let id = GraphId::new("refreshed");
        for n in 2..42 {
            reg.insert(id.clone(), generators::path(n));
        }
        assert_eq!(reg.num_versions(), DEFAULT_VERSION_RETENTION);
        assert_eq!(reg.latest_version(&id), Some(GraphVersion::new(39)));
        assert_eq!(reg.resolve(&id).unwrap().num_vertices(), 41);
        // Retention 0 = unlimited.
        let reg = GraphRegistry::with_retention(4, 0);
        for n in 2..42 {
            reg.insert(id.clone(), generators::path(n));
        }
        assert_eq!(reg.num_versions(), 40);
    }

    #[test]
    fn backfills_behind_the_retention_window_are_refused_not_dropped() {
        // Regression: insert_version used to return Ok while enforce_retention
        // immediately expired the just-inserted backfill.
        let reg = GraphRegistry::with_retention(4, 3);
        let id = GraphId::new("g");
        for v in 1..=3u64 {
            reg.insert_version(id.clone(), GraphVersion::new(v), generators::path(3))
                .unwrap();
        }
        let err = reg
            .insert_version(id.clone(), GraphVersion::new(0), generators::path(3))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::VersionExpired {
                graph: id.clone(),
                version: GraphVersion::new(0),
                oldest_retained: GraphVersion::new(1),
            }
        );
        assert_eq!(reg.num_versions(), 3);
        // A backfill that fits inside the window (above the current oldest)
        // is accepted and resolvable; the oldest is expired to make room.
        for v in [10u64, 11] {
            reg.insert_version(id.clone(), GraphVersion::new(v), generators::path(3))
                .unwrap();
        }
        let ok = reg.insert_version(id.clone(), GraphVersion::new(9), generators::path(3));
        assert!(ok.is_ok());
        assert!(reg.get_version(&id, GraphVersion::new(9)).is_some());
        assert_eq!(reg.num_versions(), 3);
    }

    #[test]
    fn publishes_land_in_an_attached_audit_journal() {
        let reg = GraphRegistry::new();
        let journal = Arc::new(AuditJournal::new());
        reg.set_journal(Arc::clone(&journal));
        reg.insert("g", generators::path(3));
        reg.insert_version("g", GraphVersion::new(7), generators::path(4))
            .unwrap();
        // A refused re-publish emits nothing: the journal records decisions
        // that changed the catalog, not attempts.
        assert!(reg
            .insert_version("g", GraphVersion::new(7), generators::path(4))
            .is_err());
        let events = journal.snapshot();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events
            .iter()
            .all(|e| e.kind == AuditKind::ReleasePublished && e.graph == "g"));
        assert_eq!(events[0].version, Some(0));
        assert_eq!(events[1].version, Some(7));
    }

    #[test]
    fn concurrent_version_publishers_never_collide() {
        // Four writers each publish 25 versions of ONE graph via `insert`;
        // the histories must interleave without ever losing a snapshot.
        let reg = Arc::new(GraphRegistry::with_retention(DEFAULT_SHARDS, 0));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        reg.insert("shared", generators::path(3));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(reg.num_versions(), 100);
        assert_eq!(
            reg.latest_version(&GraphId::new("shared")),
            Some(GraphVersion::new(99))
        );
    }
}
