//! The sharded, lock-striped graph catalog behind a serving fleet.
//!
//! A serving tier answers releases over a *catalog* of graphs, so the graphs
//! live in one shared [`GraphRegistry`] rather than being owned by any single
//! estimator. The registry is striped across shards, each guarded by its own
//! `RwLock`, so concurrent lookups of different graphs never contend on one
//! lock, and graphs are handed out as `Arc<Graph>` so requests share storage
//! with the registry instead of cloning edge lists.

use crate::error::ServeError;
use ccdp_graph::{io, Graph};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use crate::ids::GraphId;

/// Default number of lock stripes.
pub const DEFAULT_SHARDS: usize = 16;

type Shard = HashMap<GraphId, Arc<Graph>>;

/// A sharded map from [`GraphId`] to `Arc<Graph>`.
#[derive(Debug)]
pub struct GraphRegistry {
    shards: Vec<RwLock<Shard>>,
}

impl GraphRegistry {
    /// A registry with the default number of shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A registry striped across `shards` locks (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        GraphRegistry {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(Shard::new()))
                .collect(),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &GraphId) -> usize {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn read(&self, id: &GraphId) -> RwLockReadGuard<'_, Shard> {
        self.shards[self.shard_of(id)]
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self, id: &GraphId) -> RwLockWriteGuard<'_, Shard> {
        self.shards[self.shard_of(id)]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Stores `graph` under `id`, returning the previously stored graph if
    /// this replaced one.
    pub fn insert(&self, id: impl Into<GraphId>, graph: Graph) -> Option<Arc<Graph>> {
        let id = id.into();
        self.write(&id).insert(id.clone(), Arc::new(graph))
    }

    /// Parses `text` as a plain-text edge list (see [`ccdp_graph::io`]) and
    /// stores the graph under `id`.
    pub fn ingest_edge_list(
        &self,
        id: impl Into<GraphId>,
        text: &str,
    ) -> Result<Arc<Graph>, ServeError> {
        let id = id.into();
        let graph = Arc::new(io::from_edge_list(text)?);
        self.write(&id).insert(id, Arc::clone(&graph));
        Ok(graph)
    }

    /// The graph stored under `id`, if any.
    pub fn get(&self, id: &GraphId) -> Option<Arc<Graph>> {
        self.read(id).get(id).cloned()
    }

    /// Resolves `id` or reports the typed refusal a request would get.
    pub fn resolve(&self, id: &GraphId) -> Result<Arc<Graph>, ServeError> {
        self.get(id)
            .ok_or_else(|| ServeError::UnknownGraph { graph: id.clone() })
    }

    /// Removes and returns the graph stored under `id`.
    pub fn remove(&self, id: &GraphId) -> Option<Arc<Graph>> {
        self.write(id).remove(id)
    }

    /// Number of graphs across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether the registry holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All graph ids, sorted (stable across shard layouts).
    pub fn ids(&self) -> Vec<GraphId> {
        let mut ids: Vec<GraphId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|p| p.into_inner())
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }
}

impl Default for GraphRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    #[test]
    fn insert_get_remove_round_trip() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        let g = generators::path(5);
        assert!(reg.insert("p5", g.clone()).is_none());
        assert_eq!(reg.len(), 1);
        let got = reg.get(&GraphId::new("p5")).unwrap();
        assert_eq!(*got, g);
        // Replacing returns the old graph.
        let old = reg.insert("p5", generators::star(3)).unwrap();
        assert_eq!(*old, g);
        assert_eq!(reg.len(), 1);
        assert!(reg.remove(&GraphId::new("p5")).is_some());
        assert!(reg.is_empty());
    }

    #[test]
    fn resolve_reports_typed_unknown_graph() {
        let reg = GraphRegistry::new();
        let err = reg.resolve(&GraphId::new("missing")).unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownGraph {
                graph: GraphId::new("missing")
            }
        );
    }

    #[test]
    fn ingestion_parses_edge_lists_and_rejects_garbage() {
        let reg = GraphRegistry::new();
        let g = reg
            .ingest_edge_list("tri", "# 3 3\n0 1\n1 2\n0 2\n")
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(reg.get(&GraphId::new("tri")).is_some());
        let err = reg.ingest_edge_list("bad", "0 1\nnope\n").unwrap_err();
        assert!(matches!(err, ServeError::Ingest(_)));
        assert!(reg.get(&GraphId::new("bad")).is_none());
    }

    #[test]
    fn ids_are_sorted_and_cover_all_shards() {
        let reg = GraphRegistry::with_shards(4);
        for i in 0..20 {
            reg.insert(format!("g{i:02}"), generators::path(3));
        }
        let ids = reg.ids();
        assert_eq!(ids.len(), 20);
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(reg.len(), 20);
    }

    #[test]
    fn shard_striping_distributes_graphs() {
        let reg = GraphRegistry::with_shards(8);
        for i in 0..64 {
            reg.insert(format!("graph-{i}"), generators::path(2));
        }
        // Not a distribution test, just that striping is actually in use: no
        // single shard holds everything.
        let max_shard = reg
            .shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .max()
            .unwrap();
        assert!(max_shard < 64);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_graphs() {
        let reg = Arc::new(GraphRegistry::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        reg.insert(format!("t{t}-g{i}"), generators::star(3));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(reg.len(), 100);
    }
}
