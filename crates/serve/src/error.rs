//! The typed failure surface of the serving tier.
//!
//! Every refusal a caller can hit — a full queue, an unknown graph or tenant,
//! an exhausted privacy budget, a failed estimate — is a [`ServeError`]
//! variant, so clients program against an enum instead of parsing messages,
//! and backpressure (`QueueFull`) is distinguishable from hard failures.

use crate::ledger::TenantId;
use crate::registry::GraphId;
use ccdp_core::CcdpError;
use ccdp_dp::BudgetExceeded;
use ccdp_graph::io::ParseError;
use ccdp_graph::GraphVersion;

/// Errors surfaced by the serving tier.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The bounded request queue is full: typed backpressure. Retry later or
    /// shed load; nothing was enqueued.
    QueueFull {
        /// The queue's capacity at the time of the refusal.
        capacity: usize,
    },
    /// The server has begun shutting down and accepts no new requests.
    ShuttingDown,
    /// The request names a graph the registry does not hold.
    UnknownGraph {
        /// The graph id that failed to resolve.
        graph: GraphId,
    },
    /// The request pins a snapshot version the registry does not hold for
    /// this graph (never published, or already expired).
    UnknownVersion {
        /// The graph id.
        graph: GraphId,
        /// The version that failed to resolve.
        version: GraphVersion,
    },
    /// A snapshot was published twice under one `(graph, version)` pair.
    /// Snapshots are immutable: re-publishing is refused, never overwritten.
    VersionExists {
        /// The graph id.
        graph: GraphId,
        /// The already-published version.
        version: GraphVersion,
    },
    /// A backfill publish named a version older than the registry's
    /// retention window can hold: accepting it would expire it on the spot,
    /// so the publish is refused instead of silently dropped.
    VersionExpired {
        /// The graph id.
        graph: GraphId,
        /// The refused backfill version.
        version: GraphVersion,
        /// The oldest version the retention window still holds.
        oldest_retained: GraphVersion,
    },
    /// The request names a tenant the ledger does not know.
    UnknownTenant {
        /// The tenant id that failed to resolve.
        tenant: TenantId,
    },
    /// The tenant is registered but its ε quota cannot fund this request.
    BudgetExhausted {
        /// The refused tenant.
        tenant: TenantId,
        /// The underlying accountant refusal (requested vs remaining ε).
        exceeded: BudgetExceeded,
    },
    /// A tenant was registered twice.
    TenantAlreadyRegistered {
        /// The duplicate tenant id.
        tenant: TenantId,
    },
    /// The request ε is not strictly positive and finite.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// Graph ingestion failed to parse the edge list.
    Ingest(ParseError),
    /// The estimator itself failed (configuration, LP, …).
    Estimator(CcdpError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnknownGraph { graph } => write!(f, "unknown graph `{graph}`"),
            ServeError::UnknownVersion { graph, version } => {
                write!(f, "graph `{graph}` has no snapshot at {version}")
            }
            ServeError::VersionExists { graph, version } => {
                write!(f, "graph `{graph}` already has a snapshot at {version}")
            }
            ServeError::VersionExpired {
                graph,
                version,
                oldest_retained,
            } => write!(
                f,
                "graph `{graph}`: backfill at {version} is behind the retention window \
                 (oldest retained: {oldest_retained})"
            ),
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            ServeError::BudgetExhausted { tenant, exceeded } => {
                write!(f, "tenant `{tenant}`: {exceeded}")
            }
            ServeError::TenantAlreadyRegistered { tenant } => {
                write!(f, "tenant `{tenant}` is already registered")
            }
            ServeError::InvalidEpsilon { value } => {
                write!(
                    f,
                    "request epsilon must be positive and finite, got {value}"
                )
            }
            ServeError::Ingest(e) => write!(f, "graph ingestion failed: {e}"),
            ServeError::Estimator(e) => write!(f, "estimator failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Ingest(e) => Some(e),
            ServeError::Estimator(e) => Some(e),
            ServeError::BudgetExhausted { exceeded, .. } => Some(exceeded),
            _ => None,
        }
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Ingest(e)
    }
}

impl From<CcdpError> for ServeError {
    fn from(e: CcdpError) -> Self {
        ServeError::Estimator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ServeError::UnknownGraph {
            graph: GraphId::new("fleet/g3"),
        };
        assert!(e.to_string().contains("fleet/g3"));
        let e = ServeError::BudgetExhausted {
            tenant: TenantId::new("acme"),
            exceeded: BudgetExceeded {
                requested: 1.0,
                remaining: 0.25,
            },
        };
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains("0.25"));
        let e = ServeError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains('8'));
        let e = ServeError::UnknownVersion {
            graph: GraphId::new("g"),
            version: GraphVersion::new(4),
        };
        assert!(e.to_string().contains("v4"));
        let e = ServeError::VersionExists {
            graph: GraphId::new("g"),
            version: GraphVersion::new(2),
        };
        assert!(e.to_string().contains("already"));
        assert!(e.to_string().contains("v2"));
    }
}
