//! Per-tenant privacy-budget accounting for the serving tier.
//!
//! Differential privacy composes: every ε-release a tenant receives adds to
//! the total ε spent on their behalf, so a server answering many requests
//! must meter each tenant against a quota *centrally* — per-request checks in
//! client code cannot see each other. [`BudgetLedger`] wraps one
//! [`PrivacyBudget`] accountant per tenant behind a per-tenant mutex:
//! admission is an atomic check-and-spend, so no interleaving of concurrent
//! requests can push a tenant past its quota (overspending is a typed
//! [`ServeError::BudgetExhausted`] refusal, never a silent grant).
//!
//! # Continual releases (the streaming tier)
//!
//! The `ccdp_stream` release scheduler charges this same ledger: every fired
//! re-estimation of an evolving graph spends its ε here *before* the
//! estimator runs, under the identical check-and-spend, with the ledger
//! stage named `graph-id@version` so a tenant's account reads as a versioned
//! audit trail of which snapshot each grant funded. Releases about
//! *different versions of one graph* still compose sequentially against the
//! tenant's single quota — node-DP composition is per tenant, not per
//! snapshot — and an exhausted quota stops that tenant's releases (typed
//! refusal) while ingestion and other tenants continue untouched.

use crate::error::ServeError;
use ccdp_dp::PrivacyBudget;
use ccdp_obs::{
    replay_tenant, AuditEvent, AuditJournal, AuditKind, Counter, FloatCounter, Gauge,
    MetricsRegistry, TraceId,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

pub use crate::ids::TenantId;

/// Point-in-time view of one tenant's account.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantAccount {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant's total ε quota.
    pub quota_epsilon: f64,
    /// ε spent so far.
    pub spent_epsilon: f64,
    /// ε still available.
    pub remaining_epsilon: f64,
    /// Number of granted spends.
    pub grants: usize,
}

/// One tenant's full auditable state: everything the audit journal must
/// be able to reconstruct (compared bit-for-bit by
/// [`BudgetLedger::verify_replay`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TenantAuditSnapshot {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant's total ε quota.
    pub quota_epsilon: f64,
    /// ε spent so far (the accountant's exact running sum).
    pub spent_epsilon: f64,
    /// Quota utilization in `[0, 1]` (the accountant's exact expression).
    pub utilization: f64,
    /// Granted spends.
    pub charges: u64,
    /// Refused spends (exhausted quota; malformed requests don't count).
    pub refusals: u64,
    /// One `(stage, ε)` entry per grant, in grant order.
    pub stages: Vec<(String, f64)>,
}

/// Per-tenant ledger state: the accountant, the refusal tally, and the
/// tenant's labeled metric series (created when metrics are published).
#[derive(Debug)]
struct TenantEntry {
    budget: Mutex<PrivacyBudget>,
    refusals: AtomicU64,
    series: OnceLock<TenantSeries>,
}

/// The per-tenant labeled series in the unified registry.
#[derive(Debug)]
struct TenantSeries {
    /// `ccdp_serve_budget_spent_total{tenant=...}`.
    spent: FloatCounter,
    /// `ccdp_serve_budget_utilization_ppm{tenant=...}` (parts-per-million,
    /// integer-encoded so a gauge can carry it).
    utilization_ppm: Gauge,
}

/// A thread-safe map from tenant to privacy-budget accountant.
///
/// The tenant map is guarded by an `RwLock` (registration is rare, spending
/// is hot), and each tenant's [`PrivacyBudget`] sits behind its own `Mutex`,
/// so tenants never contend with each other on the spend path.
///
/// # Audit journal
///
/// With a journal attached ([`set_journal`](Self::set_journal)), every
/// decision this ledger makes is recorded as a typed [`AuditEvent`]
/// *inside the tenant's lock*: registrations (carrying the quota), grants
/// (carrying the granted ε and the request's [`TraceId`]) and
/// exhausted-quota refusals. Because the events are emitted under the same
/// lock that orders the spends, one tenant's journal is a linearization of
/// their account history — replaying it with [`ccdp_obs::replay_tenant`]
/// reconstructs the accountant bit-for-bit
/// ([`verify_replay`](Self::verify_replay) checks exactly that, and the
/// serve tier's property tests drive it under concurrent load).
#[derive(Debug)]
pub struct BudgetLedger {
    tenants: RwLock<HashMap<TenantId, Arc<TenantEntry>>>,
    /// Granted spends across all tenants (detached until
    /// [`publish_metrics`](Self::publish_metrics) adopts it into a registry).
    charges: Counter,
    /// Spends refused for an exhausted quota.
    refusals: Counter,
    /// Total ε granted across all tenants.
    epsilon_spent: FloatCounter,
    /// The audit journal decisions are recorded into, once attached.
    journal: RwLock<Option<Arc<AuditJournal>>>,
    /// The registry per-tenant labeled series are created in, once shared.
    metrics: RwLock<Option<Arc<MetricsRegistry>>>,
}

impl Default for BudgetLedger {
    fn default() -> Self {
        BudgetLedger {
            tenants: RwLock::new(HashMap::new()),
            charges: Counter::detached(),
            refusals: Counter::detached(),
            epsilon_spent: FloatCounter::detached(),
            journal: RwLock::new(None),
            metrics: RwLock::new(None),
        }
    }
}

impl BudgetLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the ledger's counters in `registry` as the
    /// `ccdp_dp_budget_*` island. The ledger is typically constructed before
    /// any registry exists, so the counters start detached and are *adopted*
    /// here — grants recorded before publication stay visible in the scrape.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("ccdp_dp_budget_charges_total", &self.charges);
        registry.adopt_counter("ccdp_dp_budget_refusals_total", &self.refusals);
        registry.adopt_float_counter("ccdp_dp_budget_epsilon_spent_total", &self.epsilon_spent);
    }

    /// [`publish_metrics`](Self::publish_metrics), plus per-tenant labeled
    /// series: keeps the registry handle so every current *and future*
    /// tenant gets `ccdp_serve_budget_spent_total{tenant=...}` (granted ε)
    /// and `ccdp_serve_budget_utilization_ppm{tenant=...}` (quota
    /// utilization in parts-per-million).
    pub fn publish_metrics_shared(&self, registry: &Arc<MetricsRegistry>) {
        self.publish_metrics(registry);
        *self.metrics.write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(registry));
        for (tenant, entry) in self.read().iter() {
            Self::ensure_series(registry, tenant, entry);
            if let Some(series) = entry.series.get() {
                // Backfill spends recorded before publication so the scrape
                // agrees with the account view from the first scrape on.
                let budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
                let already = series.spent.get();
                series.spent.add(budget.spent_epsilon() - already);
                series
                    .utilization_ppm
                    .set((budget.utilization() * 1e6) as i64);
            }
        }
    }

    /// Attaches the audit journal every subsequent ledger decision is
    /// recorded into.
    ///
    /// Accounts that already exist are *checkpointed* into the journal
    /// first — one `tenant_registered` event carrying the quota, one
    /// `budget_charge` per already-granted stage (in grant order) and one
    /// `budget_refusal` per past refusal — so replaying the journal
    /// reconstructs every account exactly even when the journal arrives
    /// after traffic (the seed path for attaching a replica mid-flight).
    pub fn set_journal(&self, journal: Arc<AuditJournal>) {
        for (tenant, entry) in self.read().iter() {
            let budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
            journal.record(
                AuditEvent::new(AuditKind::TenantRegistered)
                    .tenant(tenant.as_str())
                    .epsilon(budget.total_epsilon(), 0.0)
                    .detail("checkpoint: account predates journal"),
            );
            for (stage, granted) in budget.ledger() {
                let (graph, version) = split_stage(stage);
                journal.record(
                    AuditEvent::new(AuditKind::BudgetCharge)
                        .tenant(tenant.as_str())
                        .graph(graph, version)
                        .stage(stage.as_str())
                        .epsilon(*granted, *granted)
                        .detail("checkpoint: grant predates journal"),
                );
            }
            for _ in 0..entry.refusals.load(Ordering::Relaxed) {
                journal.record(
                    AuditEvent::new(AuditKind::BudgetRefusal)
                        .tenant(tenant.as_str())
                        .epsilon(0.0, 0.0)
                        .detail("checkpoint: refusal predates journal"),
                );
            }
        }
        *self.journal.write().unwrap_or_else(|p| p.into_inner()) = Some(journal);
    }

    /// The attached audit journal, if any.
    pub fn journal(&self) -> Option<Arc<AuditJournal>> {
        self.journal
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Creates (idempotently) the tenant's labeled series in `registry`.
    fn ensure_series(registry: &MetricsRegistry, tenant: &TenantId, entry: &TenantEntry) {
        let _ = entry.series.set(TenantSeries {
            spent: registry.float_counter_with(
                "ccdp_serve_budget_spent_total",
                &[("tenant", tenant.as_str())],
            ),
            utilization_ppm: registry.gauge_with(
                "ccdp_serve_budget_utilization_ppm",
                &[("tenant", tenant.as_str())],
            ),
        });
    }

    /// Granted spends across all tenants so far.
    pub fn charges(&self) -> u64 {
        self.charges.get()
    }

    /// Spends refused for an exhausted quota so far.
    pub fn refusals(&self) -> u64 {
        self.refusals.get()
    }

    /// Total ε granted across all tenants so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.epsilon_spent.get()
    }

    /// Registers `tenant` with a total ε quota.
    ///
    /// # Errors
    /// [`ServeError::TenantAlreadyRegistered`] if the tenant exists (quotas
    /// are immutable once granted — re-registering cannot launder a spent
    /// budget).
    ///
    /// # Panics
    /// Panics if `quota_epsilon` is not strictly positive and finite (same
    /// contract as [`PrivacyBudget::new`]).
    pub fn register(
        &self,
        tenant: impl Into<TenantId>,
        quota_epsilon: f64,
    ) -> Result<(), ServeError> {
        let tenant = tenant.into();
        let entry = Arc::new(TenantEntry {
            budget: Mutex::new(PrivacyBudget::new(quota_epsilon)),
            refusals: AtomicU64::new(0),
            series: OnceLock::new(),
        });
        {
            let mut map = self.write();
            if map.contains_key(&tenant) {
                return Err(ServeError::TenantAlreadyRegistered { tenant });
            }
            map.insert(tenant.clone(), Arc::clone(&entry));
        }
        if let Some(registry) = self
            .metrics
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            Self::ensure_series(registry, &tenant, &entry);
        }
        if let Some(journal) = self.journal() {
            journal.record(
                AuditEvent::new(AuditKind::TenantRegistered)
                    .tenant(tenant.as_str())
                    .epsilon(quota_epsilon, 0.0)
                    .detail("quota granted"),
            );
        }
        Ok(())
    }

    /// Atomically spends `epsilon` of `tenant`'s quota for `stage`.
    ///
    /// This is the single admission point of the serving tier: the check and
    /// the spend happen under the tenant's lock, so concurrent requests can
    /// never jointly overdraw the quota.
    pub fn try_spend(
        &self,
        tenant: &TenantId,
        stage: &str,
        epsilon: f64,
    ) -> Result<f64, ServeError> {
        self.try_spend_traced(tenant, stage, epsilon, None)
    }

    /// [`try_spend`](Self::try_spend), carrying the request's [`TraceId`]
    /// into the audit event for cross-correlation with the span trace.
    ///
    /// The audit event (grant or refusal) is recorded while the tenant's
    /// budget lock is held, so a tenant's journal sequence numbers strictly
    /// follow their spend order — the property replay depends on.
    pub fn try_spend_traced(
        &self,
        tenant: &TenantId,
        stage: &str,
        epsilon: f64,
        trace: Option<TraceId>,
    ) -> Result<f64, ServeError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            // PrivacyBudget::spend would panic on this; a serving tier must
            // refuse it as a typed error instead. Malformed requests are not
            // budget decisions, so nothing lands in the journal either.
            return Err(ServeError::InvalidEpsilon { value: epsilon });
        }
        let entry = self.account(tenant)?;
        let mut budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
        match budget.spend(stage, epsilon) {
            Ok(granted) => {
                self.charges.inc();
                self.epsilon_spent.add(granted);
                if let Some(series) = entry.series.get() {
                    series.spent.add(granted);
                    series
                        .utilization_ppm
                        .set((budget.utilization() * 1e6) as i64);
                }
                if let Some(journal) = self.journal() {
                    let (graph, version) = split_stage(stage);
                    journal.record(
                        AuditEvent::new(AuditKind::BudgetCharge)
                            .tenant(tenant.as_str())
                            .graph(graph, version)
                            .stage(stage)
                            .epsilon(epsilon, granted)
                            .trace(trace),
                    );
                }
                Ok(granted)
            }
            Err(exceeded) => {
                self.refusals.inc();
                entry.refusals.fetch_add(1, Ordering::Relaxed);
                if let Some(journal) = self.journal() {
                    let (graph, version) = split_stage(stage);
                    journal.record(
                        AuditEvent::new(AuditKind::BudgetRefusal)
                            .tenant(tenant.as_str())
                            .graph(graph, version)
                            .stage(stage)
                            .epsilon(epsilon, 0.0)
                            .trace(trace)
                            .detail(format!(
                                "requested {} with {} remaining",
                                exceeded.requested, exceeded.remaining
                            )),
                    );
                }
                Err(ServeError::BudgetExhausted {
                    tenant: tenant.clone(),
                    exceeded,
                })
            }
        }
    }

    /// Whether `tenant` could fund a spend of `epsilon` right now (advisory:
    /// another request may win the budget between this check and a spend).
    pub fn can_spend(&self, tenant: &TenantId, epsilon: f64) -> Result<bool, ServeError> {
        let entry = self.account(tenant)?;
        let budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
        Ok(budget.can_spend(epsilon))
    }

    /// Point-in-time account view for `tenant`.
    pub fn account_view(&self, tenant: &TenantId) -> Result<TenantAccount, ServeError> {
        let entry = self.account(tenant)?;
        let budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
        Ok(TenantAccount {
            tenant: tenant.clone(),
            quota_epsilon: budget.total_epsilon(),
            spent_epsilon: budget.spent_epsilon(),
            remaining_epsilon: budget.remaining_epsilon(),
            grants: budget.num_stages(),
        })
    }

    /// The full auditable state of `tenant`'s account: quota, exact spent
    /// sum, utilization, grant/refusal tallies and the per-stage ledger —
    /// the live side of the replay-equality contract.
    pub fn audit_snapshot(&self, tenant: &TenantId) -> Result<TenantAuditSnapshot, ServeError> {
        let entry = self.account(tenant)?;
        let budget = entry.budget.lock().unwrap_or_else(|p| p.into_inner());
        Ok(TenantAuditSnapshot {
            tenant: tenant.clone(),
            quota_epsilon: budget.total_epsilon(),
            spent_epsilon: budget.spent_epsilon(),
            utilization: budget.utilization(),
            charges: budget.num_stages() as u64,
            refusals: entry.refusals.load(Ordering::Relaxed),
            stages: budget.ledger().to_vec(),
        })
    }

    /// Verifies that replaying every tenant's journal reconstructs their
    /// live account **bit-for-bit** (spent sum, utilization, per-stage
    /// spends, grant and refusal counts). Returns the number of tenants
    /// verified, or a description of the first divergence.
    ///
    /// Only sound while the journal has not wrapped past any of the
    /// ledger's events (`journal.dropped() == 0` for the ledger's lifetime,
    /// or a complete JSONL sink replayed externally).
    pub fn verify_replay(&self, journal: &AuditJournal) -> Result<usize, String> {
        let tenants = self.tenants();
        for tenant in &tenants {
            let live = self
                .audit_snapshot(tenant)
                .map_err(|e| format!("tenant `{tenant}` vanished mid-verify: {e}"))?;
            let replay =
                replay_tenant(tenant.as_str(), &journal.events_for_tenant(tenant.as_str()));
            if replay.quota_epsilon.to_bits() != live.quota_epsilon.to_bits() {
                return Err(format!(
                    "tenant `{tenant}`: replayed quota {} != live {}",
                    replay.quota_epsilon, live.quota_epsilon
                ));
            }
            if replay.spent_epsilon.to_bits() != live.spent_epsilon.to_bits() {
                return Err(format!(
                    "tenant `{tenant}`: replayed spent {} != live {} (bitwise)",
                    replay.spent_epsilon, live.spent_epsilon
                ));
            }
            if replay.utilization().to_bits() != live.utilization.to_bits() {
                return Err(format!(
                    "tenant `{tenant}`: replayed utilization {} != live {}",
                    replay.utilization(),
                    live.utilization
                ));
            }
            if replay.charges != live.charges || replay.refusals != live.refusals {
                return Err(format!(
                    "tenant `{tenant}`: replayed charges/refusals {}/{} != live {}/{}",
                    replay.charges, replay.refusals, live.charges, live.refusals
                ));
            }
            if replay.stages.len() != live.stages.len()
                || replay
                    .stages
                    .iter()
                    .zip(live.stages.iter())
                    .any(|(a, b)| a.0 != b.0 || a.1.to_bits() != b.1.to_bits())
            {
                return Err(format!(
                    "tenant `{tenant}`: replayed stage ledger diverges from live ({} vs {} entries)",
                    replay.stages.len(),
                    live.stages.len()
                ));
            }
        }
        Ok(tenants.len())
    }

    /// All tenants, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self.read().keys().cloned().collect();
        out.sort();
        out
    }

    /// Point-in-time snapshot of every account, sorted by tenant.
    pub fn snapshot(&self) -> Vec<TenantAccount> {
        self.tenants()
            .into_iter()
            .filter_map(|t| self.account_view(&t).ok())
            .collect()
    }

    fn account(&self, tenant: &TenantId) -> Result<Arc<TenantEntry>, ServeError> {
        self.read()
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.clone(),
            })
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<TenantId, Arc<TenantEntry>>> {
        self.tenants.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<TenantId, Arc<TenantEntry>>> {
        self.tenants.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Splits a ledger stage into its graph coordinates: the streaming tier
/// names stages `id@version`, the serving tier names them by graph id.
fn split_stage(stage: &str) -> (&str, Option<u64>) {
    match stage.rsplit_once('@') {
        Some((graph, version)) => match version.parse() {
            Ok(v) => (graph, Some(v)),
            Err(_) => (stage, None),
        },
        None => (stage, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_once_only() {
        let ledger = BudgetLedger::new();
        ledger.register("acme", 2.0).unwrap();
        let err = ledger.register("acme", 100.0).unwrap_err();
        assert!(matches!(err, ServeError::TenantAlreadyRegistered { .. }));
        // The original quota survives the failed re-registration.
        let view = ledger.account_view(&TenantId::new("acme")).unwrap();
        assert_eq!(view.quota_epsilon, 2.0);
    }

    #[test]
    fn spending_is_metered_against_the_quota() {
        let ledger = BudgetLedger::new();
        ledger.register("acme", 1.0).unwrap();
        let t = TenantId::new("acme");
        assert!(ledger.can_spend(&t, 1.0).unwrap());
        ledger.try_spend(&t, "release", 0.6).unwrap();
        let err = ledger.try_spend(&t, "release", 0.6).unwrap_err();
        match err {
            ServeError::BudgetExhausted { tenant, exceeded } => {
                assert_eq!(tenant, t);
                assert!(exceeded.requested > exceeded.remaining);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // The refused spend consumed nothing.
        let view = ledger.account_view(&t).unwrap();
        assert!((view.spent_epsilon - 0.6).abs() < 1e-12);
        assert_eq!(view.grants, 1);
        // What remains is still spendable.
        ledger.try_spend(&t, "release", 0.4).unwrap();
        assert!(ledger.account_view(&t).unwrap().remaining_epsilon < 1e-9);
    }

    #[test]
    fn malformed_epsilon_is_a_typed_refusal_not_a_panic() {
        let ledger = BudgetLedger::new();
        ledger.register("t", 1.0).unwrap();
        let t = TenantId::new("t");
        for bad in [-0.5, 0.0, f64::NAN, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    ledger.try_spend(&t, "x", bad),
                    Err(ServeError::InvalidEpsilon { .. })
                ),
                "epsilon {bad} must be a typed refusal"
            );
        }
        assert_eq!(ledger.account_view(&t).unwrap().grants, 0);
    }

    #[test]
    fn unknown_tenants_are_typed_refusals() {
        let ledger = BudgetLedger::new();
        let t = TenantId::new("ghost");
        assert!(matches!(
            ledger.try_spend(&t, "x", 0.1).unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
        assert!(matches!(
            ledger.account_view(&t).unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
    }

    #[test]
    fn counters_track_charges_refusals_and_epsilon_and_survive_adoption() {
        let ledger = BudgetLedger::new();
        ledger.register("t", 1.0).unwrap();
        let t = TenantId::new("t");
        // Grants and an exhausted-quota refusal recorded while detached.
        ledger.try_spend(&t, "a", 0.25).unwrap();
        ledger.try_spend(&t, "b", 0.25).unwrap();
        assert!(ledger.try_spend(&t, "c", 0.75).is_err());
        // Invalid ε and unknown tenants are malformed requests, not budget
        // refusals — they must not count.
        let _ = ledger.try_spend(&t, "x", -1.0);
        let _ = ledger.try_spend(&TenantId::new("ghost"), "x", 0.1);
        assert_eq!((ledger.charges(), ledger.refusals()), (2, 1));
        assert!((ledger.epsilon_spent() - 0.5).abs() < 1e-12);
        // Adoption into a registry preserves the pre-publication history.
        let registry = MetricsRegistry::new();
        ledger.publish_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.value("ccdp_dp_budget_charges_total"), Some(2.0));
        assert_eq!(snap.value("ccdp_dp_budget_refusals_total"), Some(1.0));
        // And post-publication spends land in the same series.
        ledger.try_spend(&t, "d", 0.25).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.value("ccdp_dp_budget_charges_total"), Some(3.0));
        assert!((snap.value("ccdp_dp_budget_epsilon_spent_total").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn journal_records_ledger_decisions_in_tenant_order() {
        let ledger = BudgetLedger::new();
        let journal = Arc::new(AuditJournal::with_capacity(64));
        ledger.set_journal(Arc::clone(&journal));
        ledger.register("acme", 1.0).unwrap();
        let t = TenantId::new("acme");
        ledger.try_spend(&t, "g0", 0.5).unwrap();
        assert!(ledger.try_spend(&t, "g0@3", 0.75).is_err());
        // Malformed requests are not budget decisions: no events.
        let _ = ledger.try_spend(&t, "x", -1.0);
        let _ = ledger.try_spend(&TenantId::new("ghost"), "x", 0.1);
        let events = journal.events_for_tenant("acme");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, AuditKind::TenantRegistered);
        assert_eq!(events[0].epsilon_requested, 1.0);
        assert_eq!(events[1].kind, AuditKind::BudgetCharge);
        assert_eq!((events[1].graph.as_str(), events[1].version), ("g0", None));
        assert_eq!(events[2].kind, AuditKind::BudgetRefusal);
        assert_eq!(
            (events[2].graph.as_str(), events[2].version),
            ("g0", Some(3))
        );
        assert!(events[2].detail.contains("remaining"));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn replay_reconstructs_the_live_account_bit_for_bit() {
        let ledger = BudgetLedger::new();
        let journal = Arc::new(AuditJournal::with_capacity(256));
        ledger.set_journal(Arc::clone(&journal));
        ledger.register("a", 1.0).unwrap();
        ledger.register("b", 0.3).unwrap();
        let (a, b) = (TenantId::new("a"), TenantId::new("b"));
        // An awkward float mix so the bitwise claim is actually exercised.
        for eps in [0.1, 0.2, 0.3, 0.1] {
            let _ = ledger.try_spend(&a, "g", eps);
        }
        let _ = ledger.try_spend(&a, "g", 0.9); // refusal
        let _ = ledger.try_spend(&b, "h@1", 0.2);
        let _ = ledger.try_spend(&b, "h@2", 0.2); // refusal
        let verified = ledger
            .verify_replay(&journal)
            .expect("replay must match live");
        assert_eq!(verified, 2);
        // And the replayed values really are the fold of the events.
        let replay = ccdp_obs::replay_tenant("a", &journal.events_for_tenant("a"));
        let live = ledger.audit_snapshot(&a).unwrap();
        assert_eq!(replay.spent_epsilon.to_bits(), live.spent_epsilon.to_bits());
        assert_eq!(replay.refusals, 1);
        assert_eq!(live.stages.len(), 4);
    }

    #[test]
    fn per_tenant_series_track_spends_and_survive_late_registration() {
        let ledger = BudgetLedger::new();
        ledger.register("early", 1.0).unwrap();
        ledger
            .try_spend(&TenantId::new("early"), "g", 0.25)
            .unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        ledger.publish_metrics_shared(&registry);
        // Pre-publication spends are backfilled into the labeled series.
        let snap = registry.snapshot();
        assert!((snap.sum("ccdp_serve_budget_spent_total") - 0.25).abs() < 1e-12);
        // Tenants registered after publication get series too.
        ledger.register("late", 2.0).unwrap();
        ledger.try_spend(&TenantId::new("late"), "g", 1.0).unwrap();
        ledger
            .try_spend(&TenantId::new("early"), "g", 0.25)
            .unwrap();
        let snap = registry.snapshot();
        assert!((snap.sum("ccdp_serve_budget_spent_total") - 1.5).abs() < 1e-12);
        let ppm: Vec<(String, f64)> = snap
            .series
            .iter()
            .filter(|s| s.name == "ccdp_serve_budget_utilization_ppm")
            .map(|s| (s.labels[0].1.clone(), snap.sum(&s.name)))
            .collect();
        assert_eq!(ppm.len(), 2, "one utilization gauge per tenant");
        let early =
            registry.gauge_with("ccdp_serve_budget_utilization_ppm", &[("tenant", "early")]);
        assert_eq!(early.get(), 500_000, "0.5 utilization = 500000 ppm");
    }

    #[test]
    fn snapshot_lists_every_tenant_sorted() {
        let ledger = BudgetLedger::new();
        ledger.register("b", 1.0).unwrap();
        ledger.register("a", 2.0).unwrap();
        ledger.try_spend(&TenantId::new("a"), "s", 0.5).unwrap();
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, TenantId::new("a"));
        assert!((snap[0].spent_epsilon - 0.5).abs() < 1e-12);
        assert_eq!(snap[1].tenant, TenantId::new("b"));
        assert_eq!(snap[1].grants, 0);
    }
}
