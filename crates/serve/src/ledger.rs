//! Per-tenant privacy-budget accounting for the serving tier.
//!
//! Differential privacy composes: every ε-release a tenant receives adds to
//! the total ε spent on their behalf, so a server answering many requests
//! must meter each tenant against a quota *centrally* — per-request checks in
//! client code cannot see each other. [`BudgetLedger`] wraps one
//! [`PrivacyBudget`] accountant per tenant behind a per-tenant mutex:
//! admission is an atomic check-and-spend, so no interleaving of concurrent
//! requests can push a tenant past its quota (overspending is a typed
//! [`ServeError::BudgetExhausted`] refusal, never a silent grant).
//!
//! # Continual releases (the streaming tier)
//!
//! The `ccdp_stream` release scheduler charges this same ledger: every fired
//! re-estimation of an evolving graph spends its ε here *before* the
//! estimator runs, under the identical check-and-spend, with the ledger
//! stage named `graph-id@version` so a tenant's account reads as a versioned
//! audit trail of which snapshot each grant funded. Releases about
//! *different versions of one graph* still compose sequentially against the
//! tenant's single quota — node-DP composition is per tenant, not per
//! snapshot — and an exhausted quota stops that tenant's releases (typed
//! refusal) while ingestion and other tenants continue untouched.

use crate::error::ServeError;
use ccdp_dp::PrivacyBudget;
use ccdp_obs::{Counter, FloatCounter, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

pub use crate::ids::TenantId;

/// Point-in-time view of one tenant's account.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantAccount {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant's total ε quota.
    pub quota_epsilon: f64,
    /// ε spent so far.
    pub spent_epsilon: f64,
    /// ε still available.
    pub remaining_epsilon: f64,
    /// Number of granted spends.
    pub grants: usize,
}

/// A thread-safe map from tenant to privacy-budget accountant.
///
/// The tenant map is guarded by an `RwLock` (registration is rare, spending
/// is hot), and each tenant's [`PrivacyBudget`] sits behind its own `Mutex`,
/// so tenants never contend with each other on the spend path.
#[derive(Debug)]
pub struct BudgetLedger {
    tenants: RwLock<HashMap<TenantId, Arc<Mutex<PrivacyBudget>>>>,
    /// Granted spends across all tenants (detached until
    /// [`publish_metrics`](Self::publish_metrics) adopts it into a registry).
    charges: Counter,
    /// Spends refused for an exhausted quota.
    refusals: Counter,
    /// Total ε granted across all tenants.
    epsilon_spent: FloatCounter,
}

impl Default for BudgetLedger {
    fn default() -> Self {
        BudgetLedger {
            tenants: RwLock::new(HashMap::new()),
            charges: Counter::detached(),
            refusals: Counter::detached(),
            epsilon_spent: FloatCounter::detached(),
        }
    }
}

impl BudgetLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the ledger's counters in `registry` as the
    /// `ccdp_dp_budget_*` island. The ledger is typically constructed before
    /// any registry exists, so the counters start detached and are *adopted*
    /// here — grants recorded before publication stay visible in the scrape.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("ccdp_dp_budget_charges_total", &self.charges);
        registry.adopt_counter("ccdp_dp_budget_refusals_total", &self.refusals);
        registry.adopt_float_counter("ccdp_dp_budget_epsilon_spent_total", &self.epsilon_spent);
    }

    /// Granted spends across all tenants so far.
    pub fn charges(&self) -> u64 {
        self.charges.get()
    }

    /// Spends refused for an exhausted quota so far.
    pub fn refusals(&self) -> u64 {
        self.refusals.get()
    }

    /// Total ε granted across all tenants so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.epsilon_spent.get()
    }

    /// Registers `tenant` with a total ε quota.
    ///
    /// # Errors
    /// [`ServeError::TenantAlreadyRegistered`] if the tenant exists (quotas
    /// are immutable once granted — re-registering cannot launder a spent
    /// budget).
    ///
    /// # Panics
    /// Panics if `quota_epsilon` is not strictly positive and finite (same
    /// contract as [`PrivacyBudget::new`]).
    pub fn register(
        &self,
        tenant: impl Into<TenantId>,
        quota_epsilon: f64,
    ) -> Result<(), ServeError> {
        let tenant = tenant.into();
        let budget = Arc::new(Mutex::new(PrivacyBudget::new(quota_epsilon)));
        let mut map = self.write();
        if map.contains_key(&tenant) {
            return Err(ServeError::TenantAlreadyRegistered { tenant });
        }
        map.insert(tenant, budget);
        Ok(())
    }

    /// Atomically spends `epsilon` of `tenant`'s quota for `stage`.
    ///
    /// This is the single admission point of the serving tier: the check and
    /// the spend happen under the tenant's lock, so concurrent requests can
    /// never jointly overdraw the quota.
    pub fn try_spend(
        &self,
        tenant: &TenantId,
        stage: &str,
        epsilon: f64,
    ) -> Result<f64, ServeError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            // PrivacyBudget::spend would panic on this; a serving tier must
            // refuse it as a typed error instead.
            return Err(ServeError::InvalidEpsilon { value: epsilon });
        }
        let budget = self.account(tenant)?;
        let mut budget = budget.lock().unwrap_or_else(|p| p.into_inner());
        match budget.spend(stage, epsilon) {
            Ok(granted) => {
                self.charges.inc();
                self.epsilon_spent.add(granted);
                Ok(granted)
            }
            Err(exceeded) => {
                self.refusals.inc();
                Err(ServeError::BudgetExhausted {
                    tenant: tenant.clone(),
                    exceeded,
                })
            }
        }
    }

    /// Whether `tenant` could fund a spend of `epsilon` right now (advisory:
    /// another request may win the budget between this check and a spend).
    pub fn can_spend(&self, tenant: &TenantId, epsilon: f64) -> Result<bool, ServeError> {
        let budget = self.account(tenant)?;
        let budget = budget.lock().unwrap_or_else(|p| p.into_inner());
        Ok(budget.can_spend(epsilon))
    }

    /// Point-in-time account view for `tenant`.
    pub fn account_view(&self, tenant: &TenantId) -> Result<TenantAccount, ServeError> {
        let budget = self.account(tenant)?;
        let budget = budget.lock().unwrap_or_else(|p| p.into_inner());
        Ok(TenantAccount {
            tenant: tenant.clone(),
            quota_epsilon: budget.total_epsilon(),
            spent_epsilon: budget.spent_epsilon(),
            remaining_epsilon: budget.remaining_epsilon(),
            grants: budget.num_stages(),
        })
    }

    /// All tenants, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self.read().keys().cloned().collect();
        out.sort();
        out
    }

    /// Point-in-time snapshot of every account, sorted by tenant.
    pub fn snapshot(&self) -> Vec<TenantAccount> {
        self.tenants()
            .into_iter()
            .filter_map(|t| self.account_view(&t).ok())
            .collect()
    }

    fn account(&self, tenant: &TenantId) -> Result<Arc<Mutex<PrivacyBudget>>, ServeError> {
        self.read()
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.clone(),
            })
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<TenantId, Arc<Mutex<PrivacyBudget>>>> {
        self.tenants.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<TenantId, Arc<Mutex<PrivacyBudget>>>> {
        self.tenants.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_once_only() {
        let ledger = BudgetLedger::new();
        ledger.register("acme", 2.0).unwrap();
        let err = ledger.register("acme", 100.0).unwrap_err();
        assert!(matches!(err, ServeError::TenantAlreadyRegistered { .. }));
        // The original quota survives the failed re-registration.
        let view = ledger.account_view(&TenantId::new("acme")).unwrap();
        assert_eq!(view.quota_epsilon, 2.0);
    }

    #[test]
    fn spending_is_metered_against_the_quota() {
        let ledger = BudgetLedger::new();
        ledger.register("acme", 1.0).unwrap();
        let t = TenantId::new("acme");
        assert!(ledger.can_spend(&t, 1.0).unwrap());
        ledger.try_spend(&t, "release", 0.6).unwrap();
        let err = ledger.try_spend(&t, "release", 0.6).unwrap_err();
        match err {
            ServeError::BudgetExhausted { tenant, exceeded } => {
                assert_eq!(tenant, t);
                assert!(exceeded.requested > exceeded.remaining);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // The refused spend consumed nothing.
        let view = ledger.account_view(&t).unwrap();
        assert!((view.spent_epsilon - 0.6).abs() < 1e-12);
        assert_eq!(view.grants, 1);
        // What remains is still spendable.
        ledger.try_spend(&t, "release", 0.4).unwrap();
        assert!(ledger.account_view(&t).unwrap().remaining_epsilon < 1e-9);
    }

    #[test]
    fn malformed_epsilon_is_a_typed_refusal_not_a_panic() {
        let ledger = BudgetLedger::new();
        ledger.register("t", 1.0).unwrap();
        let t = TenantId::new("t");
        for bad in [-0.5, 0.0, f64::NAN, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    ledger.try_spend(&t, "x", bad),
                    Err(ServeError::InvalidEpsilon { .. })
                ),
                "epsilon {bad} must be a typed refusal"
            );
        }
        assert_eq!(ledger.account_view(&t).unwrap().grants, 0);
    }

    #[test]
    fn unknown_tenants_are_typed_refusals() {
        let ledger = BudgetLedger::new();
        let t = TenantId::new("ghost");
        assert!(matches!(
            ledger.try_spend(&t, "x", 0.1).unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
        assert!(matches!(
            ledger.account_view(&t).unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
    }

    #[test]
    fn counters_track_charges_refusals_and_epsilon_and_survive_adoption() {
        let ledger = BudgetLedger::new();
        ledger.register("t", 1.0).unwrap();
        let t = TenantId::new("t");
        // Grants and an exhausted-quota refusal recorded while detached.
        ledger.try_spend(&t, "a", 0.25).unwrap();
        ledger.try_spend(&t, "b", 0.25).unwrap();
        assert!(ledger.try_spend(&t, "c", 0.75).is_err());
        // Invalid ε and unknown tenants are malformed requests, not budget
        // refusals — they must not count.
        let _ = ledger.try_spend(&t, "x", -1.0);
        let _ = ledger.try_spend(&TenantId::new("ghost"), "x", 0.1);
        assert_eq!((ledger.charges(), ledger.refusals()), (2, 1));
        assert!((ledger.epsilon_spent() - 0.5).abs() < 1e-12);
        // Adoption into a registry preserves the pre-publication history.
        let registry = MetricsRegistry::new();
        ledger.publish_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.value("ccdp_dp_budget_charges_total"), Some(2.0));
        assert_eq!(snap.value("ccdp_dp_budget_refusals_total"), Some(1.0));
        // And post-publication spends land in the same series.
        ledger.try_spend(&t, "d", 0.25).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.value("ccdp_dp_budget_charges_total"), Some(3.0));
        assert!((snap.value("ccdp_dp_budget_epsilon_spent_total").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_lists_every_tenant_sorted() {
        let ledger = BudgetLedger::new();
        ledger.register("b", 1.0).unwrap();
        ledger.register("a", 2.0).unwrap();
        ledger.try_spend(&TenantId::new("a"), "s", 0.5).unwrap();
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, TenantId::new("a"));
        assert!((snap[0].spent_epsilon - 0.5).abs() < 1e-12);
        assert_eq!(snap[1].tenant, TenantId::new("b"));
        assert_eq!(snap[1].grants, 0);
    }
}
