//! Serving metrics: counters, queue depth and latency percentiles.
//!
//! [`ServeStats`] is the server's always-on instrument panel: lock-free
//! counters on the hot path (one atomic bump per event), a queue-depth gauge
//! with a high-water mark, and a log-bucket latency histogram (the
//! [`ccdp_obs::LogHistogram`] bucketing) from which [`StatsSnapshot`]
//! computes p50/p99. Recording a latency is one atomic increment into a
//! log-spaced bucket — no lock, no allocation, no reservoir to contend on —
//! so the instrument costs the same at the millionth request as at the
//! first.
//!
//! Since the observability tier, the counters are [`ccdp_obs`] registry
//! handles: built with [`ServeStats::with_metrics`], the same atomics back
//! both [`snapshot`](ServeStats::snapshot) (`GET /stats`) and the
//! `ccdp_serve_*` series of the Prometheus exposition (`GET /metrics`), so
//! the two surfaces can never disagree about a counter.
//!
//! # Snapshot coherence
//!
//! A snapshot is taken while recorders race it, and it is **racy by
//! design**: it never stops the world, so the set of counters it reads is
//! not a single atomic cut. What *is* guaranteed is a one-sided invariant:
//! outcome counters never run ahead of `received`. Every recorder publishes
//! its outcome increment behind a release fence, and the snapshot reads all
//! outcome counters **before** one acquire fence and `received` **after**
//! it; if the snapshot observes an outcome increment, the matching
//! `received` increment (which happens-before it via the queue handoff) is
//! guaranteed visible. So `completed + budget_refusals + failed ≤ received`
//! always holds in a snapshot, and `/stats` and `/metrics` can never report
//! more answered requests than accepted ones. The converse is deliberately
//! weak — a snapshot may see `received` bumps whose outcomes land a
//! microsecond later; that skew is the in-flight window, not an error.

use ccdp_obs::{Counter, Gauge, LogHistogram, MetricsRegistry};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fixed-size, lock-free histogram of microsecond latencies with
/// log-spaced buckets — a thin serving-tier wrapper over the shared
/// [`ccdp_obs::LogHistogram`] bucketing (40 octaves × 8 sub-buckets;
/// quantiles report bucket upper edges, conservative and within 12.5% above
/// ~8 µs).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    inner: LogHistogram,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency. Lock-free: one relaxed atomic increment (plus
    /// the running sum).
    pub fn record(&self, latency: Duration) {
        self.inner.record(latency);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of everything recorded so far.
    /// `Duration::ZERO` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        self.inner.quantile(q)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }
}

/// Live counters of a running server, backed by [`ccdp_obs`] instruments.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    received: Counter,
    completed: Counter,
    rejected_queue_full: Counter,
    budget_refusals: Counter,
    failed: Counter,
    /// Signed: a worker may record its dequeue before the submitting thread
    /// records the matching enqueue, so the gauge can transiently dip below
    /// zero (snapshots clamp it).
    queue_depth: Gauge,
    peak_queue_depth: Gauge,
    latencies: Arc<LogHistogram>,
}

impl ServeStats {
    /// Fresh detached counters (not visible in any registry) with the clock
    /// started now.
    pub fn new() -> Self {
        ServeStats {
            started: Instant::now(),
            received: Counter::detached(),
            completed: Counter::detached(),
            rejected_queue_full: Counter::detached(),
            budget_refusals: Counter::detached(),
            failed: Counter::detached(),
            queue_depth: Gauge::detached(),
            peak_queue_depth: Gauge::detached(),
            latencies: Arc::new(LogHistogram::new()),
        }
    }

    /// Counters registered into `registry` as the `ccdp_serve_*` series:
    /// the snapshot and the Prometheus exposition share one set of atomics.
    pub fn with_metrics(registry: &MetricsRegistry) -> Self {
        ServeStats {
            started: Instant::now(),
            received: registry.counter("ccdp_serve_requests_total"),
            completed: registry.counter("ccdp_serve_completed_total"),
            rejected_queue_full: registry.counter("ccdp_serve_rejected_queue_full_total"),
            budget_refusals: registry.counter("ccdp_serve_budget_refusals_total"),
            failed: registry.counter("ccdp_serve_failed_total"),
            queue_depth: registry.gauge("ccdp_serve_queue_depth"),
            peak_queue_depth: registry.gauge("ccdp_serve_queue_depth_peak"),
            latencies: registry.histogram("ccdp_serve_latency_seconds"),
        }
    }

    /// Records an *accepted* enqueue (rejected submissions never touch the
    /// depth gauge or the peak, so backpressure storms cannot inflate them);
    /// returns the new queue depth.
    pub(crate) fn on_enqueue(&self) -> i64 {
        self.received.inc();
        let depth = self.queue_depth.add(1);
        self.peak_queue_depth.raise_to(depth);
        depth
    }

    /// Records a dequeue by a worker.
    pub(crate) fn on_dequeue(&self) {
        self.queue_depth.add(-1);
    }

    /// Records a queue-full rejection.
    pub(crate) fn on_queue_full(&self) {
        self.rejected_queue_full.inc();
    }

    /// Records a finished request and its latency. The release fence orders
    /// this outcome increment after everything the request did — in
    /// particular after its `received` increment, whose visibility the
    /// snapshot's acquire fence relies on (see the module docs).
    pub(crate) fn on_done(&self, latency: Duration, outcome: RequestOutcome) {
        fence(Ordering::Release);
        match outcome {
            RequestOutcome::Completed => self.completed.inc(),
            RequestOutcome::BudgetRefused => self.budget_refusals.inc(),
            RequestOutcome::Failed => self.failed.inc(),
        };
        self.latencies.record(latency);
    }

    /// Current queue depth (requests accepted but not yet picked up).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get().max(0) as u64
    }

    /// Point-in-time snapshot (percentiles computed from the latency
    /// histogram buckets).
    ///
    /// Racy by design — recorders are never paused — but one-sided
    /// coherent: all outcome counters are loaded **before** a single
    /// acquire fence and `received` **after** it, so the snapshot can never
    /// report more outcomes than accepted requests (module docs have the
    /// full argument).
    pub fn snapshot(&self) -> StatsSnapshot {
        let elapsed = self.started.elapsed();
        // Outcome counters first…
        let completed = self.completed.get();
        let budget_refusals = self.budget_refusals.get();
        let failed = self.failed.get();
        let rejected_queue_full = self.rejected_queue_full.get();
        let p50_latency = self.latencies.quantile(0.50);
        let p99_latency = self.latencies.quantile(0.99);
        // …then the single acquire fence pairing with `on_done`'s release
        // fence…
        fence(Ordering::Acquire);
        // …then the acceptance counter, guaranteed to include the enqueue of
        // every outcome observed above.
        let received = self.received.get();
        StatsSnapshot {
            elapsed,
            received,
            completed,
            rejected_queue_full,
            budget_refusals,
            failed,
            queue_depth: self.queue_depth.get().max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.get().max(0) as u64,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50_latency,
            p99_latency,
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// How one request ended (for counter purposes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestOutcome {
    /// A release was produced.
    Completed,
    /// The tenant's budget refused the spend.
    BudgetRefused,
    /// Any other failure (unknown graph/tenant/version, estimator error).
    Failed,
}

/// Point-in-time metrics of a server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Time since the stats were created (≈ server start).
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that produced a release.
    pub completed: u64,
    /// Submissions refused with [`QueueFull`](crate::ServeError::QueueFull).
    pub rejected_queue_full: u64,
    /// Requests refused by a tenant's budget ledger.
    pub budget_refusals: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Requests accepted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Completed requests per second of elapsed time.
    pub throughput_rps: f64,
    /// Median end-to-end latency (submit → response), reported at histogram
    /// bucket resolution (within 12.5% above ~8 µs, never under-reported).
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency (same bucket resolution).
    pub p99_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact-sample tolerance of the histogram: quantiles land on a
    /// bucket upper edge, at most 12.5% above the exact value.
    fn assert_within_bucket(got: Duration, exact: Duration) {
        assert!(
            got >= exact,
            "bucket quantile must never under-report: got {got:?} < exact {exact:?}"
        );
        assert!(
            got.as_secs_f64() <= exact.as_secs_f64() * 1.125 + 1e-6,
            "bucket quantile {got:?} too far above exact {exact:?}"
        );
    }

    #[test]
    fn counters_track_the_request_lifecycle() {
        let stats = ServeStats::new();
        assert_eq!(stats.on_enqueue(), 1);
        assert_eq!(stats.on_enqueue(), 2);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(3), RequestOutcome::Completed);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(5), RequestOutcome::BudgetRefused);
        stats.on_queue_full();
        let snap = stats.snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.budget_refusals, 1);
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.peak_queue_depth, 2);
    }

    #[test]
    fn registry_backed_stats_share_atomics_with_the_exposition() {
        let registry = MetricsRegistry::new();
        let stats = ServeStats::with_metrics(&registry);
        stats.on_enqueue();
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(2), RequestOutcome::Completed);
        let snap = registry.snapshot();
        assert_eq!(snap.value("ccdp_serve_requests_total"), Some(1.0));
        assert_eq!(snap.value("ccdp_serve_completed_total"), Some(1.0));
        assert_eq!(snap.value("ccdp_serve_latency_seconds"), Some(1.0));
        let text = registry.render_prometheus();
        assert!(text.contains("ccdp_serve_requests_total 1"));
    }

    #[test]
    fn percentiles_come_from_log_spaced_buckets() {
        let hist = LatencyHistogram::new();
        for us in 1..=100u64 {
            hist.record(Duration::from_micros(us));
        }
        assert_within_bucket(hist.quantile(0.50), Duration::from_micros(50));
        assert_within_bucket(hist.quantile(0.99), Duration::from_micros(99));
        assert_within_bucket(hist.quantile(1.0), Duration::from_micros(100));
        assert_eq!(hist.count(), 100);
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_percentiles_reflect_recorded_latencies() {
        let stats = ServeStats::new();
        for ms in [1u64, 2, 3, 4, 100] {
            stats.on_enqueue();
            stats.on_dequeue();
            stats.on_done(Duration::from_millis(ms), RequestOutcome::Completed);
        }
        let snap = stats.snapshot();
        assert_within_bucket(snap.p50_latency, Duration::from_millis(3));
        assert_within_bucket(snap.p99_latency, Duration::from_millis(100));
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn histogram_recording_is_lock_free_under_contention() {
        // 8 threads hammer one histogram; every sample must be accounted for.
        let stats = std::sync::Arc::new(ServeStats::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let stats = std::sync::Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        stats.on_enqueue();
                        stats.on_dequeue();
                        stats.on_done(
                            Duration::from_micros(1 + (t * 1000 + i) % 5000),
                            RequestOutcome::Completed,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 8000);
        assert_eq!(stats.latencies.count(), 8000, "no sample may be dropped");
        assert!(snap.p50_latency > Duration::ZERO);
        assert!(snap.p99_latency >= snap.p50_latency);
    }

    #[test]
    fn snapshot_never_reports_more_outcomes_than_received() {
        // Racing recorders: each worker thread runs the full lifecycle in a
        // tight loop while the main thread snapshots continuously. Any
        // snapshot observing `outcomes > received` would mean the acquire
        // fence ordering is broken.
        let stats = std::sync::Arc::new(ServeStats::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let stats = std::sync::Arc::clone(&stats);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        stats.on_enqueue();
                        stats.on_dequeue();
                        let outcome = match (w + i) % 3 {
                            0 => RequestOutcome::Completed,
                            1 => RequestOutcome::BudgetRefused,
                            _ => RequestOutcome::Failed,
                        };
                        stats.on_done(Duration::from_micros(1), outcome);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let snap = stats.snapshot();
            let outcomes = snap.completed + snap.budget_refusals + snap.failed;
            assert!(
                outcomes <= snap.received,
                "snapshot incoherent: {outcomes} outcomes > {} received",
                snap.received
            );
        }
        stop.store(true, Ordering::Relaxed);
        for h in workers {
            h.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(
            snap.completed + snap.budget_refusals + snap.failed,
            snap.received,
            "quiescent snapshot must balance exactly"
        );
    }
}
