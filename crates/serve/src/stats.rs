//! Serving metrics: counters, queue depth and latency percentiles.
//!
//! [`ServeStats`] is the server's always-on instrument panel: lock-free
//! counters on the hot path (one atomic bump per event), a queue-depth gauge
//! with a high-water mark, and a mutex-guarded reservoir of per-request
//! latencies from which [`StatsSnapshot`] computes p50/p99. Snapshots are
//! point-in-time and cheap enough to take mid-run.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on stored latency samples (a uniform-ish reservoir beyond this).
const MAX_LATENCY_SAMPLES: usize = 65_536;

/// Live counters of a running server.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    received: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    budget_refusals: AtomicU64,
    failed: AtomicU64,
    /// Signed: a worker may record its dequeue before the submitting thread
    /// records the matching enqueue, so the gauge can transiently dip below
    /// zero (snapshots clamp it).
    queue_depth: AtomicI64,
    peak_queue_depth: AtomicI64,
    latencies_us: Mutex<Vec<u64>>,
    /// Total samples ever offered (drives reservoir replacement).
    latency_samples_seen: AtomicU64,
}

impl ServeStats {
    /// Fresh counters with the clock started now.
    pub fn new() -> Self {
        ServeStats {
            started: Instant::now(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            budget_refusals: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            peak_queue_depth: AtomicI64::new(0),
            latencies_us: Mutex::new(Vec::new()),
            latency_samples_seen: AtomicU64::new(0),
        }
    }

    /// Records an *accepted* enqueue (rejected submissions never touch the
    /// depth gauge or the peak, so backpressure storms cannot inflate them);
    /// returns the new queue depth.
    pub(crate) fn on_enqueue(&self) -> i64 {
        self.received.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    /// Records a dequeue by a worker.
    pub(crate) fn on_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a queue-full rejection.
    pub(crate) fn on_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished request and its latency.
    pub(crate) fn on_done(&self, latency: Duration, outcome: RequestOutcome) {
        match outcome {
            RequestOutcome::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            RequestOutcome::BudgetRefused => self.budget_refusals.fetch_add(1, Ordering::Relaxed),
            RequestOutcome::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let seen = self.latency_samples_seen.fetch_add(1, Ordering::Relaxed) as usize;
        let mut lat = self.latencies_us.lock().unwrap_or_else(|p| p.into_inner());
        if lat.len() < MAX_LATENCY_SAMPLES {
            lat.push(us);
        } else {
            // Cheap deterministic reservoir: overwrite a rolling slot so a
            // long run keeps a bounded, recency-mixed sample.
            lat[seen % MAX_LATENCY_SAMPLES] = us;
        }
    }

    /// Current queue depth (requests accepted but not yet picked up).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Point-in-time snapshot (percentiles computed over the sample
    /// reservoir).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut lat = self
            .latencies_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        lat.sort_unstable();
        let elapsed = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        StatsSnapshot {
            elapsed,
            received: self.received.load(Ordering::Relaxed),
            completed,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            budget_refusals: self.budget_refusals.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed).max(0) as u64,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50_latency: percentile(&lat, 0.50),
            p99_latency: percentile(&lat, 0.99),
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// How one request ended (for counter purposes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestOutcome {
    /// A release was produced.
    Completed,
    /// The tenant's budget refused the spend.
    BudgetRefused,
    /// Any other failure (unknown graph/tenant, estimator error).
    Failed,
}

/// Point-in-time metrics of a server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Time since the stats were created (≈ server start).
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that produced a release.
    pub completed: u64,
    /// Submissions refused with [`QueueFull`](crate::ServeError::QueueFull).
    pub rejected_queue_full: u64,
    /// Requests refused by a tenant's budget ledger.
    pub budget_refusals: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Requests accepted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Completed requests per second of elapsed time.
    pub throughput_rps: f64,
    /// Median end-to-end latency (submit → response).
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
}

/// Nearest-rank percentile over an ascending-sorted sample of microseconds.
fn percentile(sorted_us: &[u64], q: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    Duration::from_micros(sorted_us[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_the_request_lifecycle() {
        let stats = ServeStats::new();
        assert_eq!(stats.on_enqueue(), 1);
        assert_eq!(stats.on_enqueue(), 2);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(3), RequestOutcome::Completed);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(5), RequestOutcome::BudgetRefused);
        stats.on_queue_full();
        let snap = stats.snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.budget_refusals, 1);
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.peak_queue_depth, 2);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 0.50), Duration::from_micros(50));
        assert_eq!(percentile(&us, 0.99), Duration::from_micros(99));
        assert_eq!(percentile(&us, 1.0), Duration::from_micros(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[7], 0.99), Duration::from_micros(7));
    }

    #[test]
    fn snapshot_percentiles_reflect_recorded_latencies() {
        let stats = ServeStats::new();
        for ms in [1u64, 2, 3, 4, 100] {
            stats.on_enqueue();
            stats.on_dequeue();
            stats.on_done(Duration::from_millis(ms), RequestOutcome::Completed);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.p50_latency, Duration::from_millis(3));
        assert_eq!(snap.p99_latency, Duration::from_millis(100));
        assert!(snap.throughput_rps > 0.0);
    }
}
