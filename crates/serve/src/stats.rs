//! Serving metrics: counters, queue depth and latency percentiles.
//!
//! [`ServeStats`] is the server's always-on instrument panel: lock-free
//! counters on the hot path (one atomic bump per event), a queue-depth gauge
//! with a high-water mark, and a fixed-bucket [`LatencyHistogram`] of
//! per-request latencies from which [`StatsSnapshot`] computes p50/p99.
//! Recording a latency is one atomic increment into a log-spaced bucket — no
//! lock, no allocation, no reservoir to contend on — so the instrument costs
//! the same at the millionth request as at the first. Snapshots are
//! point-in-time and cheap enough to take mid-run.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of octaves (powers of two of microseconds) the histogram spans:
/// 1 µs up to ~2^40 µs ≈ 12.7 days, far beyond any serving latency.
const OCTAVES: usize = 40;

/// Sub-buckets per octave: log-spaced resolution of one eighth of an octave,
/// bounding the relative quantile error at 12.5%.
const SUBS: usize = 8;

const NUM_BUCKETS: usize = OCTAVES * SUBS;

/// A fixed-size, lock-free histogram of microsecond latencies with
/// log-spaced buckets.
///
/// Bucket `i = octave · 8 + sub` covers
/// `[2^octave · (1 + sub/8), 2^octave · (1 + (sub+1)/8))` microseconds;
/// quantiles report a bucket's upper edge, so they are conservative (never
/// under-report) and within 12.5% of the exact sample quantile above ~8 µs.
/// Below 8 µs the integer-microsecond bucket edges dominate: the error is
/// bounded by 1 µs absolute instead (e.g. all-1 µs samples report 2 µs).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one latency (sub-microsecond values land in the first
    /// bucket; values beyond the range land in the last). Lock-free: one
    /// relaxed atomic increment.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of everything recorded so far:
    /// the upper edge of the bucket where the cumulative count crosses the
    /// rank — conservative (never under-reports) and within 12.5% of the
    /// exact sample quantile above ~8 µs (1 µs absolute below).
    /// `Duration::ZERO` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        bucket_percentile(&self.counts(), q)
    }

    fn index(us: u64) -> usize {
        let us = us.max(1);
        let octave = 63 - us.leading_zeros() as usize;
        if octave >= OCTAVES {
            return NUM_BUCKETS - 1;
        }
        let base = 1u64 << octave;
        // (us - base) * SUBS / base, exact in u64: us - base < 2^40.
        let sub = (((us - base) * SUBS as u64) >> octave) as usize;
        octave * SUBS + sub.min(SUBS - 1)
    }

    /// Exclusive upper edge of bucket `idx` in microseconds. The division
    /// rounds up so the edge stays exclusive even in the lowest octaves,
    /// where an eighth of the octave is below one microsecond.
    fn upper_edge_us(idx: usize) -> u64 {
        let (octave, sub) = (idx / SUBS, idx % SUBS);
        let base = 1u64 << octave;
        base + ((sub as u64 + 1) * base).div_ceil(SUBS as u64)
    }

    /// Point-in-time copy of the bucket counts.
    fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank percentile over a bucket-count vector: the upper edge of the
/// bucket where the cumulative count crosses the rank.
fn bucket_percentile(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (idx, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Duration::from_micros(LatencyHistogram::upper_edge_us(idx));
        }
    }
    Duration::from_micros(LatencyHistogram::upper_edge_us(NUM_BUCKETS - 1))
}

/// Live counters of a running server.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    received: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    budget_refusals: AtomicU64,
    failed: AtomicU64,
    /// Signed: a worker may record its dequeue before the submitting thread
    /// records the matching enqueue, so the gauge can transiently dip below
    /// zero (snapshots clamp it).
    queue_depth: AtomicI64,
    peak_queue_depth: AtomicI64,
    latencies: LatencyHistogram,
}

impl ServeStats {
    /// Fresh counters with the clock started now.
    pub fn new() -> Self {
        ServeStats {
            started: Instant::now(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            budget_refusals: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            peak_queue_depth: AtomicI64::new(0),
            latencies: LatencyHistogram::new(),
        }
    }

    /// Records an *accepted* enqueue (rejected submissions never touch the
    /// depth gauge or the peak, so backpressure storms cannot inflate them);
    /// returns the new queue depth.
    pub(crate) fn on_enqueue(&self) -> i64 {
        self.received.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    /// Records a dequeue by a worker.
    pub(crate) fn on_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a queue-full rejection.
    pub(crate) fn on_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished request and its latency.
    pub(crate) fn on_done(&self, latency: Duration, outcome: RequestOutcome) {
        match outcome {
            RequestOutcome::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            RequestOutcome::BudgetRefused => self.budget_refusals.fetch_add(1, Ordering::Relaxed),
            RequestOutcome::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.latencies.record(latency);
    }

    /// Current queue depth (requests accepted but not yet picked up).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Point-in-time snapshot (percentiles computed from the latency
    /// histogram buckets).
    pub fn snapshot(&self) -> StatsSnapshot {
        let counts = self.latencies.counts();
        let elapsed = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        StatsSnapshot {
            elapsed,
            received: self.received.load(Ordering::Relaxed),
            completed,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            budget_refusals: self.budget_refusals.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed).max(0) as u64,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50_latency: bucket_percentile(&counts, 0.50),
            p99_latency: bucket_percentile(&counts, 0.99),
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// How one request ended (for counter purposes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestOutcome {
    /// A release was produced.
    Completed,
    /// The tenant's budget refused the spend.
    BudgetRefused,
    /// Any other failure (unknown graph/tenant/version, estimator error).
    Failed,
}

/// Point-in-time metrics of a server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Time since the stats were created (≈ server start).
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that produced a release.
    pub completed: u64,
    /// Submissions refused with [`QueueFull`](crate::ServeError::QueueFull).
    pub rejected_queue_full: u64,
    /// Requests refused by a tenant's budget ledger.
    pub budget_refusals: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Requests accepted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Completed requests per second of elapsed time.
    pub throughput_rps: f64,
    /// Median end-to-end latency (submit → response), reported at histogram
    /// bucket resolution (within 12.5% above ~8 µs, never under-reported).
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency (same bucket resolution).
    pub p99_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact-sample tolerance of the histogram: quantiles land on a
    /// bucket upper edge, at most 12.5% above the exact value.
    fn assert_within_bucket(got: Duration, exact: Duration) {
        assert!(
            got >= exact,
            "bucket quantile must never under-report: got {got:?} < exact {exact:?}"
        );
        assert!(
            got.as_secs_f64() <= exact.as_secs_f64() * 1.125 + 1e-6,
            "bucket quantile {got:?} too far above exact {exact:?}"
        );
    }

    #[test]
    fn counters_track_the_request_lifecycle() {
        let stats = ServeStats::new();
        assert_eq!(stats.on_enqueue(), 1);
        assert_eq!(stats.on_enqueue(), 2);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(3), RequestOutcome::Completed);
        stats.on_dequeue();
        stats.on_done(Duration::from_millis(5), RequestOutcome::BudgetRefused);
        stats.on_queue_full();
        let snap = stats.snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.budget_refusals, 1);
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.peak_queue_depth, 2);
    }

    #[test]
    fn bucket_index_and_edges_are_consistent() {
        // Every recordable value lands in a bucket whose range contains it.
        for us in [0u64, 1, 2, 3, 7, 8, 100, 1000, 2048, 3000, 1 << 20, 1 << 45] {
            let idx = LatencyHistogram::index(us);
            let hi = LatencyHistogram::upper_edge_us(idx);
            if (1..1 << OCTAVES).contains(&us) {
                assert!(us < hi, "us {us} must fall below its bucket edge {hi}");
                assert!(
                    hi as f64 <= (us.max(1) as f64) * 1.125 + 1.0,
                    "edge {hi} too far above {us}"
                );
            }
            assert!(idx < NUM_BUCKETS);
        }
        // Buckets are monotone: larger latencies never map to earlier buckets.
        let mut last = 0;
        for us in 1..10_000u64 {
            let idx = LatencyHistogram::index(us);
            assert!(idx >= last, "bucket index regressed at {us}");
            last = idx;
        }
    }

    #[test]
    fn percentiles_come_from_log_spaced_buckets() {
        let hist = LatencyHistogram::new();
        for us in 1..=100u64 {
            hist.record(Duration::from_micros(us));
        }
        assert_within_bucket(hist.quantile(0.50), Duration::from_micros(50));
        assert_within_bucket(hist.quantile(0.99), Duration::from_micros(99));
        assert_within_bucket(hist.quantile(1.0), Duration::from_micros(100));
        assert_eq!(bucket_percentile(&[0; NUM_BUCKETS], 0.5), Duration::ZERO);
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_percentiles_reflect_recorded_latencies() {
        let stats = ServeStats::new();
        for ms in [1u64, 2, 3, 4, 100] {
            stats.on_enqueue();
            stats.on_dequeue();
            stats.on_done(Duration::from_millis(ms), RequestOutcome::Completed);
        }
        let snap = stats.snapshot();
        assert_within_bucket(snap.p50_latency, Duration::from_millis(3));
        assert_within_bucket(snap.p99_latency, Duration::from_millis(100));
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn histogram_recording_is_lock_free_under_contention() {
        // 8 threads hammer one histogram; every sample must be accounted for.
        let stats = std::sync::Arc::new(ServeStats::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let stats = std::sync::Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        stats.on_enqueue();
                        stats.on_dequeue();
                        stats.on_done(
                            Duration::from_micros(1 + (t * 1000 + i) % 5000),
                            RequestOutcome::Completed,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 8000);
        let total: u64 = stats.latencies.counts().iter().sum();
        assert_eq!(total, 8000, "no sample may be dropped");
        assert!(snap.p50_latency > Duration::ZERO);
        assert!(snap.p99_latency >= snap.p50_latency);
    }
}
