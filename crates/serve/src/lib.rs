//! Concurrent multi-tenant serving tier for node-private
//! connected-components releases.
//!
//! The estimator crates make a *single* estimate fast; this crate makes a
//! *fleet* of them servable. It owns everything a caller would otherwise
//! hand-roll around [`PrivateCcEstimator`](ccdp_core::PrivateCcEstimator):
//!
//! * [`registry`] — the sharded, lock-striped, version-aware
//!   [`GraphRegistry`]: a shared catalog of immutable `Arc<Graph>` snapshot
//!   histories (insert/get by `(GraphId, GraphVersion)`, a latest pointer,
//!   expiry of stale versions) with plain-text edge-list ingestion.
//! * [`ledger`] — the per-tenant [`BudgetLedger`]: one
//!   [`PrivacyBudget`](ccdp_dp::PrivacyBudget) accountant per tenant behind a
//!   per-tenant lock, so no interleaving of concurrent requests can overdraw
//!   an ε quota (overspending is a typed refusal).
//! * [`server`] — the [`Server`]: a fixed worker pool over a bounded queue
//!   with typed [`ServeError::QueueFull`] backpressure and graceful
//!   drain-on-shutdown. All workers share one
//!   [`ExtensionCache`](ccdp_core::ExtensionCache), whose single-flight
//!   table coalesces concurrent misses on the same (graph, grid, backend)
//!   key into one family evaluation.
//! * [`stats`] — [`ServeStats`] / [`StatsSnapshot`]: throughput, queue
//!   depth, refusal counters, and p50/p99 latency from a lock-free
//!   log-spaced-bucket [`LatencyHistogram`].
//! * [`loadgen`] — the deterministic [`LoadSpec`] load generator and its
//!   [`LoadReport`] (the CI smoke artifact).
//! * [`json`] — the one hand-rolled JSON codec every tier emits and parses
//!   with ([`JsonWriter`] / [`json::parse`]); the wire format has a single
//!   source of truth.
//! * [`error`] — the typed [`ServeError`] failure surface.
//!
//! # Quick start
//!
//! ```
//! use ccdp_serve::{
//!     BudgetLedger, GraphRegistry, ServeConfig, ServeRequest, Server,
//! };
//! use ccdp_graph::generators;
//! use std::sync::Arc;
//!
//! // A catalog of graphs and a ledger of tenant ε quotas, shared by fleets.
//! let registry = Arc::new(GraphRegistry::new());
//! registry.insert("social/day-0", generators::planted_star_forest(20, 3, 5));
//! let ledger = Arc::new(BudgetLedger::new());
//! ledger.register("analytics-team", 5.0).unwrap();
//!
//! // A 2-worker server; requests are answered with typed releases.
//! let server = Server::start(ServeConfig::new().with_workers(2), registry, ledger);
//! let response = server
//!     .submit(ServeRequest::new("analytics-team", "social/day-0", 1.0))
//!     .unwrap()
//!     .wait();
//! let release = response.result.unwrap();
//! assert!(release.value().is_finite());
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

pub mod error;
pub mod ids;
pub mod json;
pub mod ledger;
pub mod loadgen;
pub mod registry;
pub mod server;
pub mod stats;

pub use ccdp_dp::BudgetExceeded;
pub use ccdp_graph::GraphVersion;
pub use error::ServeError;
pub use json::{JsonParseError, JsonValue, JsonWriter};
pub use ledger::{BudgetLedger, TenantAccount, TenantAuditSnapshot, TenantId};
pub use loadgen::{GraphSpec, LoadReport, LoadSpec, TenantSpec};
pub use registry::{GraphId, GraphRegistry};
pub use server::{PendingResponse, ServeConfig, ServeRequest, ServeResponse, Server};
pub use stats::{LatencyHistogram, ServeStats, StatsSnapshot};
