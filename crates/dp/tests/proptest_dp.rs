//! Property-based tests for the DP mechanisms.

use ccdp_dp::composition::PrivacyBudget;
use ccdp_dp::exponential::selection_probabilities;
use ccdp_dp::gem::{generalized_exponential_mechanism, power_of_two_grid, GemCandidate};
use ccdp_dp::laplace::LaplaceNoise;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn laplace_tail_is_monotone_decreasing(scale in 0.1f64..10.0, t1 in 0.0f64..5.0, dt in 0.0f64..5.0) {
        let noise = LaplaceNoise::new(scale);
        prop_assert!(noise.tail_probability(t1 + dt) <= noise.tail_probability(t1) + 1e-12);
    }

    #[test]
    fn laplace_quantile_round_trips(scale in 0.1f64..10.0, beta in 0.001f64..1.0) {
        let noise = LaplaceNoise::new(scale);
        let t = noise.quantile_for_tail(beta);
        prop_assert!((noise.tail_probability(t) - beta).abs() < 1e-9);
    }

    #[test]
    fn laplace_samples_are_finite(scale in 0.0f64..100.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = LaplaceNoise::new(scale);
        for _ in 0..50 {
            prop_assert!(noise.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn exponential_mechanism_probabilities_are_a_distribution(
        scores in proptest::collection::vec(-100.0f64..100.0, 1..12),
        eps in 0.01f64..5.0,
        sens in 0.1f64..10.0,
    ) {
        let probs = selection_probabilities(&scores, sens, eps);
        prop_assert_eq!(probs.len(), scores.len());
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        // The best (lowest) score never has the strictly smallest probability.
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let max_p = probs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(probs[best] >= max_p - 1e-9);
    }

    #[test]
    fn gem_selects_from_the_grid(delta_max in 1usize..500, seed in any::<u64>(), truth in 0.0f64..1000.0) {
        let grid = power_of_two_grid(delta_max);
        prop_assert!(grid.iter().all(|d| d.is_power_of_two()));
        prop_assert!(*grid.last().unwrap() <= delta_max.max(1));
        let candidates: Vec<GemCandidate> = grid
            .iter()
            .map(|&d| GemCandidate { delta: d as f64, value: truth.min(d as f64 * 3.0) })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = generalized_exponential_mechanism(&candidates, truth, 1.0, 0.1, &mut rng);
        prop_assert!(grid.contains(&(sel.delta as usize)));
        prop_assert_eq!(sel.approximation_errors.len(), grid.len());
    }

    #[test]
    fn budget_ledger_never_exceeds_total(total in 0.1f64..10.0, spends in proptest::collection::vec(0.01f64..1.0, 1..10)) {
        let mut budget = PrivacyBudget::new(total);
        for (i, &s) in spends.iter().enumerate() {
            let _ = budget.spend(&format!("stage{i}"), s);
        }
        prop_assert!(budget.spent_epsilon() <= total + 1e-9);
        prop_assert!(budget.remaining_epsilon() >= -1e-9);
    }
}
