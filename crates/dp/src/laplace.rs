//! The Laplace distribution and the Laplace mechanism (Theorem 2.2 of the paper).

use rand::Rng;

/// A zero-mean Laplace distribution with scale `b` (density `e^{-|z|/b} / (2b)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaplaceNoise {
    scale: f64,
}

impl LaplaceNoise {
    /// Creates a Laplace distribution with the given scale `b > 0`.
    ///
    /// A scale of exactly 0 is allowed and produces the constant 0 (useful for the
    /// non-private baseline).
    ///
    /// # Panics
    /// Panics if `scale` is negative or not finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be a non-negative real"
        );
        LaplaceNoise { scale }
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Standard deviation (`√2·b`).
    pub fn std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.scale == 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
        // X = -b · sign(u) · ln(1 - 2|u|). The argument is clamped away from 0
        // (u = -1/2 has probability 2⁻⁵³ but would yield ln(0) = -∞): the draw
        // stays finite and the tail truncation at ~708·b is far beyond any
        // quantile the mechanisms use.
        let u: f64 = rng.gen::<f64>() - 0.5;
        let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln() * self.scale;
        if u < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Tail probability `Pr[|X| ≥ t]` (Lemma 2.3: `e^{-t/b}`).
    pub fn tail_probability(&self, t: f64) -> f64 {
        if self.scale == 0.0 {
            return if t <= 0.0 { 1.0 } else { 0.0 };
        }
        (-t / self.scale).exp().min(1.0)
    }

    /// The threshold `t` such that `Pr[|X| ≥ t] = beta` (i.e. `b · ln(1/β)`).
    pub fn quantile_for_tail(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "beta must lie in (0, 1]");
        self.scale * (1.0 / beta).ln()
    }
}

/// Samples once from `Lap(b)`.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    LaplaceNoise::new(scale).sample(rng)
}

/// The Laplace mechanism (Theorem 2.2): releases `value + Lap(sensitivity/epsilon)`.
///
/// The caller is responsible for `sensitivity` being an upper bound on the global
/// sensitivity of the released statistic with respect to the intended neighbor
/// relation (node-neighbors throughout this library).
pub fn laplace_mechanism<R: Rng + ?Sized>(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
    value + sample_laplace(sensitivity / epsilon, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        let noise = LaplaceNoise::new(0.0);
        for _ in 0..10 {
            assert_eq!(noise.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn sample_mean_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let noise = LaplaceNoise::new(2.0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| noise.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "sample mean {mean} too far from 0");
    }

    #[test]
    fn sample_variance_matches_2b_squared() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = 1.5;
        let noise = LaplaceNoise::new(b);
        let n = 200_000;
        let var: f64 = (0..n).map(|_| noise.sample(&mut rng).powi(2)).sum::<f64>() / n as f64;
        let expected = 2.0 * b * b;
        assert!(
            (var - expected).abs() / expected < 0.05,
            "sample variance {var} too far from {expected}"
        );
    }

    #[test]
    fn empirical_tail_matches_lemma_2_3() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = 1.0;
        let noise = LaplaceNoise::new(b);
        let n = 100_000;
        let t = 2.0;
        let exceed = (0..n).filter(|_| noise.sample(&mut rng).abs() >= t).count() as f64 / n as f64;
        let expected = noise.tail_probability(t);
        assert!(
            (exceed - expected).abs() < 0.01,
            "tail {exceed} vs expected {expected}"
        );
    }

    #[test]
    fn quantile_inverts_tail() {
        let noise = LaplaceNoise::new(3.0);
        for beta in [0.5, 0.1, 0.01] {
            let t = noise.quantile_for_tail(beta);
            assert!((noise.tail_probability(t) - beta).abs() < 1e-12);
        }
    }

    #[test]
    fn mechanism_noise_scales_with_sensitivity_over_epsilon() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let spread_low: f64 = (0..n)
            .map(|_| (laplace_mechanism(0.0, 1.0, 1.0, &mut rng)).abs())
            .sum::<f64>()
            / n as f64;
        let spread_high: f64 = (0..n)
            .map(|_| (laplace_mechanism(0.0, 10.0, 1.0, &mut rng)).abs())
            .sum::<f64>()
            / n as f64;
        // E|Lap(b)| = b, so the ratio should be close to 10.
        let ratio = spread_high / spread_low;
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio} not close to 10");
    }

    #[test]
    fn std_dev_formula() {
        let noise = LaplaceNoise::new(2.0);
        assert!((noise.std_dev() - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_scale_rejected() {
        LaplaceNoise::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        laplace_mechanism(1.0, 1.0, 0.0, &mut rng);
    }
}
