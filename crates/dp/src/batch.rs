//! Batched noise sampling for release pipelines.
//!
//! A full private release draws a small, statically known number of random
//! words (one per Laplace sample, one for the GEM draw). When releases are
//! produced in bulk — serving tiers, streaming re-estimation — drawing each
//! word through the full `Rng` adapter stack per mechanism call costs a
//! virtual dispatch and borrow per draw, and more importantly couples the
//! mechanisms to a live generator. [`NoiseBatch`] decouples them: prefetch
//! exactly the words a release needs from the source generator up front, then
//! hand the batch to the mechanisms as an ordinary [`RngCore`].
//!
//! The batch replays the prefetched words **in order**, so a pipeline that
//! consumes them through the same mechanism sequence produces bit-for-bit the
//! samples it would have produced drawing from the source directly. This is
//! the property the estimator's determinism tests pin down.

use rand::RngCore;

/// A fixed budget of random words prefetched from a source generator,
/// replayed in order through the [`RngCore`] interface.
#[derive(Clone, Debug)]
pub struct NoiseBatch {
    words: Vec<u64>,
    pos: usize,
}

impl NoiseBatch {
    /// Prefetches exactly `words` 64-bit words from `rng`, in draw order.
    pub fn prefetch<R: RngCore + ?Sized>(rng: &mut R, words: usize) -> Self {
        NoiseBatch {
            words: (0..words).map(|_| rng.next_u64()).collect(),
            pos: 0,
        }
    }

    /// Words left to serve.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// `true` once every prefetched word has been consumed. Release pipelines
    /// assert this at the end: an under-consumed batch means the mechanism
    /// sequence drew fewer words than the batch was sized for (a privacy
    /// accounting bug in the caller's sizing, not a correctness bug here).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.words.len()
    }
}

impl RngCore for NoiseBatch {
    /// Serves the next prefetched word.
    ///
    /// # Panics
    /// Panics if the batch is exhausted — batch sizing is a static property
    /// of the release pipeline and over-consumption is a logic error, never
    /// something to paper over with fresh (unaccounted) randomness.
    fn next_u64(&mut self) -> u64 {
        assert!(
            self.pos < self.words.len(),
            "noise batch exhausted: prefetched {} words, a {}th was requested",
            self.words.len(),
            self.words.len() + 1
        );
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn replays_source_words_in_order() {
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        let direct: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut batch = NoiseBatch::prefetch(&mut b, 5);
        let replayed: Vec<u64> = (0..5).map(|_| batch.next_u64()).collect();
        assert_eq!(direct, replayed);
        assert!(batch.is_exhausted());
    }

    #[test]
    fn float_draws_match_direct_draws() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let direct: Vec<f64> = (0..4).map(|_| a.gen::<f64>()).collect();
        let mut batch = NoiseBatch::prefetch(&mut b, 4);
        let replayed: Vec<f64> = (0..4).map(|_| batch.gen::<f64>()).collect();
        assert_eq!(
            direct.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            replayed.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mechanisms_through_batch_match_direct() {
        use crate::laplace::LaplaceNoise;
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let noise = LaplaceNoise::new(2.0);
        let direct = [noise.sample(&mut a), noise.sample(&mut a)];
        let mut batch = NoiseBatch::prefetch(&mut b, 2);
        let batched = [noise.sample(&mut batch), noise.sample(&mut batch)];
        assert_eq!(direct[0].to_bits(), batched[0].to_bits());
        assert_eq!(direct[1].to_bits(), batched[1].to_bits());
        assert!(batch.is_exhausted());
    }

    #[test]
    fn source_rng_advances_exactly_by_prefetch() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let _ = NoiseBatch::prefetch(&mut a, 3);
        for _ in 0..3 {
            b.next_u64();
        }
        // Both generators are now in the same state.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "noise batch exhausted")]
    fn over_consumption_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = NoiseBatch::prefetch(&mut rng, 1);
        batch.next_u64();
        batch.next_u64();
    }
}
