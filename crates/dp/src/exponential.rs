//! The Exponential Mechanism of McSherry and Talwar (Theorem B.1 of the paper).
//!
//! We use the *minimization* convention matching Algorithm 4: given score
//! functions `q_i` of global sensitivity at most `sensitivity`, the mechanism
//! samples index `i` with probability proportional to `exp(-ε · q_i / (2·sensitivity))`,
//! so lower scores are exponentially more likely.

use rand::Rng;

/// Runs the Exponential Mechanism over the given scores (lower is better).
///
/// Returns the selected index. `sensitivity` must upper-bound the global
/// sensitivity of every score function.
///
/// # Panics
/// Panics if `scores` is empty, `epsilon <= 0` or `sensitivity <= 0`.
pub fn exponential_mechanism_min<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> usize {
    assert!(!scores.is_empty(), "need at least one candidate");
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(sensitivity > 0.0, "sensitivity must be positive");

    // Work in log space and subtract the maximum exponent for numerical stability.
    let exponents: Vec<f64> = scores
        .iter()
        .map(|&q| -epsilon * q / (2.0 * sensitivity))
        .collect();
    let max_exp = exponents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = exponents.iter().map(|&e| (e - max_exp).exp()).collect();
    let total: f64 = weights.iter().sum();
    debug_assert!(total.is_finite() && total > 0.0);

    let mut draw = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

/// Probability that the Exponential Mechanism (minimization convention) selects
/// each index — exposed for tests and diagnostics.
pub fn selection_probabilities(scores: &[f64], sensitivity: f64, epsilon: f64) -> Vec<f64> {
    let exponents: Vec<f64> = scores
        .iter()
        .map(|&q| -epsilon * q / (2.0 * sensitivity))
        .collect();
    let max_exp = exponents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = exponents.iter().map(|&e| (e - max_exp).exp()).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_candidate_is_always_chosen() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(exponential_mechanism_min(&[3.0], 1.0, 1.0, &mut rng), 0);
        }
    }

    #[test]
    fn strongly_better_candidate_wins_most_of_the_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let scores = [0.0, 50.0, 50.0];
        let wins = (0..1000)
            .filter(|_| exponential_mechanism_min(&scores, 1.0, 2.0, &mut rng) == 0)
            .count();
        assert!(wins > 950, "best candidate won only {wins}/1000 times");
    }

    #[test]
    fn equal_scores_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let scores = [1.0, 1.0, 1.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[exponential_mechanism_min(&scores, 1.0, 1.0, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 2000.0).abs() < 250.0,
                "counts {counts:?} far from uniform"
            );
        }
    }

    #[test]
    fn probabilities_match_analytic_form() {
        let probs = selection_probabilities(&[0.0, 1.0], 1.0, 2.0);
        // Ratio of probabilities is exp(ε·Δq / (2·sens)) = e.
        let ratio = probs[0] / probs[1];
        assert!((ratio - std::f64::consts::E).abs() < 1e-9);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_epsilon_flattens_the_distribution() {
        let sharp = selection_probabilities(&[0.0, 5.0], 1.0, 2.0);
        let flat = selection_probabilities(&[0.0, 5.0], 1.0, 0.1);
        assert!(sharp[0] > flat[0]);
        assert!(flat[0] < 0.7);
    }

    #[test]
    fn large_scores_do_not_overflow() {
        let probs = selection_probabilities(&[1e6, 1e6 + 1.0, 2e6], 1.0, 1.0);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[2] < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        exponential_mechanism_min(&[], 1.0, 1.0, &mut rng);
    }
}
