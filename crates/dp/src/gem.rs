//! The Generalized Exponential Mechanism (GEM) of Raskhodnikova and Smith,
//! specialized to threshold selection for a family of Lipschitz extensions
//! (Algorithm 4 of the paper).
//!
//! Given a family of monotone-in-Δ Lipschitz underestimates `{h_Δ}` of a target
//! function `h`, GEM privately selects a parameter `Δ̂` whose *approximation error*
//!
//! ```text
//! err_h(Δ, G) = |h_Δ(G) − h(G)| + Δ/ε
//! ```
//!
//! is within an `O(ln(ln Δmax / β))` factor of the best choice (Theorem 3.5). The
//! candidates are the powers of two `Δ ∈ {1, 2, 4, …} ∩ [1, Δmax]`.
//!
//! The mechanism only needs the evaluated candidates and the true value `h(G)`; the
//! footnote of Algorithm 4 explains why subtracting the (non-private) `h(G)` from
//! every score does not affect privacy: the selection depends on the scores only
//! through differences `q_i − q_j`, in which `h(G)` cancels.

use crate::exponential::exponential_mechanism_min;
use rand::Rng;

/// One candidate of the GEM: a Lipschitz parameter `Δ` and the value `h_Δ(G)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemCandidate {
    /// The Lipschitz parameter (also the global sensitivity) of this candidate.
    pub delta: f64,
    /// The evaluated extension `h_Δ(G)`.
    pub value: f64,
}

/// Result of running GEM.
#[derive(Clone, Debug)]
pub struct GemSelection {
    /// Index of the selected candidate.
    pub index: usize,
    /// The selected Lipschitz parameter `Δ̂`.
    pub delta: f64,
    /// The value `h_Δ̂(G)` of the selected candidate.
    pub value: f64,
    /// The approximation errors `q_i = |h_i(G) − h(G)| + i/ε` (diagnostic).
    pub approximation_errors: Vec<f64>,
    /// The normalized GEM scores `s_i` handed to the exponential mechanism.
    pub scores: Vec<f64>,
}

/// The powers of two `{1, 2, 4, …}` that are at most `delta_max` (always at least `{1}`).
pub fn power_of_two_grid(delta_max: usize) -> Vec<usize> {
    let mut grid = vec![1usize];
    while grid.last().copied().unwrap_or(1) * 2 <= delta_max.max(1) {
        let next = grid.last().unwrap() * 2;
        grid.push(next);
    }
    grid
}

/// Runs GEM (Algorithm 4) over pre-evaluated candidates.
///
/// * `candidates` — the evaluated family members, typically at the grid returned by
///   [`power_of_two_grid`]; must be non-empty.
/// * `true_value` — `h(G)`, used only through score differences (see module docs).
/// * `epsilon` — the privacy parameter of this selection step.
/// * `beta` — the failure probability appearing in the shift `t = 2·ln(k/β)/ε`.
///
/// Returns the selected candidate together with diagnostic score vectors.
pub fn generalized_exponential_mechanism<R: Rng + ?Sized>(
    candidates: &[GemCandidate],
    true_value: f64,
    epsilon: f64,
    beta: f64,
    rng: &mut R,
) -> GemSelection {
    assert!(!candidates.is_empty(), "GEM needs at least one candidate");
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0, 1)");

    // Step 1: t = 2·ln(k/β)/ε with k the number of doubling steps (at least 1 so
    // the logarithm is positive even for a single candidate).
    let k = (candidates.len().saturating_sub(1)).max(1) as f64;
    let t = 2.0 * (k / beta).ln().max(0.0) / epsilon;

    // Step 4: approximation errors q_i = |h_i(G) − h(G)| + i/ε.
    let q: Vec<f64> = candidates
        .iter()
        .map(|c| (c.value - true_value).abs() + c.delta / epsilon)
        .collect();

    // Step 6: normalized pairwise scores
    // s_i = max_j [ (q_i + t·Δ_i) − (q_j + t·Δ_j) ] / (Δ_i + Δ_j).
    let shifted: Vec<f64> = q
        .iter()
        .zip(candidates)
        .map(|(&qi, c)| qi + t * c.delta)
        .collect();
    let scores: Vec<f64> = candidates
        .iter()
        .enumerate()
        .map(|(i, ci)| {
            candidates
                .iter()
                .enumerate()
                .map(|(j, cj)| (shifted[i] - shifted[j]) / (ci.delta + cj.delta))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();

    // Step 7: Exponential Mechanism with sensitivity-1 scores (minimization).
    let index = exponential_mechanism_min(&scores, 1.0, epsilon, rng);
    GemSelection {
        index,
        delta: candidates[index].delta,
        value: candidates[index].value,
        approximation_errors: q,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_is_powers_of_two() {
        assert_eq!(power_of_two_grid(1), vec![1]);
        assert_eq!(power_of_two_grid(2), vec![1, 2]);
        assert_eq!(power_of_two_grid(10), vec![1, 2, 4, 8]);
        assert_eq!(power_of_two_grid(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(power_of_two_grid(0), vec![1]);
    }

    #[test]
    fn single_candidate_is_selected() {
        let mut rng = StdRng::seed_from_u64(0);
        let sel = generalized_exponential_mechanism(
            &[GemCandidate {
                delta: 1.0,
                value: 5.0,
            }],
            7.0,
            1.0,
            0.1,
            &mut rng,
        );
        assert_eq!(sel.index, 0);
        assert_eq!(sel.delta, 1.0);
    }

    #[test]
    fn selects_near_optimal_candidate_with_high_probability() {
        // h(G) = 100. Candidate Δ=4 matches exactly; Δ=1 and Δ=2 are far off;
        // Δ=64 matches but pays a large Δ/ε penalty.
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = vec![
            GemCandidate {
                delta: 1.0,
                value: 0.0,
            },
            GemCandidate {
                delta: 2.0,
                value: 10.0,
            },
            GemCandidate {
                delta: 4.0,
                value: 100.0,
            },
            GemCandidate {
                delta: 64.0,
                value: 100.0,
            },
        ];
        let mut wins = 0;
        let trials = 300;
        for _ in 0..trials {
            let sel = generalized_exponential_mechanism(&candidates, 100.0, 2.0, 0.05, &mut rng);
            if sel.delta == 4.0 {
                wins += 1;
            }
        }
        assert!(
            wins > trials * 7 / 10,
            "best Δ chosen only {wins}/{trials} times"
        );
    }

    #[test]
    fn approximation_errors_follow_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        let candidates = vec![
            GemCandidate {
                delta: 1.0,
                value: 3.0,
            },
            GemCandidate {
                delta: 2.0,
                value: 5.0,
            },
        ];
        let sel = generalized_exponential_mechanism(&candidates, 5.0, 1.0, 0.1, &mut rng);
        assert!((sel.approximation_errors[0] - (2.0 + 1.0)).abs() < 1e-12);
        assert!((sel.approximation_errors[1] - (0.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn scores_have_bounded_magnitude_differences() {
        // The s_i are normalized by Δ_i + Δ_j, so adding the same constant to every
        // q_i leaves them unchanged — this is what makes using h(G) harmless.
        let mut rng = StdRng::seed_from_u64(3);
        let candidates = vec![
            GemCandidate {
                delta: 1.0,
                value: 1.0,
            },
            GemCandidate {
                delta: 2.0,
                value: 4.0,
            },
            GemCandidate {
                delta: 4.0,
                value: 6.0,
            },
        ];
        let a = generalized_exponential_mechanism(&candidates, 6.0, 1.0, 0.1, &mut rng);
        let shifted: Vec<GemCandidate> = candidates
            .iter()
            .map(|c| GemCandidate {
                delta: c.delta,
                value: c.value + 10.0,
            })
            .collect();
        let b = generalized_exponential_mechanism(&shifted, 16.0, 1.0, 0.1, &mut rng);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-9, "scores changed under a uniform shift");
        }
    }

    #[test]
    fn utility_guarantee_holds_empirically() {
        // Theorem 3.5-style check: the realized err of the selected candidate is
        // within a modest factor of the best err, with high probability.
        let mut rng = StdRng::seed_from_u64(4);
        let epsilon = 1.0;
        let beta = 0.05;
        let candidates: Vec<GemCandidate> = power_of_two_grid(256)
            .into_iter()
            .map(|d| GemCandidate {
                delta: d as f64,
                // h_Δ underestimates: approaches the true value 50 as Δ grows.
                value: 50.0f64.min(d as f64 * 10.0),
            })
            .collect();
        let q_best = candidates
            .iter()
            .map(|c| (c.value - 50.0f64).abs() + c.delta / epsilon)
            .fold(f64::INFINITY, f64::min);
        let mut failures = 0;
        let trials = 200;
        for _ in 0..trials {
            let sel = generalized_exponential_mechanism(&candidates, 50.0, epsilon, beta, &mut rng);
            let realized = sel.approximation_errors[sel.index];
            if realized > q_best * 30.0 {
                failures += 1;
            }
        }
        assert!(
            failures < trials / 10,
            "{failures}/{trials} selections were far from optimal"
        );
    }
}
