//! Sequential composition bookkeeping (Lemma 2.4).
//!
//! Running `t` ε-node-private algorithms and post-processing their outputs is
//! `(t·ε)`-node-private. [`PrivacyBudget`] tracks how a total ε is split across the
//! stages of a composed algorithm so that callers (and tests) can verify the split
//! adds up to the advertised guarantee.

/// A privacy budget that is consumed by named stages.
#[derive(Clone, Debug)]
pub struct PrivacyBudget {
    total_epsilon: f64,
    spent: Vec<(String, f64)>,
    /// Running sum of `spent`, so the hot check-and-spend path is O(1)
    /// instead of re-summing the ledger (a long-lived serving tenant records
    /// one ledger entry per release).
    spent_total: f64,
}

impl PrivacyBudget {
    /// Creates a budget with the given total ε.
    ///
    /// # Panics
    /// Panics if `total_epsilon` is not strictly positive and finite.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(
            total_epsilon.is_finite() && total_epsilon > 0.0,
            "total epsilon must be positive"
        );
        PrivacyBudget {
            total_epsilon,
            spent: Vec::new(),
            spent_total: 0.0,
        }
    }

    /// The total ε of the budget.
    pub fn total_epsilon(&self) -> f64 {
        self.total_epsilon
    }

    /// ε consumed so far.
    pub fn spent_epsilon(&self) -> f64 {
        self.spent_total
    }

    /// ε still available.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.total_epsilon - self.spent_epsilon()).max(0.0)
    }

    /// Consumes `epsilon` for the named stage. Returns the consumed amount.
    ///
    /// # Errors
    /// Returns an error if the request exceeds the remaining budget (beyond a tiny
    /// numerical slack).
    pub fn spend(&mut self, stage: &str, epsilon: f64) -> Result<f64, BudgetExceeded> {
        assert!(epsilon > 0.0, "stage epsilon must be positive");
        if epsilon > self.remaining_epsilon() + 1e-12 {
            return Err(BudgetExceeded {
                requested: epsilon,
                remaining: self.remaining_epsilon(),
            });
        }
        self.spent.push((stage.to_string(), epsilon));
        self.spent_total += epsilon;
        Ok(epsilon)
    }

    /// Consumes an equal share `total/k` of the *original* budget.
    pub fn spend_fraction(&mut self, stage: &str, fraction: f64) -> Result<f64, BudgetExceeded> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must lie in (0, 1]"
        );
        self.spend(stage, self.total_epsilon * fraction)
    }

    /// The per-stage ledger (stage name, ε).
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.spent
    }

    /// Number of stages recorded in the ledger.
    pub fn num_stages(&self) -> usize {
        self.spent.len()
    }

    /// Whether a spend of `epsilon` would be admitted right now (same
    /// numerical slack as [`PrivacyBudget::spend`]).
    pub fn can_spend(&self, epsilon: f64) -> bool {
        epsilon > 0.0 && epsilon <= self.remaining_epsilon() + 1e-12
    }

    /// Total ε recorded for stages with the given name (0 if absent).
    pub fn spent_for_stage(&self, stage: &str) -> f64 {
        self.spent
            .iter()
            .filter(|(name, _)| name == stage)
            .map(|(_, e)| e)
            .sum()
    }

    /// Fraction of the total budget consumed so far, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (self.spent_epsilon() / self.total_epsilon).clamp(0.0, 1.0)
    }
}

/// Error returned when a stage requests more ε than remains.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetExceeded {
    /// The ε requested by the stage.
    pub requested: f64,
    /// The ε still available.
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested ε = {}, remaining ε = {}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spending_within_budget_succeeds() {
        let mut b = PrivacyBudget::new(1.0);
        assert!(b.spend("gem", 0.5).is_ok());
        assert!(b.spend("laplace", 0.5).is_ok());
        assert!(b.remaining_epsilon() < 1e-12);
        assert_eq!(b.ledger().len(), 2);
    }

    #[test]
    fn overspending_is_rejected() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend("a", 0.8).unwrap();
        let err = b.spend("b", 0.3).unwrap_err();
        assert!(err.requested > err.remaining);
    }

    #[test]
    fn fraction_spending_matches_algorithm_1_split() {
        // Algorithm 1 splits ε into ε/2 for GEM and ε/2 for the Laplace release.
        let mut b = PrivacyBudget::new(2.0);
        assert_eq!(b.spend_fraction("gem", 0.5).unwrap(), 1.0);
        assert_eq!(b.spend_fraction("laplace", 0.5).unwrap(), 1.0);
        assert!(b.remaining_epsilon().abs() < 1e-12);
    }

    #[test]
    fn total_spent_is_sum_of_stages() {
        let mut b = PrivacyBudget::new(3.0);
        b.spend("a", 1.0).unwrap();
        b.spend("b", 0.5).unwrap();
        assert!((b.spent_epsilon() - 1.5).abs() < 1e-12);
        assert!((b.remaining_epsilon() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_positive_total_rejected() {
        PrivacyBudget::new(0.0);
    }

    #[test]
    fn accessors_report_the_ledger_state() {
        let mut b = PrivacyBudget::new(2.0);
        assert!(b.can_spend(2.0));
        assert!(!b.can_spend(2.1));
        assert!(!b.can_spend(0.0));
        b.spend("gem", 0.5).unwrap();
        b.spend("laplace", 0.5).unwrap();
        b.spend("gem", 0.25).unwrap();
        assert_eq!(b.num_stages(), 3);
        assert!((b.spent_for_stage("gem") - 0.75).abs() < 1e-12);
        assert!((b.spent_for_stage("laplace") - 0.5).abs() < 1e-12);
        assert_eq!(b.spent_for_stage("unknown"), 0.0);
        assert!((b.utilization() - 0.625).abs() < 1e-12);
        assert!(b.can_spend(0.75));
        assert!(!b.can_spend(0.76));
    }
}
