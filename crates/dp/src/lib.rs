//! Differential-privacy substrate.
//!
//! Implements the mechanisms used by the paper's algorithm:
//!
//! * [`laplace`]: the Laplace distribution and the Laplace mechanism
//!   (Theorem 2.2), including the tail bound of Lemma 2.3,
//! * [`exponential`]: the Exponential Mechanism of McSherry–Talwar
//!   (Theorem B.1), in the minimization convention used by the paper,
//! * [`gem`]: the Generalized Exponential Mechanism of Raskhodnikova–Smith
//!   applied to threshold selection for a family of Lipschitz extensions
//!   (Algorithm 4),
//! * [`composition`]: sequential composition bookkeeping (Lemma 2.4),
//! * [`batch`]: prefetched per-release noise batches that replay the source
//!   generator's words bit-for-bit.
//!
//! All mechanisms take an explicit `&mut impl Rng`, so experiments and tests are
//! reproducible with seeded generators.

pub mod batch;
pub mod composition;
pub mod exponential;
pub mod gem;
pub mod laplace;

pub use batch::NoiseBatch;
pub use composition::{BudgetExceeded, PrivacyBudget};
pub use exponential::exponential_mechanism_min;
pub use gem::{generalized_exponential_mechanism, GemCandidate, GemSelection};
pub use laplace::{laplace_mechanism, sample_laplace, LaplaceNoise};
