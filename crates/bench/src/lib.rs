//! Experiment harness shared by the benchmark targets.
//!
//! Each `exp_*` bench target (run via `cargo bench`) regenerates one table of the
//! evaluation described in EXPERIMENTS.md; the `bench_*` targets are Criterion
//! micro-benchmarks for the performance-sensitive building blocks.

pub mod report;

pub use report::Table;
