//! Minimal fixed-width table formatting for experiment output.

/// A printable table with a title, column headers and string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells are filled with blanks, extra cells are kept).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let num_cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; num_cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (num_cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = (0..num_cols)
                .map(|i| {
                    let cell = row.get(i).map(String::as_str).unwrap_or("");
                    format!("{:>width$}", cell, width = widths[i])
                })
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("long-name"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.add_row(vec!["x".into()]);
        let s = t.render();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn fmt_controls_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }
}
