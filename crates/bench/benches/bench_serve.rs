//! Criterion micro-benchmarks for the serving tier.
//!
//! Three slices of the serving stack:
//! * `submit_roundtrip` — one request end-to-end through the worker pool on
//!   a warm cache (the steady-state serving latency),
//! * `coalesced_burst` — a burst of identical requests racing the
//!   single-flight table,
//! * `load_spec` — a small deterministic [`LoadSpec`] run (fleet ingestion,
//!   schedule, clients, shutdown) as one unit.

use ccdp_graph::generators;
use ccdp_serve::{
    BudgetLedger, GraphRegistry, GraphSpec, LoadSpec, ServeConfig, ServeRequest, Server, TenantSpec,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn warm_server() -> Server {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("stars", generators::planted_star_forest(15, 3, 5));
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("bench", 1e9).unwrap();
    let server = Server::start(
        ServeConfig::new().with_workers(2).with_queue_capacity(64),
        registry,
        ledger,
    );
    // One request to warm the family cache.
    server
        .submit(ServeRequest::new("bench", "stars", 0.1))
        .unwrap()
        .wait()
        .result
        .unwrap();
    server
}

fn bench_submit_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let server = warm_server();
    group.bench_function("submit_roundtrip_warm", |b| {
        b.iter(|| {
            server
                .submit(ServeRequest::new("bench", "stars", 0.1))
                .unwrap()
                .wait()
                .result
                .unwrap()
                .value()
        })
    });
    group.finish();
}

fn bench_coalesced_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let server = warm_server();
    group.bench_function("burst_16_same_graph", |b| {
        b.iter(|| {
            let pending: Vec<_> = (0..16)
                .map(|_| {
                    server
                        .submit(ServeRequest::new("bench", "stars", 0.01))
                        .unwrap()
                })
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().result.unwrap().value())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_load_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let spec = LoadSpec {
        graphs: vec![
            GraphSpec::Path { n: 24 },
            GraphSpec::Star { leaves: 16 },
            GraphSpec::ErdosRenyi {
                n: 30,
                avg_degree: 2.0,
                seed: 9,
            },
        ],
        tenants: vec![TenantSpec {
            name: "bench".into(),
            quota_epsilon: 1e9,
            weight: 1.0,
        }],
        clients: 8,
        requests: 48,
        epsilon_per_request: 0.1,
        seed: 5,
        server: ServeConfig::new().with_workers(4).with_queue_capacity(32),
    };
    group.bench_function("load_spec_48_requests", |b| {
        b.iter(|| {
            let report = spec.run();
            assert!(report.is_complete());
            report.completed
        })
    });
    group.finish();
}

criterion_group!(
    serve_benches,
    bench_submit_roundtrip,
    bench_coalesced_burst,
    bench_load_spec
);
criterion_main!(serve_benches);
