//! Criterion micro-benchmarks for the full private estimators (Algorithm 1 and the
//! connected-components wrapper).

use ccdp_core::{PrivateCcEstimator, PrivateSpanningForestEstimator};
use ccdp_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_spanning_forest_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::erdos_renyi(n, 0.8 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &g, |b, g| {
            let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| est.estimate(g, &mut rng).unwrap().value())
        });
    }
    group.finish();
}

fn bench_cc_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc_estimator");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let g = generators::planted_star_forest(300, 3, 100);
    group.bench_function("star_forest_1300", |b| {
        let est = PrivateCcEstimator::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| est.estimate(&g, &mut rng).unwrap().value())
    });
    let geo = {
        let mut rng = StdRng::seed_from_u64(3);
        generators::random_geometric(1000, 0.02, &mut rng)
    };
    group.bench_function("geometric_1000", |b| {
        let est = PrivateCcEstimator::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| est.estimate(&geo, &mut rng).unwrap().value())
    });
    group.finish();
}

criterion_group!(benches, bench_spanning_forest_estimator, bench_cc_estimator);
criterion_main!(benches);
