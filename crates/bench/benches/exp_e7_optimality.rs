//! Experiment E7 (Theorem 1.11): ℓ∞-optimality of the polytope extension. For
//! every sampled small graph G with Err_G(f_Δ, f_sf) > 0 we check
//! Err_G(f_Δ, f_sf) ≤ 2·Err_G(f*, f_sf) − 1, instantiating the comparator
//! f* ∈ F_{Δ−1} with the (Δ−1)-Lipschitz down-sensitivity extension of Lemma A.1.
//! The (Δ+1)-star base case, where the bound is tight, is reported separately.

use ccdp_bench::Table;
use ccdp_core::{downsens_extension_fsf, LipschitzExtension};
use ccdp_graph::subgraph::{all_vertex_subsets, induced_subgraph};
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn err_over_subgraphs<F: Fn(&Graph) -> f64>(g: &Graph, f: F) -> f64 {
    let mut worst = 0.0f64;
    for subset in all_vertex_subsets(g) {
        let (h, _) = induced_subgraph(g, &subset);
        worst = worst.max((f(&h) - h.spanning_forest_size() as f64).abs());
    }
    worst
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = Table::new(
        "E7: Theorem 1.11 — Err(f_Δ) vs 2·Err(f*) − 1 with the Lemma A.1 comparator",
        &["Δ", "graphs", "cases Err>0", "max ratio", "violations"],
    );
    for delta in 2..=4usize {
        let mut cases = 0;
        let mut violations = 0;
        let mut max_ratio = 0.0f64;
        let graphs = 30;
        for _ in 0..graphs {
            let g = generators::erdos_renyi(6, 0.45, &mut rng);
            let ours =
                err_over_subgraphs(&g, |h| LipschitzExtension::new(delta).evaluate(h).unwrap());
            if ours <= 1e-9 {
                continue;
            }
            cases += 1;
            let comparator = err_over_subgraphs(&g, |h| downsens_extension_fsf(h, delta - 1));
            let bound = 2.0 * comparator - 1.0;
            if ours > bound + 1e-6 {
                violations += 1;
            }
            max_ratio = max_ratio.max(ours / bound.max(1e-9));
        }
        table.add_row(vec![
            delta.to_string(),
            graphs.to_string(),
            cases.to_string(),
            format!("{max_ratio:.3}"),
            violations.to_string(),
        ]);
    }
    table.print();

    let mut base = Table::new(
        "E7b: (Δ+1)-star base case (the bound is tight: both sides equal 1)",
        &["Δ", "Err(f_Δ)", "2·Err(f*) − 1"],
    );
    for delta in 1..=5usize {
        let g = generators::star(delta + 1);
        let ours = err_over_subgraphs(&g, |h| LipschitzExtension::new(delta).evaluate(h).unwrap());
        let comparator = err_over_subgraphs(&g, |h| downsens_extension_fsf(h, delta - 1).max(0.0));
        base.add_row(vec![
            delta.to_string(),
            format!("{ours:.2}"),
            format!("{:.2}", 2.0 * comparator - 1.0),
        ]);
    }
    base.print();
    println!("Expected shape: zero violations; ratios ≤ 1; base case exactly tight.");
}
