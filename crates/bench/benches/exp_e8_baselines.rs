//! Experiment E8: comparison of Algorithm 1 against the baselines discussed in the
//! paper's introduction and related work — the non-private count, the trivial
//! edge-DP Laplace release, the naive node-DP Laplace release (global sensitivity
//! ≈ n), and the fixed-Δ ablation of our own algorithm — across ε and graph
//! families.

use ccdp_bench::Table;
use ccdp_core::{
    measure_errors, EdgeDpBaseline, Estimator, FixedDeltaBaseline, NaiveNodeDpBaseline,
    PrivateCcEstimator,
};
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn estimator_error(est: &dyn Estimator, g: &Graph, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = g.num_connected_components() as f64;
    measure_errors(truth, trials, || est.estimate(g, &mut rng).unwrap().value()).mean
}

fn main() {
    let trials = 10;
    let star_forest = generators::planted_star_forest(150, 3, 50);
    let mut rng = StdRng::seed_from_u64(88);
    let er = generators::erdos_renyi(1500, 0.8 / 1500.0, &mut rng);
    let geo = generators::random_geometric(800, 0.02, &mut rng);

    for (name, g) in [
        ("planted star forest (n=650, Δ*=3)", &star_forest),
        ("G(1500, 0.8/n)", &er),
        ("geometric(800, r=0.02)", &geo),
    ] {
        let truth = g.num_connected_components();
        let mut table = Table::new(
            &format!("E8: mean |error| on {name}, f_cc = {truth}"),
            &[
                "ε",
                "this paper",
                "edge-DP",
                "naive node-DP",
                "fixed Δ=2",
                "fixed Δ=64",
            ],
        );
        for (i, epsilon) in [0.25f64, 0.5, 1.0, 2.0].into_iter().enumerate() {
            let seed = 1000 + i as u64;
            // One heterogeneous sweep through the object-safe Estimator trait.
            let sweep: Vec<Box<dyn Estimator>> = vec![
                Box::new(PrivateCcEstimator::new(epsilon).unwrap()),
                Box::new(EdgeDpBaseline::new(epsilon).unwrap()),
                Box::new(NaiveNodeDpBaseline::new(epsilon).unwrap()),
                Box::new(FixedDeltaBaseline::new(epsilon, 2).unwrap()),
                Box::new(FixedDeltaBaseline::new(epsilon, 64).unwrap()),
            ];
            let mut row = vec![format!("{epsilon}")];
            for (j, est) in sweep.iter().enumerate() {
                row.push(format!(
                    "{:.1}",
                    estimator_error(est.as_ref(), g, trials, seed + j as u64)
                ));
            }
            table.add_row(row);
        }
        table.print();
    }
    println!(
        "Expected shape: edge-DP < this paper ≪ naive node-DP; fixed Δ=64 pays ~Δ/Δ* extra noise;"
    );
    println!("fixed Δ=2 is competitive only when Δ* ≤ 2.");
}
