//! Experiment E8: comparison of Algorithm 1 against the baselines discussed in the
//! paper's introduction and related work — the non-private count, the trivial
//! edge-DP Laplace release, the naive node-DP Laplace release (global sensitivity
//! ≈ n), and the fixed-Δ ablation of our own algorithm — across ε and graph
//! families.

use ccdp_bench::Table;
use ccdp_core::{
    CcEstimator, EdgeDpBaseline, FixedDeltaBaseline, NaiveNodeDpBaseline, PrivateCcEstimator,
};
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn baseline_error<E: CcEstimator>(est: &E, g: &Graph, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = g.num_connected_components() as f64;
    (0..trials).map(|_| (est.estimate_cc(g, &mut rng).unwrap() - truth).abs()).sum::<f64>()
        / trials as f64
}

fn our_error(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let est = PrivateCcEstimator::new(epsilon);
    let truth = g.num_connected_components() as f64;
    (0..trials).map(|_| (est.estimate(g, &mut rng).unwrap().value - truth).abs()).sum::<f64>()
        / trials as f64
}

fn main() {
    let trials = 10;
    let star_forest = generators::planted_star_forest(150, 3, 50);
    let mut rng = StdRng::seed_from_u64(88);
    let er = generators::erdos_renyi(1500, 0.8 / 1500.0, &mut rng);
    let geo = generators::random_geometric(800, 0.02, &mut rng);

    for (name, g) in [("planted star forest (n=650, Δ*=3)", &star_forest), ("G(1500, 0.8/n)", &er), ("geometric(800, r=0.02)", &geo)] {
        let truth = g.num_connected_components();
        let mut table = Table::new(
            &format!("E8: mean |error| on {name}, f_cc = {truth}"),
            &["ε", "this paper", "edge-DP", "naive node-DP", "fixed Δ=2", "fixed Δ=64"],
        );
        for (i, epsilon) in [0.25f64, 0.5, 1.0, 2.0].into_iter().enumerate() {
            let seed = 1000 + i as u64;
            table.add_row(vec![
                format!("{epsilon}"),
                format!("{:.1}", our_error(g, epsilon, trials, seed)),
                format!("{:.1}", baseline_error(&EdgeDpBaseline::new(epsilon), g, trials, seed + 1)),
                format!("{:.1}", baseline_error(&NaiveNodeDpBaseline::new(epsilon), g, trials, seed + 2)),
                format!("{:.1}", baseline_error(&FixedDeltaBaseline::new(epsilon, 2), g, trials, seed + 3)),
                format!("{:.1}", baseline_error(&FixedDeltaBaseline::new(epsilon, 64), g, trials, seed + 4)),
            ]);
        }
        table.print();
    }
    println!("Expected shape: edge-DP < this paper ≪ naive node-DP; fixed Δ=64 pays ~Δ/Δ* extra noise;");
    println!("fixed Δ=2 is competitive only when Δ* ≤ 2.");
}
