//! Experiment E1 (Section 1.1.4, Erdős–Rényi): in the regime np = c the graph has
//! Θ(n) components and maximum degree O(log n), so the node-private estimate has
//! additive error Õ(log n / ε) and vanishing relative error.
//!
//! Regenerates the series: n vs. absolute and relative error of Algorithm 1.

use ccdp_bench::Table;
use ccdp_core::{measure_errors, PrivateCcEstimator};
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 1.0;
    let c = 0.8; // mean degree (subcritical: Θ(n) components, O(log n) max degree)
    let trials = 8;
    let mut table = Table::new(
        &format!("E1: Erdős–Rényi G(n, c/n), c = {c}, ε = {epsilon} (paper: error Õ(log n/ε), relative error → 0)"),
        &["n", "edges", "f_cc", "max_deg", "mean_err", "median_err", "rel_err", "log(n)/eps"],
    );
    for n in [500usize, 1000, 2000, 4000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::erdos_renyi(n, c / n as f64, &mut rng);
        let truth = g.num_connected_components() as f64;
        let est = PrivateCcEstimator::new(epsilon).unwrap();
        let stats = measure_errors(truth, trials, || {
            est.estimate(&g, &mut rng).unwrap().value()
        });
        table.add_row(vec![
            n.to_string(),
            g.num_edges().to_string(),
            format!("{truth:.0}"),
            g.max_degree().to_string(),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.median),
            format!("{:.4}", stats.relative_to(truth)),
            format!("{:.1}", (n as f64).ln() / epsilon),
        ]);
    }
    table.print();
    println!("Expected shape: absolute error grows (at most) logarithmically; relative error shrinks with n.");
}
