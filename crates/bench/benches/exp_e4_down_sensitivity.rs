//! Experiment E4 (Lemmas 1.6–1.8): the combinatorial chain behind the accuracy
//! guarantee. Verifies, per family: DS_{f_sf}(G) = s(G) (Lemma 1.7, against brute
//! force on small graphs), the local-repair procedure succeeds with Δ = s(G)+1
//! (Lemma 1.8), and the resulting Δ* upper bound satisfies Δ* ≤ DS + 1 (Lemma 1.6).

use ccdp_bench::Table;
use ccdp_graph::forest::{
    bounded_degree_spanning_forest, delta_star_exact, delta_star_upper_bound,
};
use ccdp_graph::generators;
use ccdp_graph::sensitivity::{down_sensitivity_fsf, down_sensitivity_fsf_brute_force};
use ccdp_graph::stars::induced_star_number;
use ccdp_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut table = Table::new(
        "E4: down-sensitivity, induced stars and degree-bounded spanning forests",
        &[
            "graph",
            "n",
            "s(G)",
            "DS brute",
            "Lemma 1.7 ok",
            "Δ*_exact",
            "Δ*_ub",
            "Δ* ≤ DS+1",
            "repair@s+1 ok",
        ],
    );
    let mut cases: Vec<(String, Graph)> = vec![
        ("path(9)".into(), generators::path(9)),
        ("cycle(9)".into(), generators::cycle(9)),
        ("star(8)".into(), generators::star(8)),
        ("complete(7)".into(), generators::complete(7)),
        ("grid(3x4)".into(), generators::grid(3, 4)),
        ("caveman(3,4)".into(), generators::caveman(3, 4)),
    ];
    for i in 0..6 {
        cases.push((
            format!("G(10, 0.3) #{i}"),
            generators::erdos_renyi(10, 0.3, &mut rng),
        ));
    }
    let mut all_ok = true;
    for (name, g) in cases {
        let s = induced_star_number(&g).value();
        let ds_brute = if g.num_vertices() <= 12 {
            Some(down_sensitivity_fsf_brute_force(&g))
        } else {
            None
        };
        let lemma17_ok = ds_brute
            .map(|b| b == down_sensitivity_fsf(&g).value())
            .unwrap_or(true);
        let exact = delta_star_exact(&g, 1 << 22);
        let ub = delta_star_upper_bound(&g);
        let lemma16_ok = exact.map(|e| e <= s + 1).unwrap_or(true);
        let repair_ok = if g.has_no_edges() {
            true
        } else {
            bounded_degree_spanning_forest(&g, (s + 1).max(1))
                .map(|f| f.max_degree() <= (s + 1).max(1))
                .unwrap_or(false)
        };
        all_ok &= lemma17_ok && lemma16_ok && repair_ok;
        table.add_row(vec![
            name,
            g.num_vertices().to_string(),
            s.to_string(),
            ds_brute
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            lemma17_ok.to_string(),
            exact.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
            ub.to_string(),
            lemma16_ok.to_string(),
            repair_ok.to_string(),
        ]);
    }
    table.print();
    println!("All combinatorial claims verified: {all_ok}");
}
