//! Criterion micro-benchmarks for the DP mechanisms.

use ccdp_dp::gem::{generalized_exponential_mechanism, GemCandidate};
use ccdp_dp::laplace::LaplaceNoise;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplace");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let noise = LaplaceNoise::new(2.0);
    let mut rng = StdRng::seed_from_u64(0);
    group.bench_function("sample_1000", |b| {
        b.iter(|| (0..1000).map(|_| noise.sample(&mut rng)).sum::<f64>())
    });
    group.finish();
}

fn bench_gem(c: &mut Criterion) {
    let mut group = c.benchmark_group("gem");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);
    let candidates: Vec<GemCandidate> = (0..14)
        .map(|i| GemCandidate {
            delta: (1usize << i) as f64,
            value: 1000.0f64.min((1 << i) as f64 * 30.0),
        })
        .collect();
    group.bench_function("select_among_14_candidates", |b| {
        b.iter(|| generalized_exponential_mechanism(&candidates, 1000.0, 1.0, 0.05, &mut rng).delta)
    });
    group.finish();
}

criterion_group!(benches, bench_laplace, bench_gem);
criterion_main!(benches);
