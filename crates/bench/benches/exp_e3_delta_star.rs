//! Experiment E3 (Theorem 1.3): the error of Algorithm 1 scales linearly with Δ*,
//! the smallest possible maximum degree of a spanning forest. We sweep planted
//! star forests (Δ* = star size) and report error / Δ*.

use ccdp_bench::Table;
use ccdp_core::{measure_errors, PrivateSpanningForestEstimator};
use ccdp_graph::forest::delta_star_upper_bound;
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 1.0;
    let trials = 12;
    let total_vertices = 600usize;
    let mut table = Table::new(
        &format!("E3: error vs Δ* on planted star forests (n ≈ {total_vertices}, ε = {epsilon})"),
        &[
            "star size (Δ*)",
            "Δ*_ub",
            "n",
            "f_sf",
            "mean_err",
            "median_err",
            "err/Δ*",
        ],
    );
    for star_size in [1usize, 2, 4, 8, 16] {
        let num_stars = total_vertices / (star_size + 1);
        let g = generators::planted_star_forest(num_stars, star_size, 0);
        let truth = g.spanning_forest_size() as f64;
        let mut rng = StdRng::seed_from_u64(star_size as u64);
        let est = PrivateSpanningForestEstimator::new(epsilon).unwrap();
        let stats = measure_errors(truth, trials, || {
            est.estimate(&g, &mut rng).unwrap().value()
        });
        table.add_row(vec![
            star_size.to_string(),
            delta_star_upper_bound(&g).to_string(),
            g.num_vertices().to_string(),
            format!("{truth:.0}"),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean / star_size as f64),
        ]);
    }
    table.print();
    println!("Expected shape: mean error grows roughly linearly with Δ*; err/Δ* stays within a constant band.");

    let mut structured = Table::new(
        "E3b: structured families with known Δ*",
        &["family", "n", "Δ*_ub", "mean_err"],
    );
    let path = generators::path(500);
    let grid = generators::grid(20, 20);
    let caveman = generators::caveman(40, 5);
    for (name, g) in [
        ("path(500)", path),
        ("grid(20x20)", grid),
        ("caveman(40,5)", caveman),
    ] {
        let truth = g.spanning_forest_size() as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let est = PrivateSpanningForestEstimator::new(epsilon).unwrap();
        let stats = measure_errors(truth, 6, || est.estimate(&g, &mut rng).unwrap().value());
        structured.add_row(vec![
            name.to_string(),
            g.num_vertices().to_string(),
            delta_star_upper_bound(&g).to_string(),
            format!("{:.1}", stats.mean),
        ]);
    }
    structured.print();
}
