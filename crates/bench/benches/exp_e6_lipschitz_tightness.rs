//! Experiment E6 (Remark 3.4): the Lipschitz constant of f_Δ is tight. The graph G
//! of Δ isolated vertices and its node-neighbor G' = K_{1,Δ} (add one dominating
//! vertex) satisfy f_Δ(G) = 0 and f_Δ(G') = Δ, i.e. one node changes the value by
//! exactly Δ.

use ccdp_bench::Table;
use ccdp_core::LipschitzExtension;
use ccdp_graph::{generators, Graph};

fn main() {
    let mut table = Table::new(
        "E6: tightness of the Lipschitz constant (Remark 3.4)",
        &[
            "Δ",
            "f_Δ(Δ isolated vertices)",
            "f_Δ(K_{1,Δ})",
            "jump",
            "jump == Δ",
        ],
    );
    let mut all_tight = true;
    for delta in 1..=8usize {
        let isolated = Graph::new(delta);
        let star = generators::star(delta);
        let ext = LipschitzExtension::new(delta);
        let lo = ext.evaluate(&isolated).unwrap();
        let hi = ext.evaluate(&star).unwrap();
        let jump = hi - lo;
        let tight = (jump - delta as f64).abs() < 1e-6;
        all_tight &= tight;
        table.add_row(vec![
            delta.to_string(),
            format!("{lo:.2}"),
            format!("{hi:.2}"),
            format!("{jump:.2}"),
            tight.to_string(),
        ]);
    }
    table.print();
    println!("Lipschitz constant tight for every Δ: {all_tight}");
}
