//! Experiment E5 (Lemma 3.3, Lemma 1.9): anchor sets of the Lipschitz extension.
//! For a sweep of small random graphs we report, per Δ: how often f_Δ(G) = f_sf(G)
//! (membership in S_Δ), how often DS ≤ Δ−1 (membership in S*_{Δ-1}), and that the
//! containment S*_{Δ-1} ⊆ S_Δ never fails. Also verifies that the smallest
//! anchored Δ equals Δ* on every sampled graph.

use ccdp_bench::Table;
use ccdp_core::{in_anchor_set, in_optimal_monotone_anchor_set, smallest_anchor_delta};
use ccdp_graph::forest::delta_star_exact;
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let samples = 60;
    let graphs: Vec<_> = (0..samples)
        .map(|_| generators::erdos_renyi(9, 0.3, &mut rng))
        .collect();

    let mut table = Table::new(
        &format!("E5: anchor sets over {samples} samples of G(9, 0.3)"),
        &[
            "Δ",
            "|S*_(Δ-1)| frac",
            "|S_Δ| frac",
            "containment violations",
        ],
    );
    for delta in 1..=5usize {
        let mut in_optimal = 0;
        let mut in_ours = 0;
        let mut violations = 0;
        for g in &graphs {
            let opt = in_optimal_monotone_anchor_set(g, delta - 1);
            let ours = in_anchor_set(g, delta).unwrap();
            in_optimal += usize::from(opt);
            in_ours += usize::from(ours);
            if opt && !ours {
                violations += 1;
            }
        }
        table.add_row(vec![
            delta.to_string(),
            format!("{:.2}", in_optimal as f64 / samples as f64),
            format!("{:.2}", in_ours as f64 / samples as f64),
            violations.to_string(),
        ]);
    }
    table.print();

    let mut matches = 0;
    let mut checked = 0;
    for g in &graphs {
        if g.has_no_edges() {
            continue;
        }
        if let Some(exact) = delta_star_exact(g, 1 << 22) {
            checked += 1;
            if smallest_anchor_delta(g).unwrap() == exact {
                matches += 1;
            }
        }
    }
    println!("smallest anchored Δ equals Δ* on {matches}/{checked} graphs (expected: all).");
    println!("Expected shape: S_Δ grows with Δ, always contains S*_(Δ-1), zero violations.");
}
