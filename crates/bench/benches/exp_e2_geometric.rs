//! Experiment E2 (Section 1.1.4, random geometric graphs): geometric graphs have
//! no induced 6-star, hence Δ* ≤ 6 regardless of n, so the additive error of the
//! node-private estimate is Õ(ln ln n / ε) — essentially flat in n.

use ccdp_bench::Table;
use ccdp_core::{measure_errors, PrivateCcEstimator};
use ccdp_graph::forest::delta_star_upper_bound;
use ccdp_graph::generators;
use ccdp_graph::stars::induced_star_number;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 1.0;
    let trials = 8;
    let mut table = Table::new(
        &format!("E2: random geometric graphs, ε = {epsilon} (paper: s(G) ≤ 5, Δ* ≤ 6, error Õ(ln ln n/ε))"),
        &["n", "edges", "f_cc", "s(G)", "Δ*_ub", "mean_err", "median_err", "rel_err"],
    );
    for n in [250usize, 500, 1000, 2000] {
        let mut rng = StdRng::seed_from_u64(100 + n as u64);
        let radius = 0.6 / (n as f64).sqrt();
        let g = generators::random_geometric(n, radius, &mut rng);
        let truth = g.num_connected_components() as f64;
        let s = induced_star_number(&g).value();
        let est = PrivateCcEstimator::new(epsilon).unwrap();
        let stats = measure_errors(truth, trials, || {
            est.estimate(&g, &mut rng).unwrap().value()
        });
        table.add_row(vec![
            n.to_string(),
            g.num_edges().to_string(),
            format!("{truth:.0}"),
            s.to_string(),
            delta_star_upper_bound(&g).to_string(),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.median),
            format!("{:.4}", stats.relative_to(truth)),
        ]);
    }
    table.print();
    println!("Expected shape: s(G) ≤ 5 and Δ* bound ≤ 6 at every size; error roughly flat in n.");
}
