//! Criterion micro-benchmarks for the graph substrate: connected components,
//! induced star number, and the Lemma 1.8 bounded-degree spanning forest.

use ccdp_graph::forest::{bfs_spanning_forest, bounded_degree_spanning_forest};
use ccdp_graph::generators;
use ccdp_graph::stars::induced_star_number;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for &n in &[1000usize, 5000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::erdos_renyi(n, 2.0 / n as f64, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("num_connected_components", n),
            &g,
            |b, g| b.iter(|| g.num_connected_components()),
        );
        group.bench_with_input(BenchmarkId::new("bfs_spanning_forest", n), &g, |b, g| {
            b.iter(|| bfs_spanning_forest(g).num_edges())
        });
    }
    group.finish();
}

fn bench_star_number(c: &mut Criterion) {
    let mut group = c.benchmark_group("star_number");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3);
    let er = generators::erdos_renyi(2000, 3.0 / 2000.0, &mut rng);
    let geo = generators::random_geometric(1000, 0.04, &mut rng);
    group.bench_function("erdos_renyi_2000", |b| {
        b.iter(|| induced_star_number(&er).value())
    });
    group.bench_function("geometric_1000", |b| {
        b.iter(|| induced_star_number(&geo).value())
    });
    group.finish();
}

fn bench_bounded_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_degree_spanning_forest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in &[200usize, 500] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let delta = induced_star_number(&g).value() + 1;
        group.bench_with_input(BenchmarkId::new("repair", n), &g, |b, g| {
            b.iter(|| bounded_degree_spanning_forest(g, delta).is_some())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_star_number,
    bench_bounded_forest
);
criterion_main!(benches);
