//! Criterion micro-benchmarks for the max-flow, LP and polytope-solver
//! substrates.

use ccdp_flow::{max_weight_closure, ClosureInstance, FlowNetwork};
use ccdp_graph::{
    bounded_degree_spanning_forest, bounded_degree_spanning_forest_csr, generators, CsrGraph, Graph,
};
use ccdp_lp::{LinearProgram, SolverBackend};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn grid_network(side: usize) -> (FlowNetwork, usize, usize) {
    // Source -> left column, right column -> sink, unit-ish capacities.
    let n = side * side;
    let mut net = FlowNetwork::new(n + 2);
    let source = n;
    let sink = n + 1;
    let idx = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        net.add_edge(source, idx(r, 0), 1.0);
        net.add_edge(idx(r, side - 1), sink, 1.0);
        for c in 0..side {
            if c + 1 < side {
                net.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < side {
                net.add_edge(idx(r, c), idx(r + 1, c), 0.5);
                net.add_edge(idx(r + 1, c), idx(r, c), 0.5);
            }
        }
    }
    (net, source, sink)
}

fn bench_dinic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dinic");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for &side in &[10usize, 20] {
        group.bench_function(format!("grid_{side}x{side}"), |b| {
            b.iter(|| {
                let (net, s, t) = grid_network(side);
                net.max_flow(s, t).value
            })
        });
    }
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_weight_closure");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);
    let num_vertices: usize = 200;
    let num_edges = 600;
    let mut inst = ClosureInstance::new();
    let vs: Vec<usize> = (0..num_vertices).map(|_| inst.add_item(-1.0)).collect();
    for _ in 0..num_edges {
        let e = inst.add_item(rng.gen_range(0.1..1.0));
        let a = rng.gen_range(0..num_vertices);
        let b = rng.gen_range(0..num_vertices);
        inst.add_requirement(e, vs[a]);
        inst.add_requirement(e, vs[b]);
    }
    group.bench_function("separation_like_200v_600e", |b| {
        b.iter(|| max_weight_closure(&inst).weight)
    });
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2);
    for &(vars, cons) in &[(50usize, 100usize), (150, 300)] {
        let mut lp = LinearProgram::new(vars, vec![1.0; vars]);
        for _ in 0..cons {
            let row: Vec<f64> = (0..vars)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        rng.gen_range(0.0..1.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            lp.add_constraint_dense(row, rng.gen_range(1.0..5.0));
        }
        group.bench_function(format!("random_{vars}v_{cons}c"), |b| {
            b.iter(|| lp.solve().map(|s| s.objective_value).unwrap_or(0.0))
        });
    }
    group.finish();
}

fn bench_forest_polytope(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_polytope");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    // Both backends on a modest instance (the reference simplex backend is
    // only viable at this scale)…
    let mut rng = StdRng::seed_from_u64(3);
    let small = generators::erdos_renyi(40, 3.0 / 40.0, &mut rng);
    for backend in [SolverBackend::Combinatorial, SolverBackend::Simplex] {
        group.bench_function(format!("er40_d2_{}", backend.solver().name()), |b| {
            b.iter(|| backend.solver().solve(&small, 2.0).unwrap().value)
        });
    }
    // …and the default backend on the supercritical giant-component workload
    // that motivated the solver layer (minutes with the old dense simplex).
    let giant = generators::erdos_renyi(300, 3.0 / 300.0, &mut rng);
    for delta in [2.0, 3.0] {
        group.bench_function(format!("er300_giant_d{delta}_combinatorial"), |b| {
            b.iter(|| {
                SolverBackend::Combinatorial
                    .solver()
                    .solve(&giant, delta)
                    .unwrap()
                    .value
            })
        });
    }
    group.finish();
}

fn supercritical_er(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::erdos_renyi(n, 1.05 / n as f64, &mut rng)
}

fn bench_csr_vs_adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_vs_adjacency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let g = supercritical_er(n, 7);
        let csr = CsrGraph::from_graph(&g);
        // Arena construction from the mutable graph (the snapshot-publish
        // cost of the streaming tier).
        group.bench_function(format!("construct_csr_n{n}"), |b| {
            b.iter(|| CsrGraph::from_graph(&g).num_edges())
        });
        // Whole-graph component labeling: pointer-chasing adjacency rows vs
        // one contiguous arena sweep.
        group.bench_function(format!("components_adjacency_n{n}"), |b| {
            b.iter(|| g.num_connected_components())
        });
        group.bench_function(format!("components_csr_n{n}"), |b| {
            b.iter(|| csr.num_components())
        });
    }
    // The Lemma 1.8 forest construction, both hosts (the hot inner loop of
    // the extension fast path). 10^6 would dominate the run; 10^5 is where
    // the layouts already separate.
    for &n in &[10_000usize, 100_000] {
        let g = supercritical_er(n, 11);
        let csr = CsrGraph::from_graph(&g);
        group.bench_function(format!("forest_adjacency_n{n}"), |b| {
            b.iter(|| bounded_degree_spanning_forest(&g, 2).map(|f| f.num_edges()))
        });
        group.bench_function(format!("forest_csr_n{n}"), |b| {
            b.iter(|| bounded_degree_spanning_forest_csr(&csr, 2).map(|f| f.num_edges()))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Per-component polytope solving on a barely-supercritical ER graph:
    // thousands of small tree/unicyclic pieces plus one giant component,
    // Δ = 1 so every non-trivial piece takes the LP path.
    for &n in &[20_000usize, 100_000] {
        let g = supercritical_er(n, 13);
        for &threads in &[1usize, 2, 4, 8] {
            group.bench_function(format!("solve_er_n{n}_t{threads}"), |b| {
                b.iter(|| {
                    SolverBackend::Combinatorial
                        .solver()
                        .solve_threaded(&g, 1.0, threads)
                        .unwrap()
                        .value
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dinic,
    bench_closure,
    bench_simplex,
    bench_forest_polytope,
    bench_csr_vs_adjacency,
    bench_thread_scaling
);
criterion_main!(benches);
