//! Criterion micro-benchmarks for EvalLipschitzExtension (Algorithm 2): the
//! spanning-forest fast path and the constraint-generation LP path.

use ccdp_core::LipschitzExtension;
use ccdp_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_fast_path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::erdos_renyi(n, 2.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("er_delta_8", n), &g, |b, g| {
            b.iter(|| LipschitzExtension::new(8).evaluate(g).unwrap())
        });
    }
    group.finish();
}

fn bench_lp_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_lp_path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &cliques in &[5usize, 15] {
        let g = generators::caveman(cliques, 5);
        group.bench_with_input(
            BenchmarkId::new("caveman_delta_1", g.num_vertices()),
            &g,
            |b, g| {
                b.iter(|| {
                    LipschitzExtension::new(1)
                        .without_fast_path()
                        .evaluate(g)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fast_path, bench_lp_path);
criterion_main!(benches);
