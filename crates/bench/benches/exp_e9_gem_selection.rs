//! Experiment E9 (Theorem 3.5 / Algorithm 4): quality of the Generalized
//! Exponential Mechanism's threshold selection. Reports the distribution of the
//! selected Δ̂ and the realized approximation error err(Δ̂) relative to the best
//! err(Δ) over the grid, for graphs with different Δ*.

use ccdp_bench::Table;
use ccdp_core::{DiagnosticsAccess, PrivateSpanningForestEstimator};
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 1.0;
    let trials = 40;
    let mut table = Table::new(
        &format!("E9: GEM selection quality over {trials} runs, ε = {epsilon}"),
        &["graph", "Δ*", "median Δ̂", "P[Δ̂ ≤ 2Δ*]", "mean err ratio"],
    );
    for (name, star_size) in [
        ("star forest Δ*=1", 1usize),
        ("star forest Δ*=4", 4),
        ("star forest Δ*=16", 16),
    ] {
        let num_stars = 600 / (star_size + 1);
        let g = generators::planted_star_forest(num_stars, star_size, 0);
        let truth = g.spanning_forest_size() as f64;
        let mut rng = StdRng::seed_from_u64(star_size as u64);
        let est = PrivateSpanningForestEstimator::new(epsilon).unwrap();
        let token = DiagnosticsAccess::acknowledge_non_private();
        let mut selected = Vec::new();
        let mut ratios = Vec::new();
        for _ in 0..trials {
            let r = est.estimate(&g, &mut rng).unwrap();
            let diag = r.diagnostics(token);
            let selected_delta = diag.selected_delta.expect("adaptive estimator");
            selected.push(selected_delta);
            // err(Δ) = |f_Δ(G) − f_sf(G)| + 2Δ/ε per the GEM objective with ε/2.
            let errs: Vec<f64> = diag
                .family_values
                .iter()
                .map(|&(d, v)| (v - truth).abs() + 2.0 * d as f64 / epsilon)
                .collect();
            let best = errs.iter().cloned().fold(f64::INFINITY, f64::min);
            let chosen = diag
                .family_values
                .iter()
                .position(|&(d, _)| d == selected_delta)
                .map(|i| errs[i])
                .unwrap_or(best);
            ratios.push(chosen / best);
        }
        selected.sort_unstable();
        let median_delta = selected[trials / 2];
        let within =
            selected.iter().filter(|&&d| d <= 2 * star_size).count() as f64 / trials as f64;
        let mean_ratio = ratios.iter().sum::<f64>() / trials as f64;
        table.add_row(vec![
            name.to_string(),
            star_size.to_string(),
            median_delta.to_string(),
            format!("{within:.2}"),
            format!("{mean_ratio:.2}"),
        ]);
    }
    table.print();
    println!(
        "Expected shape: the median selected Δ̂ tracks Δ*; the realized err ratio stays O(ln ln n)."
    );
}
