//! Experiment E10 (polynomial-time claim, Section 3 and the conclusion): wall-clock
//! scaling of EvalLipschitzExtension (the constraint-generation LP) and of the full
//! Algorithm 1, plus the effect of the spanning-forest fast path.

use ccdp_bench::Table;
use ccdp_core::{DiagnosticsAccess, LipschitzExtension, PrivateSpanningForestEstimator};
use ccdp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut lp_table = Table::new(
        "E10a: EvalLipschitzExtension via the LP (fast path disabled), caveman graphs, Δ = 1",
        &[
            "n",
            "edges",
            "time (ms)",
            "generated cuts",
            "LP solves",
            "simplex pivots",
        ],
    );
    for cliques in [5usize, 10, 20, 30] {
        let g = generators::caveman(cliques, 5);
        let start = Instant::now();
        let eval = LipschitzExtension::new(1)
            .without_fast_path()
            .evaluate_detailed(&g)
            .unwrap();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let lp = eval.lp.expect("LP path");
        lp_table.add_row(vec![
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{elapsed:.1}"),
            lp.generated_cuts.to_string(),
            lp.lp_solves.to_string(),
            lp.lp_iterations.to_string(),
        ]);
    }
    lp_table.print();

    let mut fast_table = Table::new(
        "E10b: fast path (spanning Δ-forest found) vs LP on the same instance, Δ = 3",
        &["n", "fast path (ms)", "LP path (ms)"],
    );
    for cliques in [10usize, 20, 40] {
        let g = generators::caveman(cliques, 4);
        let t0 = Instant::now();
        let _ = LipschitzExtension::new(3).evaluate(&g).unwrap();
        let fast = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ = LipschitzExtension::new(3)
            .without_fast_path()
            .evaluate(&g)
            .unwrap();
        let slow = t1.elapsed().as_secs_f64() * 1e3;
        fast_table.add_row(vec![
            g.num_vertices().to_string(),
            format!("{fast:.1}"),
            format!("{slow:.1}"),
        ]);
    }
    fast_table.print();

    let mut alg_table = Table::new(
        "E10c: full Algorithm 1 wall-clock time (ε = 1)",
        &["graph", "n", "time (ms)", "used LP"],
    );
    let mut rng = StdRng::seed_from_u64(10);
    let cases = vec![
        (
            "G(1000, 0.8/n)".to_string(),
            generators::erdos_renyi(1000, 0.8 / 1000.0, &mut rng),
        ),
        (
            "G(4000, 0.8/n)".to_string(),
            generators::erdos_renyi(4000, 0.8 / 4000.0, &mut rng),
        ),
        (
            "geometric(2000)".to_string(),
            generators::random_geometric(2000, 0.015, &mut rng),
        ),
        ("grid(12x12)".to_string(), generators::grid(12, 12)),
    ];
    for (name, g) in cases {
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let start = Instant::now();
        let r = est.estimate(&g, &mut rng).unwrap();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        alg_table.add_row(vec![
            name,
            g.num_vertices().to_string(),
            format!("{elapsed:.1}"),
            r.diagnostics(DiagnosticsAccess::acknowledge_non_private())
                .used_lp
                .to_string(),
        ]);
    }
    alg_table.print();
    println!("Expected shape: LP time grows polynomially (roughly cubically) in component size;");
    println!("the fast path avoids the LP whenever a spanning Δ-forest exists.");
}
