//! Criterion micro-benchmarks for the streaming tier.
//!
//! Three slices of the streaming stack:
//! * `mutation_throughput_inserts` — an insert-only epoch (the union-find
//!   fast path, no rebuilds),
//! * `mutation_throughput_mixed` — the CI mutation mix with real deletions
//!   (epoch compaction + lazy rebuilds included),
//! * `release_pipeline` — one full scheduler release: snapshot → publish →
//!   invalidate → charge → estimate → log.

use ccdp_core::ExtensionCache;
use ccdp_serve::{BudgetLedger, GraphRegistry, TenantId};
use ccdp_stream::{
    GraphStream, Mutation, MutationSpec, ReleasePolicy, ReleaseScheduler, SchedulerConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_mutation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Pure growth: 2000 scripted insertions over a 500-vertex universe.
    let inserts: Vec<Mutation> = (0..2000u64)
        .map(|i| Mutation::insert(i + 1, (i as usize * 7) % 500, (i as usize * 13 + 1) % 500))
        .filter(|m| m.u != m.v)
        .collect();
    group.bench_function("mutation_throughput_inserts_2000", |b| {
        b.iter(|| {
            let mut stream = GraphStream::new("bench/inserts");
            stream.apply_batch(&inserts).unwrap();
            stream.num_components()
        })
    });

    // The CI mix: 30% real deletions, so counts pay epoch rebuilds.
    let spec = MutationSpec {
        graphs: 1,
        vertices: 200,
        initial_avg_degree: 2.0,
        mutations_per_graph: 2000,
        delete_fraction: 0.3,
        seed: 77,
    };
    let script = spec.mutations(0);
    let initial = spec.initial_graph(0);
    group.bench_function("mutation_throughput_mixed_2000", |b| {
        b.iter(|| {
            let mut stream = GraphStream::from_graph("bench/mixed", initial.clone());
            for chunk in script.chunks(50) {
                stream.apply_batch(chunk).unwrap();
                // Count per chunk: the serving pattern (scheduler observes
                // between batches), so rebuild cost is actually exercised.
                std::hint::black_box(stream.num_components());
            }
            stream.stats().rebuilds
        })
    });
    group.finish();
}

fn bench_release_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("bench", 1e9).unwrap();
    let tenant = TenantId::new("bench");
    let cache = Arc::new(ExtensionCache::new(64));
    let scheduler = ReleaseScheduler::new(
        SchedulerConfig::new(ReleasePolicy::OnDemand)
            .with_epsilon(0.1)
            .with_retain_versions(4),
        registry,
        ledger,
        cache,
    );
    let spec = MutationSpec::ci_smoke();
    let mut stream = spec.stream(0);
    let script = spec.mutations(0);
    let mut next = 0usize;

    group.bench_function("release_pipeline_48v", |b| {
        b.iter(|| {
            // A few mutations between releases keep every snapshot distinct.
            let end = (next + 4).min(script.len());
            if next < end {
                stream.apply_batch(&script[next..end]).unwrap();
                next = end;
            }
            scheduler.release_now(&mut stream, &tenant).unwrap().value
        })
    });
    group.finish();
}

criterion_group!(
    stream_benches,
    bench_mutation_throughput,
    bench_release_pipeline
);
criterion_main!(stream_benches);
