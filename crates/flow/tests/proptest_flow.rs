//! Property-based tests for max-flow / min-cut and the closure reduction.

use ccdp_flow::{max_weight_closure, ClosureInstance, FlowNetwork};
use proptest::prelude::*;

/// Random small flow network description: (num internal nodes, edges (u, v, cap)).
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..7).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 0.1f64..3.0).prop_filter("no self loops", |(u, v, _)| u != v),
            1..15,
        );
        (Just(n), edges)
    })
}

/// Brute-force minimum s-t cut by enumerating all vertex bipartitions.
fn brute_force_min_cut(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask >> s & 1 == 0 || mask >> t & 1 == 1 {
            continue;
        }
        let cut: f64 = edges
            .iter()
            .filter(|&&(u, v, _)| mask >> u & 1 == 1 && mask >> v & 1 == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn max_flow_equals_brute_force_min_cut((n, edges) in arb_network()) {
        let s = 0;
        let t = n - 1;
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let result = net.max_flow(s, t);
        let expected = brute_force_min_cut(n, &edges, s, t);
        prop_assert!((result.value - expected).abs() < 1e-6,
            "flow {} vs min cut {}", result.value, expected);
        // The reported source side is a valid cut of the same capacity.
        prop_assert!(result.source_side[s]);
        prop_assert!(!result.source_side[t]);
        let reported_cut: f64 = edges
            .iter()
            .filter(|&&(u, v, _)| result.source_side[u] && !result.source_side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert!((reported_cut - expected).abs() < 1e-6);
    }

    #[test]
    fn closure_weight_is_nonnegative_and_closed(
        weights in proptest::collection::vec(-3.0f64..3.0, 1..8),
        arcs in proptest::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let mut inst = ClosureInstance::new();
        for &w in &weights {
            inst.add_item(w);
        }
        let n = weights.len();
        let mut kept = Vec::new();
        for &(a, b) in &arcs {
            if a < n && b < n && a != b {
                inst.add_requirement(a, b);
                kept.push((a, b));
            }
        }
        let sol = max_weight_closure(&inst);
        prop_assert!(sol.weight >= -1e-9);
        // The selected set is closed under the requirements.
        for &(a, b) in &kept {
            if sol.selected[a] {
                prop_assert!(sol.selected[b], "closure not closed under {a} -> {b}");
            }
        }
        // The reported weight matches the selected set.
        let recomputed: f64 = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| sol.selected[*i])
            .map(|(_, &w)| w)
            .sum();
        prop_assert!((recomputed - sol.weight).abs() < 1e-6);
    }
}
