//! Maximum-flow / minimum-cut substrate.
//!
//! The forest-polytope separation oracle of the core crate reduces to a sequence
//! of maximum-weight-closure (project-selection) problems, each of which is a
//! single s-t minimum cut. This crate provides:
//!
//! * [`dinic`]: Dinic's maximum-flow algorithm on a capacitated directed graph,
//! * [`closure`]: the maximum-weight closure reduction built on top of it.

pub mod closure;
pub mod dinic;

pub use closure::{max_weight_closure, ClosureInstance, ClosureSolution};
pub use dinic::{FlowNetwork, MaxFlowResult};
