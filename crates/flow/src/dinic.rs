//! Dinic's maximum-flow algorithm with floating-point capacities.
//!
//! Capacities are `f64`; the algorithm uses a small tolerance to decide whether a
//! residual edge is usable, which is appropriate for the LP separation use case
//! where capacities come from an LP solution.

/// Tolerance below which residual capacity is treated as zero.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Edge {
    to: usize,
    cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network on vertices `0..n` with directed, capacitated edges.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
}

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlowResult {
    /// The maximum flow value (equal to the minimum cut capacity).
    pub value: f64,
    /// Vertices reachable from the source in the final residual network
    /// (the source side of a minimum cut).
    pub source_side: Vec<bool>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with the given capacity.
    ///
    /// # Panics
    /// Panics if the capacity is negative or an endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "vertex out of range"
        );
        let rev_from = self.graph[to].len() + usize::from(from == to);
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0.0,
            rev: rev_to,
        });
    }

    fn bfs_levels(&self, source: usize, sink: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        level[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for e in &self.graph[u] {
                if e.cap > EPS && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if level[sink] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        sink: usize,
        pushed: f64,
        level: &[i32],
        iter: &mut [usize],
    ) -> f64 {
        if u == sink {
            return pushed;
        }
        while iter[u] < self.graph[u].len() {
            let (to, cap) = {
                let e = &self.graph[u][iter[u]];
                (e.to, e.cap)
            };
            if cap > EPS && level[to] == level[u] + 1 {
                let d = self.dfs_augment(to, sink, pushed.min(cap), level, iter);
                if d > EPS {
                    let rev = self.graph[u][iter[u]].rev;
                    self.graph[u][iter[u]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Computes the maximum `source -> sink` flow and a minimum cut.
    ///
    /// The network is consumed (residual capacities are left in place internally).
    pub fn max_flow(mut self, source: usize, sink: usize) -> MaxFlowResult {
        assert_ne!(source, sink, "source and sink must differ");
        let mut value = 0.0;
        while let Some(level) = self.bfs_levels(source, sink) {
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let pushed = self.dfs_augment(source, sink, f64::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                value += pushed;
            }
        }
        // Source side of the min cut: vertices reachable in the residual network.
        let mut source_side = vec![false; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        source_side[source] = true;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for e in &self.graph[u] {
                if e.cap > EPS && !source_side[e.to] {
                    source_side[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        MaxFlowResult { value, source_side }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.5);
        let r = net.max_flow(0, 1);
        assert!(approx(r.value, 3.5));
        assert!(r.source_side[0]);
        assert!(!r.source_side[1]);
    }

    #[test]
    fn series_edges_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 2.0);
        let r = net.max_flow(0, 2);
        assert!(approx(r.value, 2.0));
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 3, 3.0);
        net.add_edge(0, 2, 4.0);
        net.add_edge(2, 3, 2.0);
        let r = net.max_flow(0, 3);
        assert!(approx(r.value, 5.0));
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with known max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        let r = net.max_flow(0, 5);
        assert!(approx(r.value, 23.0));
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        let r = net.max_flow(0, 3);
        assert!(approx(r.value, 0.0));
        assert!(r.source_side[0] && r.source_side[1]);
        assert!(!r.source_side[3]);
    }

    #[test]
    fn min_cut_separates_source_and_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 0.5);
        let r = net.max_flow(0, 3);
        assert!(approx(r.value, 1.5));
        assert!(r.source_side[0]);
        assert!(!r.source_side[3]);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.25);
        net.add_edge(0, 1, 0.5);
        net.add_edge(1, 2, 0.6);
        let r = net.max_flow(0, 2);
        assert!(approx(r.value, 0.6));
    }

    #[test]
    #[should_panic]
    fn negative_capacity_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1.0);
    }
}
