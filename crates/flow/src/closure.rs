//! Maximum-weight closure (project selection).
//!
//! Instance: items with weights (positive = profit, negative = cost) and
//! precedence constraints `a -> b` meaning "if `a` is selected then `b` must also
//! be selected". The goal is a closed set of items of maximum total weight.
//!
//! The classical reduction solves this with one s-t minimum cut: the source feeds
//! every positive-weight item with capacity equal to its profit, every
//! negative-weight item feeds the sink with capacity equal to its cost, and
//! precedence arcs get infinite capacity. The optimal closure is the source side of
//! a minimum cut and its weight is (total profit) − (min cut).
//!
//! The separation oracle for the forest polytope (core crate) uses this with one
//! item per LP-positive edge (profit `x_e`) and one item per vertex (cost 1).

use crate::dinic::FlowNetwork;

/// A maximum-weight-closure instance.
#[derive(Clone, Debug, Default)]
pub struct ClosureInstance {
    weights: Vec<f64>,
    /// Precedence arcs `(a, b)`: selecting `a` forces selecting `b`.
    arcs: Vec<(usize, usize)>,
}

/// Solution of a maximum-weight-closure instance.
#[derive(Clone, Debug)]
pub struct ClosureSolution {
    /// Total weight of the optimal closure (always ≥ 0: the empty set is closed).
    pub weight: f64,
    /// Membership indicator of the optimal closure.
    pub selected: Vec<bool>,
}

impl ClosureInstance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an item with the given weight and returns its index.
    pub fn add_item(&mut self, weight: f64) -> usize {
        self.weights.push(weight);
        self.weights.len() - 1
    }

    /// Adds the precedence constraint "selecting `a` requires selecting `b`".
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn add_requirement(&mut self, a: usize, b: usize) {
        assert!(
            a < self.weights.len() && b < self.weights.len(),
            "item out of range"
        );
        self.arcs.push((a, b));
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.weights.len()
    }
}

/// Solves a maximum-weight-closure instance exactly via a single min-cut.
pub fn max_weight_closure(instance: &ClosureInstance) -> ClosureSolution {
    let n = instance.num_items();
    if n == 0 {
        return ClosureSolution {
            weight: 0.0,
            selected: Vec::new(),
        };
    }
    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    let infinite: f64 = 1.0 + instance.weights.iter().map(|w| w.abs()).sum::<f64>();
    let mut total_profit = 0.0;
    for (i, &w) in instance.weights.iter().enumerate() {
        if w > 0.0 {
            net.add_edge(source, i, w);
            total_profit += w;
        } else if w < 0.0 {
            net.add_edge(i, sink, -w);
        }
    }
    for &(a, b) in &instance.arcs {
        net.add_edge(a, b, infinite);
    }
    let result = net.max_flow(source, sink);
    let selected: Vec<bool> = (0..n).map(|i| result.source_side[i]).collect();
    ClosureSolution {
        weight: (total_profit - result.value).max(0.0),
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    /// Brute-force closure solver for cross-checks.
    fn brute_force(instance: &ClosureInstance) -> f64 {
        let n = instance.num_items();
        assert!(n <= 20);
        let mut best = 0.0f64;
        'outer: for mask in 0u32..(1 << n) {
            for &(a, b) in &instance.arcs {
                if mask >> a & 1 == 1 && mask >> b & 1 == 0 {
                    continue 'outer;
                }
            }
            let w: f64 = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| instance.weights[i])
                .sum();
            best = best.max(w);
        }
        best
    }

    #[test]
    fn empty_instance() {
        let sol = max_weight_closure(&ClosureInstance::new());
        assert!(approx(sol.weight, 0.0));
    }

    #[test]
    fn single_profitable_item() {
        let mut inst = ClosureInstance::new();
        inst.add_item(2.5);
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 2.5));
        assert!(sol.selected[0]);
    }

    #[test]
    fn unprofitable_item_is_skipped() {
        let mut inst = ClosureInstance::new();
        inst.add_item(-1.0);
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 0.0));
        assert!(!sol.selected[0]);
    }

    #[test]
    fn profit_requires_cost() {
        let mut inst = ClosureInstance::new();
        let p = inst.add_item(3.0);
        let c = inst.add_item(-2.0);
        inst.add_requirement(p, c);
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 1.0));
        assert!(sol.selected[p] && sol.selected[c]);
    }

    #[test]
    fn profit_not_worth_its_cost() {
        let mut inst = ClosureInstance::new();
        let p = inst.add_item(1.0);
        let c = inst.add_item(-5.0);
        inst.add_requirement(p, c);
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 0.0));
        assert!(!sol.selected[p]);
    }

    #[test]
    fn shared_cost_between_profits() {
        // Two projects sharing one machine: both are selected because together they
        // cover the cost.
        let mut inst = ClosureInstance::new();
        let p1 = inst.add_item(2.0);
        let p2 = inst.add_item(2.0);
        let c = inst.add_item(-3.0);
        inst.add_requirement(p1, c);
        inst.add_requirement(p2, c);
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 1.0));
        assert!(sol.selected[p1] && sol.selected[p2] && sol.selected[c]);
    }

    #[test]
    fn edge_vertex_structure_like_separation_oracle() {
        // Mimics the forest-polytope separation structure: edges with fractional
        // profit requiring both endpoints (cost 1 each).
        let mut inst = ClosureInstance::new();
        let v: Vec<usize> = (0..3).map(|_| inst.add_item(-1.0)).collect();
        // Triangle with x_e = 0.9 on each edge: total profit 2.7, cost 3 -> skip.
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            let e = inst.add_item(0.9);
            inst.add_requirement(e, v[a]);
            inst.add_requirement(e, v[b]);
        }
        let sol = max_weight_closure(&inst);
        assert!(approx(sol.weight, 0.0));

        // With x_e = 1.2 the triangle is worth taking (3.6 - 3 = 0.6).
        let mut inst2 = ClosureInstance::new();
        let v2: Vec<usize> = (0..3).map(|_| inst2.add_item(-1.0)).collect();
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            let e = inst2.add_item(1.2);
            inst2.add_requirement(e, v2[a]);
            inst2.add_requirement(e, v2[b]);
        }
        let sol2 = max_weight_closure(&inst2);
        assert!(approx(sol2.weight, 0.6));
    }

    #[test]
    fn random_instances_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..9);
            let mut inst = ClosureInstance::new();
            for _ in 0..n {
                inst.add_item(rng.gen_range(-3.0..3.0));
            }
            for _ in 0..rng.gen_range(0..2 * n) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    inst.add_requirement(a, b);
                }
            }
            let sol = max_weight_closure(&inst);
            let expected = brute_force(&inst);
            assert!(
                (sol.weight - expected).abs() < 1e-6,
                "closure weight {} != brute force {}",
                sol.weight,
                expected
            );
        }
    }
}
