//! Hand-rolled, std-only execution layer for per-component solving.
//!
//! Two primitives, both built directly on `std::thread` (the build environment
//! has no registry access, so no rayon/crossbeam):
//!
//! * [`parallel_map`] — a *scoped* work-stealing fork/join: map a function over
//!   `0..len` on `t` threads and return the results **in index order**. This is
//!   the hot-path primitive: it borrows its closure (no `'static` bound, no
//!   `Arc`), splits the index range into per-worker deques, and lets idle
//!   workers steal from the back of busy ones, so skewed workloads (one giant
//!   component among thousands of tiny ones) still balance. Because results
//!   are assembled by index, the output is **identical for every thread
//!   count** — determinism is positional, not scheduling-dependent.
//! * [`WorkStealingPool`] — a persistent bounded pool for `'static` jobs, the
//!   serve tier's worker-pool pattern (bounded injection, typed
//!   [`PoolError::QueueFull`] backpressure, graceful drain, panic containment)
//!   generalized with per-worker deques and stealing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Maps `f` over `0..len` using up to `threads` workers, returning results in
/// index order.
///
/// Determinism: the result vector depends only on `f`, never on the thread
/// count or the scheduling — `parallel_map(1, …)` and `parallel_map(8, …)`
/// return identical vectors whenever `f` is a pure function of its index.
///
/// Scheduling: the index range is pre-split into contiguous per-worker deques;
/// a worker exhausting its own deque steals single indices from the back of
/// other workers' deques (round-robin victim scan). Locks are held only for
/// queue pops, never while `f` runs.
///
/// `threads` is clamped to `[1, len]`; with one thread (or `len <= 1`) the map
/// runs inline on the caller's stack with zero thread overhead.
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn parallel_map<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 {
        return (0..len).map(f).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * len / threads;
            let hi = (w + 1) * len / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let queues = &queues;
    let f = &f;

    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own deque first (front: preserves locality), then
                        // steal from the back of a victim's deque.
                        let mut task = queues[w].lock().expect("queue lock").pop_front();
                        if task.is_none() {
                            for d in 1..threads {
                                let v = (w + d) % threads;
                                if let Some(t) = queues[v].lock().expect("queue lock").pop_back() {
                                    task = Some(t);
                                    break;
                                }
                            }
                        }
                        match task {
                            // No task anywhere: since indices are never
                            // re-enqueued, empty-everywhere means done.
                            None => break,
                            Some(i) => out.push((i, f(i))),
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(buf) => buf,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for buf in buffers {
        for (i, val) in buf {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(val);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index computed exactly once"))
        .collect()
}

/// Typed refusals from [`WorkStealingPool::try_spawn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pool's bounded backlog is full; the caller should shed load or
    /// retry later (same contract as the serve tier's queue).
    QueueFull,
    /// The pool is shutting down and accepts no new jobs.
    ShuttingDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::QueueFull => write!(f, "pool queue is full"),
            PoolError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for PoolError {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker; submissions round-robin across them, idle
    /// workers steal from the back of busy ones.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted but not yet finished (backlog + running).
    pending: AtomicUsize,
    /// Capacity bound on `pending`; `try_spawn` refuses beyond it.
    capacity: usize,
    shutdown: AtomicBool,
    completed: AtomicUsize,
    panicked: AtomicUsize,
    steals: AtomicUsize,
    /// Parked-worker rendezvous (timed waits make lost wakeups harmless).
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// Drain rendezvous: signaled whenever `pending` hits zero.
    drained: Mutex<()>,
    drained_cv: Condvar,
}

/// A persistent, bounded, work-stealing thread pool for `'static` jobs.
///
/// This generalizes the serving tier's fixed worker pool: submissions go to
/// per-worker deques round-robin, idle workers steal, the backlog is bounded
/// with a typed [`PoolError::QueueFull`] refusal, job panics are contained
/// (counted, pool survives), and [`drain`](Self::drain) waits for quiescence.
/// Dropping the pool shuts it down gracefully: already-queued jobs finish.
pub struct WorkStealingPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl WorkStealingPool {
    /// Spawns a pool with `threads` workers and a backlog bound of `capacity`
    /// jobs (submitted-but-unfinished).
    ///
    /// # Panics
    /// Panics if `threads == 0` or `capacity == 0`.
    pub fn new(threads: usize, capacity: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        assert!(capacity >= 1, "pool needs a positive capacity");
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            capacity,
            shutdown: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            drained: Mutex::new(()),
            drained_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccdp-exec-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkStealingPool {
            shared,
            handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a job, refusing with a typed error when the backlog is at
    /// capacity or the pool is shutting down.
    pub fn try_spawn<F>(&self, job: F) -> Result<(), PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(PoolError::ShuttingDown);
        }
        // Optimistic reserve of a backlog slot.
        let mut cur = self.shared.pending.load(Ordering::Relaxed);
        loop {
            if cur >= self.shared.capacity {
                return Err(PoolError::QueueFull);
            }
            match self.shared.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let w = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[w]
            .lock()
            .expect("queue lock")
            .push_back(Box::new(job));
        self.shared.idle_cv.notify_one();
        Ok(())
    }

    /// Blocks until every submitted job has finished (backlog empty, nothing
    /// running). New submissions during a drain extend it.
    pub fn drain(&self) {
        let mut guard = self.shared.drained.lock().expect("drain lock");
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            let (g, _) = self
                .shared
                .drained_cv
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("drain wait");
            guard = g;
        }
    }

    /// Jobs completed successfully since the pool started.
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Jobs whose closure panicked (contained, pool kept running).
    pub fn panicked(&self) -> usize {
        self.shared.panicked.load(Ordering::Acquire)
    }

    /// Jobs executed by a worker other than the one they were queued on.
    pub fn steals(&self) -> usize {
        self.shared.steals.load(Ordering::Acquire)
    }

    /// Graceful shutdown: already-queued jobs finish, then workers exit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn worker_loop(w: usize, shared: &PoolShared) {
    let threads = shared.queues.len();
    loop {
        let mut job = shared.queues[w].lock().expect("queue lock").pop_front();
        if job.is_none() {
            for d in 1..threads {
                let v = (w + d) % threads;
                if let Some(j) = shared.queues[v].lock().expect("queue lock").pop_back() {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    job = Some(j);
                    break;
                }
            }
        }
        match job {
            Some(job) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                match outcome {
                    Ok(()) => shared.completed.fetch_add(1, Ordering::AcqRel),
                    Err(_) => shared.panicked.fetch_add(1, Ordering::AcqRel),
                };
                if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = shared.drained.lock().expect("drain lock");
                    shared.drained_cv.notify_all();
                }
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let guard = shared.idle.lock().expect("idle lock");
                // Timed wait: a wakeup lost between the queue scan and this
                // park costs at most one timeout period, never a deadlock.
                let _ = shared
                    .idle_cv
                    .wait_timeout(guard, Duration::from_millis(10))
                    .expect("idle wait");
            }
        }
    }
}

/// Minimum units of work (vertices + edges, or any comparable cost proxy) a
/// worker thread must have before fanning out is worth its scheduling cost.
/// The old fixed gate `work < 4096 → sequential` is the special case of two
/// workers; this constant makes the gate scale with the requested budget.
pub const MIN_WORK_PER_THREAD: usize = 2048;

/// Adapts a requested thread budget to the actual work size: at least
/// [`MIN_WORK_PER_THREAD`] units per worker, never more workers than
/// requested. Returns 1 (sequential) when the work cannot feed two workers —
/// callers gate their parallel path on `effective_parallelism(..) >= 2`,
/// which for 2 requested threads reduces exactly to the historical
/// `work < 4096` cutoff.
///
/// Purely a function of its arguments (no machine probing), so gating never
/// changes results across hosts; capping at the *hardware* parallelism is the
/// estimator configuration's job.
pub fn effective_parallelism(threads: usize, work: usize) -> usize {
    threads.max(1).min((work / MIN_WORK_PER_THREAD).max(1))
}

/// A thread-safe per-phase wall-clock aggregator for attributing release cost.
///
/// Phases are named slots; [`PhaseProfiler::phase`] returns a [`PhaseTimer`]
/// RAII guard that adds its scope's elapsed wall time (and one invocation) to
/// the slot on drop. Counters ([`add_count`](Self::add_count)) ride along for
/// unitless totals (components solved, dedup hits). The profiler is purely
/// observational: it never influences values, ordering, or scheduling, so a
/// profiled release is bit-for-bit identical to an unprofiled one.
///
/// Overhead is two `Instant` reads plus one mutex acquisition per scope —
/// intended for coarse pipeline phases (build, partition, solve, noise), not
/// per-edge instrumentation.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    slots: Mutex<Vec<PhaseSlot>>,
}

#[derive(Debug, Clone)]
struct PhaseSlot {
    name: String,
    seconds: f64,
    invocations: u64,
    count: u64,
}

/// One aggregated profiler slot, as reported by [`PhaseProfiler::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name as passed to [`PhaseProfiler::phase`].
    pub name: String,
    /// Total wall-clock seconds across all finished scopes.
    pub seconds: f64,
    /// Number of finished scopes.
    pub invocations: u64,
    /// Unitless counter total from [`PhaseProfiler::add_count`].
    pub count: u64,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a scoped timer for `name`; elapsed time is recorded on drop.
    pub fn phase<'p>(&'p self, name: &str) -> PhaseTimer<'p> {
        PhaseTimer {
            profiler: self,
            name: name.to_string(),
            started: std::time::Instant::now(),
        }
    }

    /// Adds `n` to the unitless counter of `name` (creating the slot if new).
    pub fn add_count(&self, name: &str, n: u64) {
        let mut slots = self.slots.lock().expect("profiler lock");
        let slot = Self::slot(&mut slots, name);
        slot.count += n;
    }

    fn add_seconds(&self, name: &str, seconds: f64) {
        let mut slots = self.slots.lock().expect("profiler lock");
        let slot = Self::slot(&mut slots, name);
        slot.seconds += seconds;
        slot.invocations += 1;
    }

    fn slot<'a>(slots: &'a mut Vec<PhaseSlot>, name: &str) -> &'a mut PhaseSlot {
        // Linear scan keeps first-use registration order for reporting; the
        // slot count is the number of pipeline phases, i.e. tiny.
        if let Some(i) = slots.iter().position(|s| s.name == name) {
            return &mut slots[i];
        }
        slots.push(PhaseSlot {
            name: name.to_string(),
            seconds: 0.0,
            invocations: 0,
            count: 0,
        });
        slots.last_mut().expect("just pushed")
    }

    /// Snapshot of every slot in first-use order.
    pub fn report(&self) -> Vec<PhaseReport> {
        self.slots
            .lock()
            .expect("profiler lock")
            .iter()
            .map(|s| PhaseReport {
                name: s.name.clone(),
                seconds: s.seconds,
                invocations: s.invocations,
                count: s.count,
            })
            .collect()
    }

    /// Walks every slot in first-use order without allocating:
    /// `f(name, seconds, invocations, count)`. The slot lock is held for the
    /// whole walk, so keep `f` cheap — this exists for per-request boundaries
    /// (span emission) where [`report`](Self::report)'s per-slot `String`
    /// clones and `Vec` are measurable.
    pub fn visit(&self, mut f: impl FnMut(&str, f64, u64, u64)) {
        for s in self.slots.lock().expect("profiler lock").iter() {
            f(&s.name, s.seconds, s.invocations, s.count);
        }
    }

    /// Snapshot of every slot in **stable name order** — the form to diff,
    /// log, or assert on, independent of which phase happened to run first.
    pub fn report_sorted(&self) -> Vec<PhaseReport> {
        let mut report = self.report();
        report.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }

    /// Folds another profiler's slots into this one (summing seconds,
    /// invocations and counts per name). This is how per-thread or
    /// per-request profilers aggregate without sharing a global mutex on the
    /// hot path: each worker times into its own profiler, then merges once.
    pub fn merge(&self, other: &PhaseProfiler) {
        let theirs = other.report();
        let mut slots = self.slots.lock().expect("profiler lock");
        for r in theirs {
            let slot = Self::slot(&mut slots, &r.name);
            slot.seconds += r.seconds;
            slot.invocations += r.invocations;
            slot.count += r.count;
        }
    }

    /// Adds this profiler's totals into a metrics registry as the
    /// `ccdp_exec_phase_*` series (one `phase` label per slot). Counters are
    /// monotone, so call this once per short-lived profiler (e.g. per
    /// request, after [`merge`](Self::merge)-ing worker profilers) — not
    /// repeatedly on one long-lived aggregate.
    pub fn publish(&self, registry: &ccdp_obs::MetricsRegistry) {
        for r in self.report() {
            let labels = [("phase", r.name.as_str())];
            if r.invocations > 0 {
                registry
                    .float_counter_with("ccdp_exec_phase_seconds_total", &labels)
                    .add(r.seconds);
                registry
                    .counter_with("ccdp_exec_phase_invocations_total", &labels)
                    .add(r.invocations);
            }
            if r.count > 0 {
                registry
                    .counter_with("ccdp_exec_phase_count_total", &labels)
                    .add(r.count);
            }
        }
    }

    /// Total seconds recorded for `name`, or 0.0 if the phase never ran.
    pub fn seconds(&self, name: &str) -> f64 {
        self.slots
            .lock()
            .expect("profiler lock")
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.seconds)
            .unwrap_or(0.0)
    }
}

/// RAII guard from [`PhaseProfiler::phase`]: records elapsed wall time into
/// its phase slot when dropped.
#[must_use = "the timer records on drop; binding it to `_` ends the scope immediately"]
pub struct PhaseTimer<'p> {
    profiler: &'p PhaseProfiler,
    name: String,
    started: std::time::Instant,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.profiler
            .add_seconds(&self.name, self.started.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_matches_sequential_for_every_thread_count() {
        let expected: Vec<u64> = (0..257u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = parallel_map(threads, 257, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map(1, 3, |i| i), vec![0, 1, 2]);
        // More threads than items.
        assert_eq!(parallel_map(64, 3, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn parallel_map_balances_skewed_work() {
        // One expensive index among many cheap ones; every index must still be
        // computed exactly once with the right value.
        let touched = AtomicU64::new(0);
        let got = parallel_map(4, 64, |i| {
            touched.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        assert_eq!(touched.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn parallel_map_propagates_panics() {
        parallel_map(4, 16, |i| {
            if i == 9 {
                panic!("deliberate");
            }
            i
        });
    }

    #[test]
    fn pool_runs_all_jobs_and_drains() {
        let pool = WorkStealingPool::new(4, 1024);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let counter = Arc::clone(&counter);
            pool.try_spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .expect("capacity is ample");
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(pool.completed(), 500);
        assert_eq!(pool.panicked(), 0);
        pool.shutdown();
    }

    #[test]
    fn pool_refuses_beyond_capacity() {
        let pool = WorkStealingPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Park the single worker so the backlog fills deterministically.
        {
            let gate = Arc::clone(&gate);
            pool.try_spawn(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        }
        // Wait until the worker has picked the blocker up, then fill the rest.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.try_spawn(|| {}).is_ok() {
            assert!(std::time::Instant::now() < deadline, "backlog never filled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.try_spawn(|| {}), Err(PoolError::QueueFull));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.drain();
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn pool_contains_job_panics() {
        let pool = WorkStealingPool::new(2, 64);
        pool.try_spawn(|| panic!("contained")).unwrap();
        pool.try_spawn(|| {}).unwrap();
        pool.drain();
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.completed(), 1);
        // Pool still works after a panic.
        let ok = Arc::new(AtomicBool::new(false));
        let ok2 = Arc::clone(&ok);
        pool.try_spawn(move || ok2.store(true, Ordering::Release))
            .unwrap();
        pool.drain();
        assert!(ok.load(Ordering::Acquire));
    }

    #[test]
    fn pool_rejects_after_shutdown_flag() {
        let mut pool = WorkStealingPool::new(2, 8);
        pool.shutdown_inner();
        assert_eq!(pool.try_spawn(|| {}), Err(PoolError::ShuttingDown));
    }

    #[test]
    fn profiler_aggregates_scopes_and_counts() {
        let prof = PhaseProfiler::new();
        for _ in 0..3 {
            let _t = prof.phase("solve");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _t = prof.phase("noise");
        }
        prof.add_count("solve", 10);
        prof.add_count("solve", 5);
        let report = prof.report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "solve");
        assert_eq!(report[0].invocations, 3);
        assert_eq!(report[0].count, 15);
        assert!(report[0].seconds >= 0.004, "slept ~6ms across 3 scopes");
        assert_eq!(report[1].name, "noise");
        assert_eq!(report[1].invocations, 1);
        assert_eq!(prof.seconds("missing"), 0.0);
        assert!(prof.seconds("solve") > 0.0);
    }

    #[test]
    fn profiler_sorted_report_and_merge_aggregate_per_thread_profilers() {
        // Three "worker" profilers with overlapping phases in different
        // first-use orders; the merged sorted report must be deterministic.
        let workers: Vec<PhaseProfiler> = (0..3).map(|_| PhaseProfiler::new()).collect();
        workers[0].add_seconds("solve", 1.0);
        workers[0].add_count("solve", 4);
        workers[1].add_seconds("noise", 0.5);
        workers[1].add_seconds("solve", 2.0);
        workers[2].add_count("anchor", 7);
        let total = PhaseProfiler::new();
        for w in &workers {
            total.merge(w);
        }
        let sorted = total.report_sorted();
        let names: Vec<&str> = sorted.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["anchor", "noise", "solve"]);
        let solve = &sorted[2];
        assert_eq!(solve.invocations, 2);
        assert_eq!(solve.count, 4);
        assert!((solve.seconds - 3.0).abs() < 1e-9);
        assert_eq!(sorted[0].count, 7);
        assert_eq!(sorted[0].invocations, 0);

        // Publishing lands the totals in the registry under phase labels.
        let registry = ccdp_obs::MetricsRegistry::new();
        total.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.sum("ccdp_exec_phase_invocations_total"), 3.0);
        assert!((snap.sum("ccdp_exec_phase_seconds_total") - 3.5).abs() < 1e-9);
        assert_eq!(snap.sum("ccdp_exec_phase_count_total"), 11.0);
    }

    #[test]
    fn profiler_is_usable_across_threads() {
        let prof = PhaseProfiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _t = prof.phase("worker");
                    prof.add_count("worker", 1);
                });
            }
        });
        let report = prof.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].invocations, 4);
        assert_eq!(report[0].count, 4);
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // Submissions round-robin over 4 queues but one worker is blocked;
        // the others must steal its queued jobs for the drain to finish.
        let pool = WorkStealingPool::new(4, 1024);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let counter = Arc::clone(&counter);
            pool.try_spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(100));
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}
