//! Property: the incremental component count a [`GraphStream`] maintains is
//! *always* equal to `ccdp_graph::components` recomputing from scratch —
//! across arbitrary interleavings of insertions and deletions, at every
//! step, whatever epoch compactions happen underneath.

use ccdp_graph::components;
use ccdp_stream::{GraphStream, Mutation};
use proptest::collection::vec;
use proptest::prelude::*;

/// One raw scripted op: endpoints drawn from a small universe plus a delete
/// flag. Self-loop draws are skewed to `(u, u+1)` so every op is valid.
fn op_strategy(n: usize) -> impl Strategy<Value = (usize, usize, bool)> {
    (0..n, 0..n, any::<bool>()).prop_map(move |(u, v, del)| {
        if u == v {
            (u, (u + 1) % n, del)
        } else {
            (u, v, del)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_counts_always_match_recomputation(
        n in 2usize..14,
        raw_ops in vec(op_strategy(14), 1..120),
    ) {
        let mut stream = GraphStream::new("prop");
        for (t, &(u, v, del)) in raw_ops.iter().enumerate() {
            // Clamp endpoints into the drawn universe (the strategy draws
            // from the maximal one so the vec strategy stays simple).
            let (u, v) = (u % n, v % n);
            if u == v {
                continue;
            }
            let m = if del {
                Mutation::delete(t as u64 + 1, u, v)
            } else {
                Mutation::insert(t as u64 + 1, u, v)
            };
            stream.apply(&m).unwrap();
            let expected = components::num_connected_components(stream.graph());
            prop_assert_eq!(
                stream.num_components(),
                expected,
                "divergence after op {} ({:?})",
                t,
                m
            );
        }
    }

    #[test]
    fn cross_check_mode_never_trips(
        n in 2usize..10,
        raw_ops in vec(op_strategy(10), 1..80),
    ) {
        // The stream's own canary must agree with itself on any workload:
        // an error here is a bug in the incremental maintenance.
        let mut stream = GraphStream::new("prop-canary").with_cross_check(true);
        for (t, &(u, v, del)) in raw_ops.iter().enumerate() {
            let (u, v) = (u % n, v % n);
            if u == v {
                continue;
            }
            let m = if del {
                Mutation::delete(t as u64 + 1, u, v)
            } else {
                Mutation::insert(t as u64 + 1, u, v)
            };
            prop_assert!(stream.apply(&m).is_ok(), "cross-check tripped at op {}", t);
        }
    }

    #[test]
    fn snapshots_pin_the_count_at_the_freeze_point(
        raw_ops in vec(op_strategy(8), 2..60),
    ) {
        // Snapshot after every op: each snapshot's stored count must match a
        // from-scratch recount of its own frozen graph, not the live one.
        let mut stream = GraphStream::new("prop-snap");
        let mut snapshots = Vec::new();
        for (t, &(u, v, del)) in raw_ops.iter().enumerate() {
            let m = if del {
                Mutation::delete(t as u64 + 1, u, v)
            } else {
                Mutation::insert(t as u64 + 1, u, v)
            };
            stream.apply(&m).unwrap();
            snapshots.push(stream.snapshot());
        }
        for (i, snap) in snapshots.iter().enumerate() {
            prop_assert_eq!(
                snap.num_components(),
                components::num_connected_components(snap.graph()),
                "snapshot {} disagrees with its own frozen graph",
                i
            );
            prop_assert_eq!(snap.version().value(), i as u64);
        }
    }
}
