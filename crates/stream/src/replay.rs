//! Plain-text mutation-list serialization (the streaming sibling of
//! [`ccdp_graph::io`]).
//!
//! The format extends the edge-list convention to timestamped mutations: one
//! `t OP u v` line per mutation, where `OP` is `+` (insert) or `-` (delete).
//! Lines starting with `#` and blank lines are ignored, so a replay file can
//! carry provenance headers. Example:
//!
//! ```text
//! # day-0 ingest of the social graph
//! 1 + 0 1
//! 2 + 1 2
//! 5 - 0 1
//! ```

use crate::stream::{EdgeOp, Mutation};

/// Error produced when parsing a mutation list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayParseError {
    /// A line could not be parsed as `t OP u v`.
    MalformedLine {
        /// 1-based line number of the offender.
        line_number: usize,
        /// The offending line.
        content: String,
    },
}

impl std::fmt::Display for ReplayParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayParseError::MalformedLine {
                line_number,
                content,
            } => write!(f, "line {line_number}: malformed mutation `{content}`"),
        }
    }
}

impl std::error::Error for ReplayParseError {}

/// Serializes mutations as one `t OP u v` line each.
pub fn to_mutation_list(mutations: &[Mutation]) -> String {
    let mut out = String::new();
    for m in mutations {
        let op = match m.op {
            EdgeOp::Insert => '+',
            EdgeOp::Delete => '-',
        };
        out.push_str(&format!("{} {} {} {}\n", m.time, op, m.u, m.v));
    }
    out
}

/// Parses a mutation list produced by [`to_mutation_list`] (or written by
/// hand in the same format).
pub fn from_mutation_list(text: &str) -> Result<Vec<Mutation>, ReplayParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = || ReplayParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        };
        let mut parts = line.split_whitespace();
        let (Some(t), Some(op), Some(u), Some(v), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(malformed());
        };
        let time: u64 = t.parse().map_err(|_| malformed())?;
        let op = match op {
            "+" => EdgeOp::Insert,
            "-" => EdgeOp::Delete,
            _ => return Err(malformed()),
        };
        let u: usize = u.parse().map_err(|_| malformed())?;
        let v: usize = v.parse().map_err(|_| malformed())?;
        out.push(Mutation { time, op, u, v });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::GraphStream;

    #[test]
    fn round_trip() {
        let script = vec![
            Mutation::insert(1, 0, 1),
            Mutation::insert(2, 1, 2),
            Mutation::delete(5, 0, 1),
        ];
        let text = to_mutation_list(&script);
        assert_eq!(from_mutation_list(&text).unwrap(), script);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let script = from_mutation_list("# header\n\n1 + 0 1\n# mid\n2 - 0 1\n").unwrap();
        assert_eq!(script.len(), 2);
        assert_eq!(script[0], Mutation::insert(1, 0, 1));
        assert_eq!(script[1], Mutation::delete(2, 0, 1));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        for bad in ["1 + 0", "1 * 0 1", "x + 0 1", "1 + a 1", "1 + 0 1 9"] {
            let text = format!("1 + 0 1\n{bad}\n");
            let err = from_mutation_list(&text).unwrap_err();
            assert!(
                matches!(err, ReplayParseError::MalformedLine { line_number: 2, .. }),
                "`{bad}` must be rejected at line 2, got {err:?}"
            );
        }
    }

    #[test]
    fn replayed_feed_drives_a_stream() {
        let text = "1 + 0 1\n1 + 2 3\n2 + 1 2\n3 - 1 2\n";
        let script = from_mutation_list(text).unwrap();
        let mut s = GraphStream::new("replayed");
        s.apply_batch(&script).unwrap();
        assert_eq!(s.num_components(), 2);
        assert_eq!(s.clock(), 3);
    }
}
