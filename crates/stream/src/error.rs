//! The typed failure surface of the streaming tier.

use ccdp_serve::ServeError;

/// Errors surfaced by graph streams and the release scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// A mutation's timestamp ran backwards: streams are ordered by time,
    /// so a regression means the feed is corrupt or replayed out of order.
    TimestampRegression {
        /// The stream clock after the last accepted mutation.
        last: u64,
        /// The offending earlier timestamp.
        got: u64,
    },
    /// A mutation is a self-loop (`u == v`); simple graphs cannot hold it.
    SelfLoop {
        /// The vertex on both endpoints.
        vertex: usize,
    },
    /// An insertion names a vertex at or beyond the stream's universe cap
    /// (see `GraphStream::with_max_vertices`) — refused so one malformed
    /// feed line cannot exhaust memory.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// The stream's cap.
        max_vertices: usize,
    },
    /// The exact cross-check mode found the incremental component count
    /// disagreeing with a from-scratch recomputation. This indicates a bug
    /// in the incremental maintenance and poisons the stream.
    CrossCheckFailed {
        /// The from-scratch count.
        expected: usize,
        /// The incremental count.
        got: usize,
        /// The stream clock at the divergence.
        time: u64,
    },
    /// The serving tier refused an operation (budget exhausted, version
    /// collision, unknown tenant, …).
    Serve(ServeError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::TimestampRegression { last, got } => {
                write!(
                    f,
                    "mutation timestamp {got} is before the stream clock {last}"
                )
            }
            StreamError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not a valid mutation")
            }
            StreamError::VertexOutOfRange {
                vertex,
                max_vertices,
            } => write!(
                f,
                "vertex {vertex} is beyond the stream's universe cap of {max_vertices}"
            ),
            StreamError::CrossCheckFailed {
                expected,
                got,
                time,
            } => write!(
                f,
                "incremental component count {got} != from-scratch {expected} at time {time}"
            ),
            StreamError::Serve(e) => write!(f, "serving tier refused: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for StreamError {
    fn from(e: ServeError) -> Self {
        StreamError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = StreamError::TimestampRegression { last: 9, got: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = StreamError::CrossCheckFailed {
            expected: 3,
            got: 5,
            time: 17,
        };
        assert!(e.to_string().contains("17"));
        let e = StreamError::Serve(ServeError::ShuttingDown);
        assert!(e.to_string().contains("shutting down"));
    }
}
