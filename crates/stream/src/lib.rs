//! Dynamic-graph ingestion and continual node-DP re-estimation.
//!
//! The serving tier (`ccdp_serve`) answers releases over a *static* catalog;
//! real graph workloads mutate — edges arrive and retire — while tenants
//! keep asking "how many connected components *now*?". This crate is the
//! layer that closes that gap:
//!
//! * [`stream`] — [`GraphStream`]: timestamped edge insertions/deletions
//!   (single and batched), incremental component counts (union-find in
//!   insert-only epochs, lazy epoch compaction + rebuild on deletions, an
//!   exact from-scratch cross-check mode), and immutable versioned
//!   [`GraphSnapshot`]s.
//! * [`replay`] — plain-text mutation-list I/O in the style of
//!   [`ccdp_graph::io`]: `t + u v` / `t - u v` lines, so feeds can be
//!   archived and replayed.
//! * [`scheduler`] — [`ReleaseScheduler`]: fires DP re-estimation by
//!   [`ReleasePolicy`] (every k mutations, on component drift, on demand),
//!   publishes each snapshot into the shared version-aware
//!   [`GraphRegistry`](ccdp_serve::GraphRegistry), bulk-invalidates
//!   superseded versions from the shared
//!   [`ExtensionCache`](ccdp_core::ExtensionCache), charges each release to
//!   the owning tenant's [`BudgetLedger`](ccdp_serve::BudgetLedger) and
//!   appends to a versioned release log.
//! * [`mutationgen`] — the deterministic [`MutationSpec`] workload
//!   generator driving the evolving-fleet example and CI smoke job.
//! * [`error`] — the typed [`StreamError`] failure surface.
//!
//! # Quick start
//!
//! ```
//! use ccdp_stream::{
//!     GraphStream, Mutation, ReleasePolicy, ReleaseScheduler, SchedulerConfig,
//! };
//! use ccdp_core::ExtensionCache;
//! use ccdp_serve::{BudgetLedger, GraphRegistry, TenantId};
//! use std::sync::Arc;
//!
//! // Shared serving infrastructure: versioned catalog, tenant quotas, cache.
//! let registry = Arc::new(GraphRegistry::new());
//! let ledger = Arc::new(BudgetLedger::new());
//! ledger.register("analytics-team", 5.0).unwrap();
//! let cache = Arc::new(ExtensionCache::new(64));
//!
//! // A stream ingests mutations; the scheduler re-releases every 2 of them.
//! let sched = ReleaseScheduler::new(
//!     SchedulerConfig::new(ReleasePolicy::EveryKMutations(2)).with_epsilon(0.5),
//!     registry,
//!     ledger,
//!     cache,
//! );
//! let mut stream = GraphStream::new("social/live");
//! let tenant = TenantId::new("analytics-team");
//! stream.apply(&Mutation::insert(1, 0, 1)).unwrap();
//! let baseline = sched.observe(&mut stream, &tenant).unwrap().unwrap();
//! assert!(baseline.value.is_finite());
//! stream.apply(&Mutation::insert(2, 1, 2)).unwrap();
//! stream.apply(&Mutation::delete(3, 0, 1)).unwrap();
//! let update = sched.observe(&mut stream, &tenant).unwrap().unwrap();
//! assert!(update.version > baseline.version);
//! ```

pub mod error;
pub mod mutationgen;
pub mod replay;
pub mod scheduler;
pub mod stream;

pub use error::StreamError;
pub use mutationgen::MutationSpec;
pub use replay::{from_mutation_list, to_mutation_list, ReplayParseError};
pub use scheduler::{
    ReleasePolicy, ReleaseRecord, ReleaseScheduler, ReleaseTrigger, SchedulerConfig,
};
pub use stream::{EdgeOp, GraphSnapshot, GraphStream, Mutation, StreamStats};
