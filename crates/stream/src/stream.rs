//! Timestamped edge-mutation ingestion with incremental component counts
//! and immutable versioned snapshots.
//!
//! A [`GraphStream`] owns one evolving graph and consumes a time-ordered
//! feed of [`Mutation`]s (edge insertions and deletions, single or batched).
//! It maintains the number of connected components *incrementally*:
//!
//! * **Insert-only epochs** are handled by a [`UnionFind`] — each accepted
//!   insertion is one `union`, so a growth phase costs near-constant time
//!   per edge and never re-reads the graph.
//! * **Deletions** end the epoch: union-find cannot split sets, so the
//!   stream marks the structure dirty and *compacts* — the union-find is
//!   rebuilt from the current edge set at the next count query. Deletion
//!   storms are absorbed by one rebuild (the rebuild is lazy), after which a
//!   fresh insert-only epoch begins.
//! * An optional **cross-check mode** recomputes the count from scratch
//!   after every mutation and fails loudly
//!   ([`StreamError::CrossCheckFailed`]) on any divergence — the
//!   belt-and-braces setting for tests and canary deployments.
//!
//! Calling [`GraphStream::snapshot`] freezes the current state into an
//! immutable [`GraphSnapshot`] stamped with the stream's next
//! [`GraphVersion`]; versions increase monotonically and are never reused,
//! so downstream consumers (registry, cache, release log) can treat
//! `(id, version)` as a permanent name for one exact edge set.

use crate::error::StreamError;
use ccdp_graph::{components, CsrGraph, Graph, GraphVersion, UnionFind};
use ccdp_serve::GraphId;
use std::sync::Arc;

/// What one mutation does to an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Add the edge (no-op if present).
    Insert,
    /// Remove the edge (no-op if absent).
    Delete,
}

/// One timestamped edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// Stream time of the mutation (non-decreasing within a feed).
    pub time: u64,
    /// Insert or delete.
    pub op: EdgeOp,
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
}

impl Mutation {
    /// An insertion of `(u, v)` at `time`.
    pub fn insert(time: u64, u: usize, v: usize) -> Self {
        Mutation {
            time,
            op: EdgeOp::Insert,
            u,
            v,
        }
    }

    /// A deletion of `(u, v)` at `time`.
    pub fn delete(time: u64, u: usize, v: usize) -> Self {
        Mutation {
            time,
            op: EdgeOp::Delete,
            u,
            v,
        }
    }
}

/// An immutable, versioned freeze of one stream's state.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    id: GraphId,
    version: GraphVersion,
    graph: Arc<Graph>,
    csr: Arc<CsrGraph>,
    num_components: usize,
    time: u64,
    mutations_applied: u64,
}

impl GraphSnapshot {
    /// The stream's catalog id.
    pub fn id(&self) -> &GraphId {
        &self.id
    }

    /// The snapshot's monotonically increasing version.
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// The frozen graph (shared, never mutated).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The frozen graph's flat CSR arena, built once at the freeze point and
    /// shared by every clone of the snapshot — consumers that iterate the
    /// topology (re-estimation, diffing, export) read the arena instead of
    /// deep-cloning adjacency lists.
    pub fn csr(&self) -> &Arc<CsrGraph> {
        &self.csr
    }

    /// Exact number of connected components at the freeze point.
    ///
    /// This is the *true* (non-private) count, maintained incrementally by
    /// the stream; it exists for scheduling and validation and must never be
    /// released to a tenant as-is.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Stream clock at the freeze point.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Mutations the stream had accepted when frozen.
    pub fn mutations_applied(&self) -> u64 {
        self.mutations_applied
    }
}

/// Counters of one stream's lifetime (cheap copies for reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Mutations accepted (including no-ops on already-present/absent edges).
    pub mutations_applied: u64,
    /// Insertions that changed the graph.
    pub edges_inserted: u64,
    /// Deletions that changed the graph.
    pub edges_deleted: u64,
    /// Union-find rebuilds (epoch compactions) forced by deletions.
    pub rebuilds: u64,
    /// Snapshots published.
    pub snapshots: u64,
}

/// Default cap on a stream's vertex universe: generous for this library's
/// workloads, small enough that one malformed replay line cannot exhaust
/// memory by naming vertex 10^12.
pub const DEFAULT_MAX_VERTICES: usize = 1 << 24;

/// One evolving graph fed by timestamped edge mutations.
#[derive(Clone, Debug)]
pub struct GraphStream {
    id: GraphId,
    graph: Graph,
    uf: UnionFind,
    /// Set by deletions: the union-find no longer reflects the edge set and
    /// must be rebuilt before the next count is read.
    dirty: bool,
    clock: u64,
    next_version: GraphVersion,
    cross_check: bool,
    max_vertices: usize,
    stats: StreamStats,
}

impl GraphStream {
    /// An empty stream (no vertices, no edges) named `id`.
    pub fn new(id: impl Into<GraphId>) -> Self {
        Self::from_graph(id, Graph::default())
    }

    /// A stream starting from an existing graph (version numbering starts at
    /// [`GraphVersion::INITIAL`] with the first snapshot).
    pub fn from_graph(id: impl Into<GraphId>, graph: Graph) -> Self {
        let mut uf = UnionFind::new(graph.num_vertices());
        for (u, v) in graph.edges() {
            uf.union(u, v);
        }
        let max_vertices = DEFAULT_MAX_VERTICES.max(graph.num_vertices());
        GraphStream {
            id: id.into(),
            graph,
            uf,
            dirty: false,
            clock: 0,
            next_version: GraphVersion::INITIAL,
            cross_check: false,
            max_vertices,
            stats: StreamStats::default(),
        }
    }

    /// Enables or disables the exact from-scratch cross-check after every
    /// mutation (expensive: O(n + m) per mutation; for tests and canaries).
    pub fn with_cross_check(mut self, enabled: bool) -> Self {
        self.cross_check = enabled;
        self
    }

    /// Caps the vertex universe (default [`DEFAULT_MAX_VERTICES`], clamped
    /// to at least the initial graph's size): a mutation naming a vertex at
    /// or beyond the cap is a typed [`StreamError::VertexOutOfRange`]
    /// refusal, so one malformed feed line cannot exhaust memory.
    pub fn with_max_vertices(mut self, max: usize) -> Self {
        self.max_vertices = max.max(self.graph.num_vertices());
        self
    }

    /// The stream's catalog id.
    pub fn id(&self) -> &GraphId {
        &self.id
    }

    /// The current graph (read-only; mutate through [`GraphStream::apply`]).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The stream clock: the timestamp of the last accepted mutation.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The version the *next* snapshot will carry.
    pub fn next_version(&self) -> GraphVersion {
        self.next_version
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Applies one mutation. Returns whether the graph changed (re-inserting
    /// a present edge or deleting an absent one is an accepted no-op).
    ///
    /// Only *insertions* grow the vertex universe (up to the
    /// [`with_max_vertices`](Self::with_max_vertices) cap): a deletion
    /// naming unseen vertices cannot possibly remove an edge, so it is a
    /// plain no-op — a typoed delete line never inflates the component
    /// count.
    ///
    /// # Errors
    /// [`StreamError::TimestampRegression`] if `m.time` is before the stream
    /// clock, [`StreamError::SelfLoop`] on `u == v`,
    /// [`StreamError::VertexOutOfRange`] if an insertion names a vertex at
    /// or beyond the cap, and [`StreamError::CrossCheckFailed`] if
    /// cross-check mode detects a divergence (a bug, never an expected
    /// outcome).
    pub fn apply(&mut self, m: &Mutation) -> Result<bool, StreamError> {
        if m.time < self.clock {
            return Err(StreamError::TimestampRegression {
                last: self.clock,
                got: m.time,
            });
        }
        if m.u == m.v {
            return Err(StreamError::SelfLoop { vertex: m.u });
        }
        let top = m.u.max(m.v);
        if m.op == EdgeOp::Insert && top >= self.max_vertices {
            return Err(StreamError::VertexOutOfRange {
                vertex: top,
                max_vertices: self.max_vertices,
            });
        }
        self.clock = m.time;
        let changed = match m.op {
            EdgeOp::Insert => {
                self.grow_to(top + 1);
                let changed = self.graph.add_edge(m.u, m.v);
                if changed {
                    self.stats.edges_inserted += 1;
                    if !self.dirty {
                        // Insert-only epoch: one union keeps the count exact.
                        self.uf.union(m.u, m.v);
                    }
                }
                changed
            }
            EdgeOp::Delete => {
                // Endpoints beyond the current universe cannot hold an edge;
                // remove_edge treats them as the absent-edge no-op.
                let changed = self.graph.remove_edge(m.u, m.v);
                if changed {
                    self.stats.edges_deleted += 1;
                    // Union-find cannot split: end the epoch. The rebuild is
                    // deferred to the next count query, so a storm of
                    // deletions compacts into one rebuild.
                    self.dirty = true;
                }
                changed
            }
        };
        self.stats.mutations_applied += 1;
        if self.cross_check {
            let expected = components::num_connected_components(&self.graph);
            let got = self.num_components();
            if got != expected {
                return Err(StreamError::CrossCheckFailed {
                    expected,
                    got,
                    time: self.clock,
                });
            }
        }
        Ok(changed)
    }

    /// Applies a batch in order; returns how many mutations changed the
    /// graph. Fails fast: on error, mutations before the offender are
    /// already applied.
    pub fn apply_batch(&mut self, batch: &[Mutation]) -> Result<usize, StreamError> {
        let mut changed = 0;
        for m in batch {
            if self.apply(m)? {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// The current number of connected components (isolated vertices count).
    ///
    /// Incremental: free in insert-only epochs; after deletions the first
    /// call pays one union-find rebuild (epoch compaction).
    pub fn num_components(&mut self) -> usize {
        if self.dirty {
            self.rebuild();
        }
        self.uf.num_sets()
    }

    /// Freezes the current state into an immutable snapshot and advances the
    /// stream's version counter.
    pub fn snapshot(&mut self) -> GraphSnapshot {
        let num_components = self.num_components();
        let version = self.next_version;
        self.next_version = version.next();
        self.stats.snapshots += 1;
        GraphSnapshot {
            id: self.id.clone(),
            version,
            csr: Arc::new(CsrGraph::from_graph(&self.graph)),
            graph: Arc::new(self.graph.clone()),
            num_components,
            time: self.clock,
            mutations_applied: self.stats.mutations_applied,
        }
    }

    fn grow_to(&mut self, n: usize) {
        while self.graph.num_vertices() < n {
            self.graph.add_vertex();
        }
        self.uf.grow(n);
    }

    fn rebuild(&mut self) {
        let mut uf = UnionFind::new(self.graph.num_vertices());
        for (u, v) in self.graph.edges() {
            uf.union(u, v);
        }
        self.uf = uf;
        self.dirty = false;
        self.stats.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_only_epoch_counts_without_rebuilds() {
        let mut s = GraphStream::new("g");
        s.apply(&Mutation::insert(1, 0, 1)).unwrap();
        s.apply(&Mutation::insert(2, 2, 3)).unwrap();
        assert_eq!(s.num_components(), 2);
        s.apply(&Mutation::insert(3, 1, 2)).unwrap();
        assert_eq!(s.num_components(), 1);
        // Re-inserting is an accepted no-op.
        assert!(!s.apply(&Mutation::insert(4, 0, 1)).unwrap());
        let stats = s.stats();
        assert_eq!(stats.mutations_applied, 4);
        assert_eq!(stats.edges_inserted, 3);
        assert_eq!(stats.rebuilds, 0, "insert-only epochs never rebuild");
    }

    #[test]
    fn deletions_compact_lazily_into_one_rebuild() {
        let mut s = GraphStream::from_graph("g", Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]));
        assert_eq!(s.num_components(), 2);
        // A deletion storm: three deletes, zero rebuilds until the count is
        // read.
        s.apply(&Mutation::delete(1, 0, 1)).unwrap();
        s.apply(&Mutation::delete(1, 1, 2)).unwrap();
        s.apply(&Mutation::delete(1, 3, 4)).unwrap();
        assert_eq!(s.stats().rebuilds, 0);
        assert_eq!(s.num_components(), 5);
        assert_eq!(s.stats().rebuilds, 1, "the storm compacts into one rebuild");
        // A fresh insert-only epoch is again rebuild-free.
        s.apply(&Mutation::insert(2, 0, 4)).unwrap();
        assert_eq!(s.num_components(), 4);
        assert_eq!(s.stats().rebuilds, 1);
    }

    #[test]
    fn deleting_a_cycle_edge_keeps_components() {
        let mut s = GraphStream::from_graph("g", Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]));
        s.apply(&Mutation::delete(1, 0, 1)).unwrap();
        assert_eq!(s.num_components(), 1, "cycle edge removal cannot split");
        // Deleting an absent edge is an accepted no-op.
        assert!(!s.apply(&Mutation::delete(2, 0, 1)).unwrap());
    }

    #[test]
    fn mutations_grow_the_vertex_universe() {
        let mut s = GraphStream::new("g");
        s.apply(&Mutation::insert(1, 7, 2)).unwrap();
        assert_eq!(s.graph().num_vertices(), 8);
        // 6 isolated vertices + the {2,7} component.
        assert_eq!(s.num_components(), 7);
    }

    #[test]
    fn deletes_of_unseen_vertices_never_grow_the_universe() {
        // Regression: a typoed delete line must not inflate the component
        // count by materializing isolated vertices.
        let mut s = GraphStream::from_graph("g", Graph::from_edges(2, &[(0, 1)]));
        assert!(!s.apply(&Mutation::delete(1, 0, 999)).unwrap());
        assert_eq!(s.graph().num_vertices(), 2);
        assert_eq!(s.num_components(), 1);
    }

    #[test]
    fn insertions_beyond_the_cap_are_typed_refusals() {
        let mut s = GraphStream::new("g").with_max_vertices(10);
        s.apply(&Mutation::insert(1, 0, 9)).unwrap();
        let err = s.apply(&Mutation::insert(2, 0, 10)).unwrap_err();
        assert_eq!(
            err,
            StreamError::VertexOutOfRange {
                vertex: 10,
                max_vertices: 10
            }
        );
        // usize::MAX cannot overflow the growth arithmetic: it is refused
        // before any growth happens.
        let err = s.apply(&Mutation::insert(3, 0, usize::MAX)).unwrap_err();
        assert!(matches!(err, StreamError::VertexOutOfRange { .. }));
        assert_eq!(s.graph().num_vertices(), 10);
        // The cap never truncates an initial graph.
        let s = GraphStream::from_graph("h", Graph::new(20)).with_max_vertices(5);
        assert_eq!(s.graph().num_vertices(), 20);
    }

    #[test]
    fn timestamps_must_be_monotone() {
        let mut s = GraphStream::new("g");
        s.apply(&Mutation::insert(5, 0, 1)).unwrap();
        let err = s.apply(&Mutation::insert(3, 1, 2)).unwrap_err();
        assert_eq!(err, StreamError::TimestampRegression { last: 5, got: 3 });
        // Equal timestamps are fine (batches share a tick).
        s.apply(&Mutation::insert(5, 1, 2)).unwrap();
        assert_eq!(s.clock(), 5);
    }

    #[test]
    fn self_loops_are_typed_refusals() {
        let mut s = GraphStream::new("g");
        let err = s.apply(&Mutation::insert(1, 3, 3)).unwrap_err();
        assert_eq!(err, StreamError::SelfLoop { vertex: 3 });
        assert_eq!(s.stats().mutations_applied, 0);
    }

    #[test]
    fn snapshots_are_immutable_and_versioned() {
        let mut s = GraphStream::new("g");
        s.apply(&Mutation::insert(1, 0, 1)).unwrap();
        let snap0 = s.snapshot();
        assert_eq!(snap0.version(), GraphVersion::INITIAL);
        assert_eq!(snap0.num_components(), 1);
        assert_eq!(snap0.mutations_applied(), 1);
        // Mutating the stream after the freeze does not touch the snapshot.
        s.apply(&Mutation::insert(2, 2, 3)).unwrap();
        let snap1 = s.snapshot();
        assert_eq!(snap1.version(), GraphVersion::new(1));
        assert_eq!(snap0.graph().num_vertices(), 2);
        assert_eq!(snap1.graph().num_vertices(), 4);
        assert_eq!(snap1.num_components(), 2);
        assert_eq!(s.stats().snapshots, 2);
        assert_eq!(s.next_version(), GraphVersion::new(2));
    }

    #[test]
    fn snapshot_csr_mirrors_the_frozen_graph_and_is_shared_by_clones() {
        let mut s = GraphStream::new("g");
        s.apply(&Mutation::insert(1, 0, 1)).unwrap();
        s.apply(&Mutation::insert(2, 1, 2)).unwrap();
        s.apply(&Mutation::insert(3, 3, 4)).unwrap();
        let snap = s.snapshot();
        assert!(snap.csr().matches_graph(snap.graph()));
        assert_eq!(snap.csr().num_components(), snap.num_components());
        // Publishing (cloning) a snapshot shares the arena, it never rebuilds.
        let published = snap.clone();
        assert!(Arc::ptr_eq(snap.csr(), published.csr()));
        assert!(Arc::ptr_eq(snap.graph(), published.graph()));
    }

    #[test]
    fn cross_check_mode_agrees_on_a_mixed_workload() {
        let mut s = GraphStream::new("g").with_cross_check(true);
        let script = [
            Mutation::insert(1, 0, 1),
            Mutation::insert(2, 1, 2),
            Mutation::insert(3, 3, 4),
            Mutation::delete(4, 1, 2),
            Mutation::insert(5, 2, 3),
            Mutation::delete(6, 0, 1),
            Mutation::insert(7, 0, 4),
        ];
        let changed = s.apply_batch(&script).unwrap();
        assert_eq!(changed, script.len(), "every scripted mutation is real");
        // End state: {0, 2, 3, 4} connected via 2-3 and 0-4, {1} isolated.
        assert_eq!(s.num_components(), 2);
    }

    #[test]
    fn batch_failures_report_and_keep_the_prefix() {
        let mut s = GraphStream::new("g");
        let script = [
            Mutation::insert(1, 0, 1),
            Mutation::insert(0, 1, 2), // regression
            Mutation::insert(3, 2, 3),
        ];
        let err = s.apply_batch(&script).unwrap_err();
        assert!(matches!(err, StreamError::TimestampRegression { .. }));
        // The prefix before the offender was applied.
        assert_eq!(s.graph().num_edges(), 1);
        assert_eq!(s.stats().mutations_applied, 1);
    }
}
