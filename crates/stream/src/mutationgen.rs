//! Deterministic mutation-load generation for evolving-fleet harnesses.
//!
//! A [`MutationSpec`] fully describes a streaming workload — fleet size,
//! per-graph vertex universe, initial density, mutation count, delete mix —
//! and materializes, per graph, a reproducible initial [`Graph`] plus a
//! timestamped [`Mutation`] script. Everything derives from the spec seed,
//! so a spec is a benchmark: the same spec always produces the same fleet
//! evolving through the same states, which is what lets CI assert exact
//! cache/registry/count invariants on top of it.
//!
//! Deletion mutations are drawn against a mirror of the evolving edge set,
//! so a scripted delete always removes a *present* edge (the interesting
//! case — it ends an insert-only epoch and may split a component); no-op
//! mutations arise only from scripted duplicate insertions.

use crate::stream::{GraphStream, Mutation};
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic description of one evolving-fleet workload.
#[derive(Clone, Debug)]
pub struct MutationSpec {
    /// Number of streams in the fleet (graph ids `stream/g0`, `stream/g1`, …).
    pub graphs: usize,
    /// Vertex universe per graph (mutations draw endpoints from `0..vertices`).
    pub vertices: usize,
    /// Expected average degree of the initial Erdős–Rényi graphs.
    pub initial_avg_degree: f64,
    /// Scripted mutations per graph.
    pub mutations_per_graph: usize,
    /// Fraction of mutations that delete a present edge (when one exists).
    pub delete_fraction: f64,
    /// Seed of the whole workload.
    pub seed: u64,
}

impl MutationSpec {
    /// The fixed CI smoke spec: an 8-graph fleet on 48-vertex universes,
    /// 240 mutations each with a 30% delete mix.
    pub fn ci_smoke() -> Self {
        MutationSpec {
            graphs: 8,
            vertices: 48,
            initial_avg_degree: 1.5,
            mutations_per_graph: 240,
            delete_fraction: 0.3,
            seed: 2026,
        }
    }

    /// The catalog id of fleet member `index`.
    pub fn graph_id(&self, index: usize) -> String {
        format!("stream/g{index}")
    }

    /// The deterministic initial graph of fleet member `index`.
    pub fn initial_graph(&self, index: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.member_seed(index, 0x1));
        let n = self.vertices.max(2);
        let p = (self.initial_avg_degree / n as f64).clamp(0.0, 1.0);
        generators::erdos_renyi(n, p, &mut rng)
    }

    /// The deterministic mutation script of fleet member `index`
    /// (timestamps `1..=mutations_per_graph`).
    pub fn mutations(&self, index: usize) -> Vec<Mutation> {
        let mut rng = StdRng::seed_from_u64(self.member_seed(index, 0x2));
        let n = self.vertices.max(2);
        // Mirror of the evolving edge set, so deletes target present edges.
        let mut mirror = self.initial_graph(index);
        let mut script = Vec::with_capacity(self.mutations_per_graph);
        for t in 1..=self.mutations_per_graph as u64 {
            let delete =
                mirror.num_edges() > 0 && rng.gen_bool(self.delete_fraction.clamp(0.0, 1.0));
            if delete {
                let edges = mirror.edge_vec();
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                mirror.remove_edge(u, v);
                script.push(Mutation::delete(t, u, v));
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n - 1);
                if v >= u {
                    v += 1;
                }
                mirror.add_edge(u, v);
                script.push(Mutation::insert(t, u, v));
            }
        }
        script
    }

    /// Builds the ready-to-run stream of fleet member `index` (initial graph
    /// loaded, no mutations applied yet).
    pub fn stream(&self, index: usize) -> GraphStream {
        GraphStream::from_graph(self.graph_id(index), self.initial_graph(index))
    }

    /// Total scripted mutations across the fleet.
    pub fn total_mutations(&self) -> usize {
        self.graphs * self.mutations_per_graph
    }

    fn member_seed(&self, index: usize, salt: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::EdgeOp;
    use ccdp_graph::components;

    #[test]
    fn specs_are_deterministic_per_member() {
        let spec = MutationSpec::ci_smoke();
        assert_eq!(spec.initial_graph(3), spec.initial_graph(3));
        assert_eq!(spec.mutations(3), spec.mutations(3));
        // Members differ from each other.
        assert_ne!(spec.mutations(0), spec.mutations(1));
        assert_eq!(spec.graph_id(5), "stream/g5");
        assert_eq!(spec.total_mutations(), 8 * 240);
    }

    #[test]
    fn scripts_mix_real_deletes_with_inserts() {
        let spec = MutationSpec::ci_smoke();
        let script = spec.mutations(0);
        assert_eq!(script.len(), 240);
        let deletes = script.iter().filter(|m| m.op == EdgeOp::Delete).count();
        // ~30% of 240, with generous slack for the RNG.
        assert!(
            (40..=110).contains(&deletes),
            "delete mix {deletes}/240 is far off the 30% target"
        );
        // Timestamps are strictly increasing, so any replay order is valid.
        assert!(script.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn scripted_deletes_always_remove_present_edges() {
        let spec = MutationSpec::ci_smoke();
        for index in 0..spec.graphs {
            let mut stream = spec.stream(index);
            for m in spec.mutations(index) {
                let had_edge = stream.graph().has_edge(m.u, m.v);
                let changed = stream.apply(&m).unwrap();
                if m.op == EdgeOp::Delete {
                    assert!(had_edge && changed, "scripted delete must be real");
                }
            }
            // End-state sanity: the incremental count matches from scratch.
            let expected = components::num_connected_components(stream.graph());
            assert_eq!(stream.num_components(), expected);
        }
    }
}
