//! Policy-driven continual re-estimation of evolving graphs.
//!
//! A stream mutating forever is only useful to tenants if someone decides
//! *when* a fresh differentially private release is worth its ε. The
//! [`ReleaseScheduler`] is that decision point: it watches streams through
//! [`observe`](ReleaseScheduler::observe), fires by [`ReleasePolicy`] (every
//! k mutations, on component-count drift, or on demand), and when it fires it
//! runs the full serving pipeline on an immutable snapshot:
//!
//! 1. atomically charge the release ε to the owning tenant's
//!    [`BudgetLedger`] account (an exhausted quota is a typed refusal that
//!    changes *nothing* — no version burned, no snapshot published, no
//!    cache touched; the stream keeps mutating, the tenant just stops
//!    getting releases),
//! 2. freeze the stream into a versioned
//!    [`GraphSnapshot`](crate::stream::GraphSnapshot) and publish it to
//!    the shared version-aware [`GraphRegistry`] (a typed
//!    [`VersionExists`](ccdp_serve::ServeError::VersionExists) refusal if the
//!    version was somehow already taken — snapshots are never overwritten),
//! 3. bulk-invalidate the superseded versions' extension families from the
//!    shared [`ExtensionCache`] and expire stale registry snapshots beyond
//!    the configured retention,
//! 4. estimate on the *registry-resolved* snapshot — the graph served is
//!    provably the one named by `(id, version)` — with cache lookups tagged
//!    by that same pair, so no family computed for another version can ever
//!    be replayed,
//! 5. append a [`ReleaseRecord`] to the versioned release log.
//!
//! # Budget semantics
//!
//! Every fired release spends [`SchedulerConfig::epsilon_per_release`] from
//! the tenant's quota *before* the snapshot is even frozen, under the
//! ledger's atomic check-and-spend; the ledger stage name is `id@version`,
//! so a tenant's account reads as a versioned audit trail. Spent ε is never
//! refunded if estimation later fails — accounting only ever over-counts a
//! tenant's exposure. Releases about *different snapshots of one graph*
//! still compose sequentially against the same quota: node-DP composition
//! is per tenant, not per version.

use crate::error::StreamError;
use crate::stream::GraphStream;
use ccdp_core::{Estimator, EstimatorConfig, ExtensionCache, PrivateCcEstimator, SolverBackend};
use ccdp_graph::GraphVersion;
use ccdp_serve::{BudgetLedger, GraphId, GraphRegistry, ServeError, TenantId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

/// When the scheduler fires a fresh release for a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// After every `k` accepted mutations since the last release (`k ≥ 1`;
    /// the first observation of a stream always fires a baseline release).
    EveryKMutations(u64),
    /// When the exact component count has drifted at least `threshold` away
    /// from the count at the last release (the first observation fires).
    /// The trigger reads only the stream's internal true count — the
    /// *decision to release* is data-dependent, which is why the released
    /// value itself still carries the full ε noise.
    OnComponentDrift {
        /// Minimum absolute drift that fires.
        threshold: usize,
    },
    /// Only [`ReleaseScheduler::release_now`] fires.
    OnDemand,
}

/// Configuration of a [`ReleaseScheduler`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// The firing policy.
    pub policy: ReleasePolicy,
    /// ε charged to the owning tenant per fired release.
    pub epsilon_per_release: f64,
    /// Forest-polytope solver backend for the estimates.
    pub solver: SolverBackend,
    /// Base seed of the per-release RNG derivation.
    pub seed: u64,
    /// Δmax override forwarded to the estimator, if any.
    pub delta_max: Option<usize>,
    /// How many registry snapshots the *scheduler* actively retains per
    /// graph (0 = no scheduler-driven expiry). Older versions are expired
    /// right after a new one is published. Note the registry enforces its
    /// own bound on every publish
    /// ([`DEFAULT_VERSION_RETENTION`](ccdp_serve::registry::DEFAULT_VERSION_RETENTION)
    /// unless built with [`GraphRegistry::with_retention`]) — the *tighter*
    /// of the two wins, so retaining more than the registry's bound requires
    /// a registry configured to match.
    pub retain_versions: usize,
}

impl SchedulerConfig {
    /// A config with the given policy, ε = 0.5 per release, default solver,
    /// seed 0 and a 4-version registry retention.
    pub fn new(policy: ReleasePolicy) -> Self {
        SchedulerConfig {
            policy,
            epsilon_per_release: 0.5,
            solver: SolverBackend::default(),
            seed: 0,
            delta_max: None,
            retain_versions: 4,
        }
    }

    /// Sets the ε charged per release.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon_per_release = epsilon;
        self
    }

    /// Sets the solver backend.
    pub fn with_solver(mut self, solver: SolverBackend) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the RNG base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Δmax estimator override.
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        self.delta_max = Some(delta_max);
        self
    }

    /// Sets the per-graph registry retention (0 = keep all versions).
    pub fn with_retain_versions(mut self, retain: usize) -> Self {
        self.retain_versions = retain;
        self
    }
}

/// Why a release fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseTrigger {
    /// First observation of the stream (baseline).
    Baseline,
    /// The mutation budget of [`ReleasePolicy::EveryKMutations`] elapsed.
    Mutations,
    /// The drift threshold of [`ReleasePolicy::OnComponentDrift`] tripped.
    Drift,
    /// [`ReleaseScheduler::release_now`] was called.
    Demand,
}

/// One entry of the versioned release log.
#[derive(Clone, Debug)]
pub struct ReleaseRecord {
    /// The graph released.
    pub graph: GraphId,
    /// The exact snapshot version the release was served from.
    pub version: GraphVersion,
    /// The tenant whose quota funded it.
    pub tenant: TenantId,
    /// ε spent.
    pub epsilon: f64,
    /// The differentially private estimate of the component count.
    pub value: f64,
    /// The exact count at the snapshot (diagnostic; never tenant-visible).
    pub true_components: usize,
    /// Stream clock at the snapshot.
    pub time: u64,
    /// Mutations the stream had accepted at the snapshot.
    pub mutations_applied: u64,
    /// What fired the release.
    pub trigger: ReleaseTrigger,
}

/// Per-stream trigger bookkeeping.
#[derive(Clone, Copy, Debug)]
struct TriggerState {
    mutations_at_last: u64,
    components_at_last: usize,
}

/// The continual-release engine over shared serving infrastructure.
pub struct ReleaseScheduler {
    config: SchedulerConfig,
    registry: Arc<GraphRegistry>,
    ledger: Arc<BudgetLedger>,
    cache: Arc<ExtensionCache>,
    state: Mutex<HashMap<GraphId, TriggerState>>,
    log: Mutex<Vec<ReleaseRecord>>,
}

impl ReleaseScheduler {
    /// A scheduler over the shared registry, ledger and family cache.
    pub fn new(
        config: SchedulerConfig,
        registry: Arc<GraphRegistry>,
        ledger: Arc<BudgetLedger>,
        cache: Arc<ExtensionCache>,
    ) -> Self {
        ReleaseScheduler {
            config,
            registry,
            ledger,
            cache,
            state: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The configuration the scheduler fires with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The shared registry snapshots are published into.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.registry
    }

    /// Checks the policy against `stream` and, if it fires, runs the full
    /// release pipeline charged to `tenant`. `Ok(None)` means the policy did
    /// not fire — the common case on the mutation hot path.
    pub fn observe(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
    ) -> Result<Option<ReleaseRecord>, StreamError> {
        // Copy the prior trigger state out before evaluating the policy:
        // `num_components` can pay a post-deletion union-find rebuild, which
        // must not run under the mutex shared by every stream's observe().
        let prior = self.lock_state().get(stream.id()).copied();
        let trigger = match (self.config.policy, prior) {
            // On-demand streams only release through `release_now`.
            (ReleasePolicy::OnDemand, _) => None,
            // The automatic policies fire a baseline on first sight.
            (_, None) => Some(ReleaseTrigger::Baseline),
            (ReleasePolicy::EveryKMutations(k), Some(s)) => {
                // Saturating: a stream rebuilt under a previously seen id can
                // report fewer mutations than the recorded state — that must
                // read as "nothing elapsed", not an underflow.
                let elapsed = stream
                    .stats()
                    .mutations_applied
                    .saturating_sub(s.mutations_at_last);
                (elapsed >= k.max(1)).then_some(ReleaseTrigger::Mutations)
            }
            (ReleasePolicy::OnComponentDrift { threshold }, Some(s)) => {
                let drift = stream.num_components().abs_diff(s.components_at_last);
                (drift >= threshold.max(1)).then_some(ReleaseTrigger::Drift)
            }
        };
        match trigger {
            Some(trigger) => self.release(stream, tenant, trigger).map(Some),
            None => Ok(None),
        }
    }

    /// Fires a release unconditionally (the [`ReleasePolicy::OnDemand`]
    /// path; also resets the policy counters of the other modes).
    pub fn release_now(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
    ) -> Result<ReleaseRecord, StreamError> {
        self.release(stream, tenant, ReleaseTrigger::Demand)
    }

    /// The versioned release log so far (clone; the log keeps growing).
    pub fn log(&self) -> Vec<ReleaseRecord> {
        self.lock_log().clone()
    }

    /// Number of releases fired so far.
    pub fn releases(&self) -> usize {
        self.lock_log().len()
    }

    /// The full pipeline: charge → snapshot → publish → invalidate/expire →
    /// estimate → record. The charge comes first so a refused release
    /// changes nothing (see the module docs and the
    /// `refused_releases_leave_all_shared_state_untouched` regression test).
    fn release(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
        trigger: ReleaseTrigger,
    ) -> Result<ReleaseRecord, StreamError> {
        // Charge the tenant *first*: a refused release must cost nothing and
        // change nothing — no version burned, no snapshot published, no
        // cache invalidated, no solver time. The version the snapshot will
        // carry is known before freezing, so the ledger stage `id@version`
        // still makes the account a versioned audit trail.
        let id = stream.id().clone();
        let version = stream.next_version();
        let stage = format!("{id}@{version}");
        self.ledger
            .try_spend(tenant, &stage, self.config.epsilon_per_release)?;

        let snapshot = stream.snapshot();
        debug_assert_eq!(snapshot.version(), version);

        // Publish the immutable snapshot (shared, not copied); a version
        // collision is a typed refusal (two streams claiming one catalog id,
        // or a replayed feed).
        self.registry
            .insert_version(id.clone(), version, Arc::clone(snapshot.graph()))?;
        // Superseded versions can never be served again: drop their cached
        // families in bulk and expire their registry snapshots beyond the
        // retention window.
        self.cache.invalidate_versions_below(id.as_str(), version);
        if self.config.retain_versions > 0 {
            self.registry
                .retain_latest(&id, self.config.retain_versions);
        }

        // Record the trigger state *before* estimating: the charge already
        // happened, so a failing estimator must not leave the policy primed
        // to re-fire on the very next observe() and drain the tenant's quota
        // on a pathological graph — the damage is bounded to one charge per
        // policy period.
        self.lock_state().insert(
            id.clone(),
            TriggerState {
                mutations_at_last: snapshot.mutations_applied(),
                components_at_last: snapshot.num_components(),
            },
        );

        // Estimate on the registry-resolved snapshot (not the local copy):
        // what we release is provably what `(id, version)` names.
        let graph = self.registry.resolve_version(&id, version)?;
        let mut est_config = EstimatorConfig::new(self.config.epsilon_per_release)
            .with_solver(self.config.solver)
            .with_shared_family_cache(Arc::clone(&self.cache))
            .with_graph_tag(id.as_str(), version);
        if let Some(delta_max) = self.config.delta_max {
            est_config = est_config.with_delta_max(delta_max);
        }
        let estimator = PrivateCcEstimator::from_config(est_config)
            .map_err(|e| StreamError::Serve(ServeError::Estimator(e.into())))?;
        let mut rng = StdRng::seed_from_u64(self.release_seed(&id, version));
        let release = Estimator::estimate(&estimator, &graph, &mut rng)
            .map_err(|e| StreamError::Serve(ServeError::Estimator(e)))?;

        let record = ReleaseRecord {
            graph: id,
            version,
            tenant: tenant.clone(),
            epsilon: self.config.epsilon_per_release,
            value: release.value(),
            true_components: snapshot.num_components(),
            time: snapshot.time(),
            mutations_applied: snapshot.mutations_applied(),
            trigger,
        };
        self.lock_log().push(record.clone());
        Ok(record)
    }

    /// Deterministic per-release noise stream: the same (seed, graph,
    /// version) triple draws the same noise on any run.
    fn release_seed(&self, id: &GraphId, version: GraphVersion) -> u64 {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h.finish())
            .wrapping_add(version.value())
    }

    fn lock_state(&self) -> MutexGuard<'_, HashMap<GraphId, TriggerState>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_log(&self) -> MutexGuard<'_, Vec<ReleaseRecord>> {
        self.log.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl std::fmt::Debug for ReleaseScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseScheduler")
            .field("config", &self.config)
            .field("releases", &self.releases())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Mutation;

    fn infra() -> (Arc<GraphRegistry>, Arc<BudgetLedger>, Arc<ExtensionCache>) {
        let registry = Arc::new(GraphRegistry::new());
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 100.0).unwrap();
        let cache = Arc::new(ExtensionCache::new(64));
        (registry, ledger, cache)
    }

    fn grow_stream(id: &str, edges: usize) -> GraphStream {
        let mut s = GraphStream::new(id);
        for i in 0..edges {
            s.apply(&Mutation::insert(i as u64 + 1, i, i + 1)).unwrap();
        }
        s
    }

    #[test]
    fn every_k_mutations_fires_baseline_then_periodically() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::EveryKMutations(4)).with_epsilon(0.5),
            Arc::clone(&registry),
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 2);
        // First observation: baseline release at v0.
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Baseline);
        assert_eq!(r.version, GraphVersion::INITIAL);
        // Two more mutations: not yet.
        s.apply(&Mutation::insert(10, 3, 4)).unwrap();
        s.apply(&Mutation::insert(11, 4, 5)).unwrap();
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        // Two more reach k = 4.
        s.apply(&Mutation::insert(12, 5, 6)).unwrap();
        s.apply(&Mutation::insert(13, 6, 7)).unwrap();
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Mutations);
        assert_eq!(r.version, GraphVersion::new(1));
        assert_eq!(sched.releases(), 2);
        // The log is versioned and ordered.
        let log = sched.log();
        assert_eq!(log[0].version, GraphVersion::INITIAL);
        assert_eq!(log[1].version, GraphVersion::new(1));
        // Both snapshots live in the registry.
        assert_eq!(registry.num_versions(), 2);
    }

    #[test]
    fn drift_policy_fires_on_component_change() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnComponentDrift { threshold: 2 }),
            registry,
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 3); // path on 4 vertices, 1 component
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Baseline);
        assert_eq!(r.true_components, 1);
        // One extra component {4, 5} appears: drift 1 < 2.
        s.apply(&Mutation::insert(10, 4, 5)).unwrap();
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        // Break the path twice: {0}, {1,2}, {3}, {4,5} — drift ≥ 2 fires.
        s.apply(&Mutation::delete(11, 0, 1)).unwrap();
        s.apply(&Mutation::delete(12, 2, 3)).unwrap();
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Drift);
        assert_eq!(r.true_components, 4);
    }

    #[test]
    fn on_demand_only_fires_when_asked() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand),
            registry,
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 5);
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        let r = sched.release_now(&mut s, &tenant).unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Demand);
        assert_eq!(sched.releases(), 1);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_refusal_and_spends_nothing_more() {
        let (registry, ledger, cache) = infra();
        ledger.register("poor", 0.6).unwrap();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand).with_epsilon(0.5),
            registry,
            ledger.clone(),
            cache,
        );
        let tenant = TenantId::new("poor");
        let mut s = grow_stream("g", 4);
        sched.release_now(&mut s, &tenant).unwrap();
        let err = sched.release_now(&mut s, &tenant).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Serve(ServeError::BudgetExhausted { .. })
        ));
        // The refusal charged nothing and logged nothing.
        assert_eq!(sched.releases(), 1);
        let view = ledger.account_view(&tenant).unwrap();
        assert!((view.spent_epsilon - 0.5).abs() < 1e-12);
        // The ledger audit trail names the snapshot.
        assert_eq!(view.grants, 1);
    }

    #[test]
    fn refused_releases_leave_all_shared_state_untouched() {
        // Regression: the budget check must come before any side effect. A
        // refused release may not burn a stream version, publish an unfunded
        // snapshot, invalidate cached families or expire registry history.
        let (registry, ledger, cache) = infra();
        ledger.register("poor", 0.5).unwrap();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.5)
                .with_retain_versions(2),
            Arc::clone(&registry),
            ledger,
            Arc::clone(&cache),
        );
        let tenant = TenantId::new("poor");
        let mut s = grow_stream("g", 4);
        sched.release_now(&mut s, &tenant).unwrap();
        let id = GraphId::new("g");
        let versions_before = registry.versions(&id);
        let cache_before = cache.stats();
        let next_before = s.next_version();
        for _ in 0..3 {
            let err = sched.release_now(&mut s, &tenant).unwrap_err();
            assert!(matches!(
                err,
                StreamError::Serve(ServeError::BudgetExhausted { .. })
            ));
        }
        assert_eq!(s.next_version(), next_before, "no version may be burned");
        assert_eq!(registry.versions(&id), versions_before);
        assert_eq!(cache.stats(), cache_before);
        assert_eq!(s.stats().snapshots, 1, "refusals never snapshot");
    }

    #[test]
    fn superseded_versions_are_invalidated_and_expired() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.25)
                .with_retain_versions(2),
            Arc::clone(&registry),
            ledger,
            Arc::clone(&cache),
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 3);
        for i in 0..5 {
            sched.release_now(&mut s, &tenant).unwrap();
            s.apply(&Mutation::insert(100 + i, 10 + i as usize, 11 + i as usize))
                .unwrap();
        }
        // Registry retains only the 2 newest versions.
        let id = GraphId::new("g");
        assert_eq!(registry.versions(&id).len(), 2);
        assert_eq!(registry.latest_version(&id), Some(GraphVersion::new(4)));
        // Every release evaluated its own version's family: 5 misses, no
        // cross-version replay, and superseded entries were invalidated.
        let stats = cache.stats();
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 0);
        assert!(stats.invalidations >= 4, "{stats:?}");
    }

    #[test]
    fn identical_seeds_replay_identical_release_values() {
        let run = || {
            let (registry, ledger, cache) = infra();
            let sched = ReleaseScheduler::new(
                SchedulerConfig::new(ReleasePolicy::EveryKMutations(3)).with_seed(42),
                registry,
                ledger,
                cache,
            );
            let tenant = TenantId::new("acme");
            let mut s = grow_stream("g", 2);
            let mut values = Vec::new();
            for i in 0..9u64 {
                s.apply(&Mutation::insert(50 + i, 20 + i as usize, 21 + i as usize))
                    .unwrap();
                if let Some(r) = sched.observe(&mut s, &tenant).unwrap() {
                    values.push((r.version, r.value.to_bits()));
                }
            }
            values
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "seeded schedulers must replay exactly");
    }
}
