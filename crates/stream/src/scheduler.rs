//! Policy-driven continual re-estimation of evolving graphs.
//!
//! A stream mutating forever is only useful to tenants if someone decides
//! *when* a fresh differentially private release is worth its ε. The
//! [`ReleaseScheduler`] is that decision point: it watches streams through
//! [`observe`](ReleaseScheduler::observe), fires by [`ReleasePolicy`] (every
//! k mutations, on component-count drift, or on demand), and when it fires it
//! runs the full serving pipeline on an immutable snapshot:
//!
//! 1. atomically charge the release ε to the owning tenant's
//!    [`BudgetLedger`] account (an exhausted quota is a typed refusal that
//!    changes *nothing* — no version burned, no snapshot published, no
//!    cache touched; the stream keeps mutating, the tenant just stops
//!    getting releases),
//! 2. freeze the stream into a versioned
//!    [`GraphSnapshot`](crate::stream::GraphSnapshot) and publish it to
//!    the shared version-aware [`GraphRegistry`] (a typed
//!    [`VersionExists`](ccdp_serve::ServeError::VersionExists) refusal if the
//!    version was somehow already taken — snapshots are never overwritten),
//! 3. bulk-invalidate the superseded versions' extension families from the
//!    shared [`ExtensionCache`] and expire stale registry snapshots beyond
//!    the configured retention,
//! 4. estimate on the *registry-resolved* snapshot — the graph served is
//!    provably the one named by `(id, version)` — with cache lookups tagged
//!    by that same pair, so no family computed for another version can ever
//!    be replayed,
//! 5. append a [`ReleaseRecord`] to the versioned release log.
//!
//! # Budget semantics
//!
//! Every fired release spends [`SchedulerConfig::epsilon_per_release`] from
//! the tenant's quota *before* the snapshot is even frozen, under the
//! ledger's atomic check-and-spend; the ledger stage name is `id@version`,
//! so a tenant's account reads as a versioned audit trail. Spent ε is never
//! refunded if estimation later fails — accounting only ever over-counts a
//! tenant's exposure. Releases about *different snapshots of one graph*
//! still compose sequentially against the same quota: node-DP composition
//! is per tenant, not per version.

use crate::error::StreamError;
use crate::stream::{GraphSnapshot, GraphStream};
use ccdp_core::{Estimator, EstimatorConfig, ExtensionCache, PrivateCcEstimator, SolverBackend};
use ccdp_graph::GraphVersion;
use ccdp_obs::{AuditEvent, AuditJournal, AuditKind, Counter, MetricsRegistry};
use ccdp_serve::{
    BudgetLedger, GraphId, GraphRegistry, ServeError, ServeRequest, Server, TenantId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// When the scheduler fires a fresh release for a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// After every `k` accepted mutations since the last release (`k ≥ 1`;
    /// the first observation of a stream always fires a baseline release).
    EveryKMutations(u64),
    /// When the exact component count has drifted at least `threshold` away
    /// from the count at the last release (the first observation fires).
    /// The trigger reads only the stream's internal true count — the
    /// *decision to release* is data-dependent, which is why the released
    /// value itself still carries the full ε noise.
    OnComponentDrift {
        /// Minimum absolute drift that fires.
        threshold: usize,
    },
    /// Only [`ReleaseScheduler::release_now`] fires.
    OnDemand,
}

/// Configuration of a [`ReleaseScheduler`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// The firing policy.
    pub policy: ReleasePolicy,
    /// ε charged to the owning tenant per fired release.
    pub epsilon_per_release: f64,
    /// Forest-polytope solver backend for the estimates.
    pub solver: SolverBackend,
    /// Base seed of the per-release RNG derivation.
    pub seed: u64,
    /// Δmax override forwarded to the estimator, if any.
    pub delta_max: Option<usize>,
    /// How many registry snapshots the *scheduler* actively retains per
    /// graph (0 = no scheduler-driven expiry). Older versions are expired
    /// right after a new one is published. Note the registry enforces its
    /// own bound on every publish
    /// ([`DEFAULT_VERSION_RETENTION`](ccdp_serve::registry::DEFAULT_VERSION_RETENTION)
    /// unless built with [`GraphRegistry::with_retention`]) — the *tighter*
    /// of the two wins, so retaining more than the registry's bound requires
    /// a registry configured to match.
    pub retain_versions: usize,
}

impl SchedulerConfig {
    /// A config with the given policy, ε = 0.5 per release, default solver,
    /// seed 0 and a 4-version registry retention.
    pub fn new(policy: ReleasePolicy) -> Self {
        SchedulerConfig {
            policy,
            epsilon_per_release: 0.5,
            solver: SolverBackend::default(),
            seed: 0,
            delta_max: None,
            retain_versions: 4,
        }
    }

    /// Sets the ε charged per release.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon_per_release = epsilon;
        self
    }

    /// Sets the solver backend.
    pub fn with_solver(mut self, solver: SolverBackend) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the RNG base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Δmax estimator override.
    pub fn with_delta_max(mut self, delta_max: usize) -> Self {
        self.delta_max = Some(delta_max);
        self
    }

    /// Sets the per-graph registry retention (0 = keep all versions).
    pub fn with_retain_versions(mut self, retain: usize) -> Self {
        self.retain_versions = retain;
        self
    }
}

/// Why a release fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseTrigger {
    /// First observation of the stream (baseline).
    Baseline,
    /// The mutation budget of [`ReleasePolicy::EveryKMutations`] elapsed.
    Mutations,
    /// The drift threshold of [`ReleasePolicy::OnComponentDrift`] tripped.
    Drift,
    /// [`ReleaseScheduler::release_now`] was called.
    Demand,
}

impl ReleaseTrigger {
    /// Stable snake_case name (audit-event detail field).
    pub fn name(self) -> &'static str {
        match self {
            ReleaseTrigger::Baseline => "baseline",
            ReleaseTrigger::Mutations => "mutations",
            ReleaseTrigger::Drift => "drift",
            ReleaseTrigger::Demand => "demand",
        }
    }
}

/// One entry of the versioned release log.
#[derive(Clone, Debug)]
pub struct ReleaseRecord {
    /// The graph released.
    pub graph: GraphId,
    /// The exact snapshot version the release was served from.
    pub version: GraphVersion,
    /// The tenant whose quota funded it.
    pub tenant: TenantId,
    /// ε spent.
    pub epsilon: f64,
    /// The differentially private estimate of the component count.
    pub value: f64,
    /// The exact count at the snapshot (diagnostic; never tenant-visible).
    pub true_components: usize,
    /// Stream clock at the snapshot.
    pub time: u64,
    /// Mutations the stream had accepted at the snapshot.
    pub mutations_applied: u64,
    /// What fired the release.
    pub trigger: ReleaseTrigger,
}

/// Per-stream trigger bookkeeping.
#[derive(Clone, Copy, Debug)]
struct TriggerState {
    mutations_at_last: u64,
    components_at_last: usize,
}

/// The continual-release engine over shared serving infrastructure.
pub struct ReleaseScheduler {
    config: SchedulerConfig,
    registry: Arc<GraphRegistry>,
    ledger: Arc<BudgetLedger>,
    cache: Arc<ExtensionCache>,
    /// When set, fired releases run through this worker pool instead of
    /// estimating inline (see [`ReleaseScheduler::with_server`]).
    server: Option<Arc<Server>>,
    state: Mutex<HashMap<GraphId, TriggerState>>,
    log: Mutex<Vec<ReleaseRecord>>,
    /// Successful releases, as `ccdp_stream_releases_total` once published
    /// into a [`MetricsRegistry`] (automatic under
    /// [`ReleaseScheduler::with_server`]).
    releases_total: Counter,
    /// Audit journal for `scheduler_fire` / `cache_invalidation` events
    /// (taken from the server under [`ReleaseScheduler::with_server`],
    /// attachable via [`ReleaseScheduler::set_journal`] otherwise).
    journal: RwLock<Option<Arc<AuditJournal>>>,
}

impl ReleaseScheduler {
    /// A scheduler over the shared registry, ledger and family cache,
    /// estimating inline on the calling thread.
    pub fn new(
        config: SchedulerConfig,
        registry: Arc<GraphRegistry>,
        ledger: Arc<BudgetLedger>,
        cache: Arc<ExtensionCache>,
    ) -> Self {
        ReleaseScheduler {
            config,
            registry,
            ledger,
            cache,
            server: None,
            state: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            releases_total: Counter::detached(),
            journal: RwLock::new(None),
        }
    }

    /// A scheduler whose fired releases run through `server`'s worker pool:
    /// the published snapshot is estimated by the same workers, admitted by
    /// the same bounded queue and charged by the same ledger admission path
    /// as every wire request, and its extension family lands in the pool's
    /// shared cache. Registry, ledger and cache are taken from the server,
    /// so they are shared by construction.
    ///
    /// Differences from the inline path, both typed and bounded:
    ///
    /// * Queue backpressure surfaces as
    ///   [`ServeError::QueueFull`] — the release is refused, the
    ///   just-published snapshot is unpublished, and *no budget is charged*
    ///   (the charge lives inside the worker, past admission). The stream's
    ///   version number is burned; versions never recycle.
    /// * The ledger stage name is the graph id (the worker pool's hot-path
    ///   naming), not the inline path's `id@version`.
    pub fn with_server(config: SchedulerConfig, server: Arc<Server>) -> Self {
        let mut scheduler = ReleaseScheduler {
            config,
            registry: Arc::clone(server.registry()),
            ledger: Arc::clone(server.ledger()),
            cache: Arc::clone(server.cache()),
            releases_total: Counter::detached(),
            journal: RwLock::new(Some(Arc::clone(server.journal()))),
            server: Some(server),
            state: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        };
        let metrics = Arc::clone(scheduler.server.as_ref().expect("just set").metrics());
        scheduler.publish_metrics(&metrics);
        scheduler
    }

    /// Attaches the audit journal scheduler decisions are recorded into.
    /// [`ReleaseScheduler::with_server`] attaches the server's journal
    /// automatically; the inline constructor leaves it to the caller.
    pub fn set_journal(&self, journal: Arc<AuditJournal>) {
        *self.journal.write().unwrap_or_else(|p| p.into_inner()) = Some(journal);
    }

    /// Records one event into the attached journal, if any.
    fn audit(&self, event: AuditEvent) {
        let guard = self.journal.read().unwrap_or_else(|p| p.into_inner());
        if let Some(journal) = guard.as_ref() {
            journal.record(event);
        }
    }

    /// Registers the scheduler's counters into `registry` (as
    /// `ccdp_stream_releases_total`), carrying over any releases already
    /// recorded. [`ReleaseScheduler::with_server`] does this automatically
    /// against the server's registry; the inline constructor leaves it to
    /// the caller, who owns the registry there.
    pub fn publish_metrics(&mut self, registry: &MetricsRegistry) {
        self.releases_total =
            registry.adopt_counter("ccdp_stream_releases_total", &self.releases_total);
    }

    /// The configuration the scheduler fires with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The shared registry snapshots are published into.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.registry
    }

    /// Checks the policy against `stream` and, if it fires, runs the full
    /// release pipeline charged to `tenant`. `Ok(None)` means the policy did
    /// not fire — the common case on the mutation hot path.
    pub fn observe(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
    ) -> Result<Option<ReleaseRecord>, StreamError> {
        // Copy the prior trigger state out before evaluating the policy:
        // `num_components` can pay a post-deletion union-find rebuild, which
        // must not run under the mutex shared by every stream's observe().
        let prior = self.lock_state().get(stream.id()).copied();
        let trigger = match (self.config.policy, prior) {
            // On-demand streams only release through `release_now`.
            (ReleasePolicy::OnDemand, _) => None,
            // The automatic policies fire a baseline on first sight.
            (_, None) => Some(ReleaseTrigger::Baseline),
            (ReleasePolicy::EveryKMutations(k), Some(s)) => {
                // Saturating: a stream rebuilt under a previously seen id can
                // report fewer mutations than the recorded state — that must
                // read as "nothing elapsed", not an underflow.
                let elapsed = stream
                    .stats()
                    .mutations_applied
                    .saturating_sub(s.mutations_at_last);
                (elapsed >= k.max(1)).then_some(ReleaseTrigger::Mutations)
            }
            (ReleasePolicy::OnComponentDrift { threshold }, Some(s)) => {
                let drift = stream.num_components().abs_diff(s.components_at_last);
                (drift >= threshold.max(1)).then_some(ReleaseTrigger::Drift)
            }
        };
        match trigger {
            Some(trigger) => self.release(stream, tenant, trigger).map(Some),
            None => Ok(None),
        }
    }

    /// Fires a release unconditionally (the [`ReleasePolicy::OnDemand`]
    /// path; also resets the policy counters of the other modes).
    pub fn release_now(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
    ) -> Result<ReleaseRecord, StreamError> {
        self.release(stream, tenant, ReleaseTrigger::Demand)
    }

    /// The versioned release log so far (clone; the log keeps growing).
    pub fn log(&self) -> Vec<ReleaseRecord> {
        self.lock_log().clone()
    }

    /// Number of releases fired so far.
    pub fn releases(&self) -> usize {
        self.lock_log().len()
    }

    /// The full pipeline: charge → snapshot → publish → invalidate/expire →
    /// estimate → record. The charge comes first so a refused release
    /// changes nothing (see the module docs and the
    /// `refused_releases_leave_all_shared_state_untouched` regression test).
    fn release(
        &self,
        stream: &mut GraphStream,
        tenant: &TenantId,
        trigger: ReleaseTrigger,
    ) -> Result<ReleaseRecord, StreamError> {
        if let Some(server) = self.server.as_ref().map(Arc::clone) {
            return self.release_via_server(&server, stream, tenant, trigger);
        }
        // Charge the tenant *first*: a refused release must cost nothing and
        // change nothing — no version burned, no snapshot published, no
        // cache invalidated, no solver time. The version the snapshot will
        // carry is known before freezing, so the ledger stage `id@version`
        // still makes the account a versioned audit trail.
        let id = stream.id().clone();
        let version = stream.next_version();
        let stage = format!("{id}@{version}");
        // The fire *decision* is journaled before the charge: a refused
        // release still shows up as "the policy fired here", followed by the
        // ledger's own refusal event — the audit stream explains both what
        // was attempted and why nothing changed.
        self.audit(
            AuditEvent::new(AuditKind::SchedulerFire)
                .tenant(tenant.as_str())
                .graph(id.as_str(), Some(version.value()))
                .epsilon(self.config.epsilon_per_release, 0.0)
                .detail(trigger.name()),
        );
        self.ledger
            .try_spend(tenant, &stage, self.config.epsilon_per_release)?;

        let snapshot = stream.snapshot();
        debug_assert_eq!(snapshot.version(), version);

        // Publish the immutable snapshot (shared, not copied); a version
        // collision is a typed refusal (two streams claiming one catalog id,
        // or a replayed feed).
        self.registry
            .insert_version(id.clone(), version, Arc::clone(snapshot.graph()))?;
        // Superseded versions can never be served again: drop their cached
        // families in bulk and expire their registry snapshots beyond the
        // retention window.
        let invalidated = self.cache.invalidate_versions_below(id.as_str(), version);
        let mut expired = 0;
        if self.config.retain_versions > 0 {
            expired = self
                .registry
                .retain_latest(&id, self.config.retain_versions);
        }
        if invalidated > 0 || expired > 0 {
            self.audit(
                AuditEvent::new(AuditKind::CacheInvalidation)
                    .tenant(tenant.as_str())
                    .graph(id.as_str(), Some(version.value()))
                    .detail(format!(
                        "{invalidated} cached families invalidated, {expired} snapshots expired"
                    )),
            );
        }

        // Record the trigger state *before* estimating: the charge already
        // happened, so a failing estimator must not leave the policy primed
        // to re-fire on the very next observe() and drain the tenant's quota
        // on a pathological graph — the damage is bounded to one charge per
        // policy period.
        self.mark_released(&id, &snapshot);

        // Estimate on the registry-resolved snapshot (not the local copy):
        // what we release is provably what `(id, version)` names.
        let graph = self.registry.resolve_version(&id, version)?;
        let mut est_config = EstimatorConfig::new(self.config.epsilon_per_release)
            .with_solver(self.config.solver)
            .with_shared_family_cache(Arc::clone(&self.cache))
            .with_graph_tag(id.as_str(), version);
        if let Some(delta_max) = self.config.delta_max {
            est_config = est_config.with_delta_max(delta_max);
        }
        let estimator = PrivateCcEstimator::from_config(est_config)
            .map_err(|e| StreamError::Serve(ServeError::Estimator(e.into())))?;
        let mut rng = StdRng::seed_from_u64(self.release_seed(&id, version));
        let release = Estimator::estimate(&estimator, &graph, &mut rng)
            .map_err(|e| StreamError::Serve(ServeError::Estimator(e)))?;

        let record = ReleaseRecord {
            graph: id,
            version,
            tenant: tenant.clone(),
            epsilon: self.config.epsilon_per_release,
            value: release.value(),
            true_components: snapshot.num_components(),
            time: snapshot.time(),
            mutations_applied: snapshot.mutations_applied(),
            trigger,
        };
        self.lock_log().push(record.clone());
        self.releases_total.inc();
        Ok(record)
    }

    /// The worker-pool pipeline: snapshot → publish → submit → await →
    /// invalidate/expire → record. Publication must precede submission (a
    /// worker can only serve what the registry resolves), so refusals roll
    /// the publish back instead of never making it — either way a refused
    /// release leaves no resolvable snapshot and no charge (see
    /// [`ReleaseScheduler::with_server`]).
    fn release_via_server(
        &self,
        server: &Server,
        stream: &mut GraphStream,
        tenant: &TenantId,
        trigger: ReleaseTrigger,
    ) -> Result<ReleaseRecord, StreamError> {
        let id = stream.id().clone();
        let snapshot = stream.snapshot();
        let version = snapshot.version();
        self.audit(
            AuditEvent::new(AuditKind::SchedulerFire)
                .tenant(tenant.as_str())
                .graph(id.as_str(), Some(version.value()))
                .epsilon(self.config.epsilon_per_release, 0.0)
                .detail(trigger.name()),
        );
        self.registry
            .insert_version(id.clone(), version, Arc::clone(snapshot.graph()))?;

        // Pin the exact published version: the worker provably estimates the
        // snapshot this release names, never "latest at dequeue time".
        let request =
            ServeRequest::new(tenant.clone(), id.clone(), self.config.epsilon_per_release)
                .at_version(version);
        let pending = match server.submit(request) {
            Ok(pending) => pending,
            Err(refusal) => {
                // Typed backpressure (QueueFull / ShuttingDown): nothing was
                // enqueued and nothing charged — the worker-side ledger spend
                // never ran. Unpublish the unfunded snapshot so shared state
                // is as before; only the stream's version number is burned.
                self.registry.remove_version(&id, version);
                return Err(StreamError::Serve(refusal));
            }
        };
        let response = pending.wait();
        let release = match response.result {
            Ok(release) => release,
            Err(refusal @ ServeError::BudgetExhausted { .. }) => {
                // The worker's atomic check-and-spend refused: no charge
                // landed, so the unfunded snapshot must not stay resolvable
                // and the policy state must not advance.
                self.registry.remove_version(&id, version);
                return Err(StreamError::Serve(refusal));
            }
            Err(failure) => {
                // The charge landed (failures past admission are never
                // refunded — same conservative accounting as the inline
                // path), so advance the policy state: a pathological graph
                // drains at most one charge per policy period.
                self.mark_released(&id, &snapshot);
                return Err(StreamError::Serve(failure));
            }
        };
        self.mark_released(&id, &snapshot);
        let invalidated = self.cache.invalidate_versions_below(id.as_str(), version);
        let mut expired = 0;
        if self.config.retain_versions > 0 {
            expired = self
                .registry
                .retain_latest(&id, self.config.retain_versions);
        }
        if invalidated > 0 || expired > 0 {
            self.audit(
                AuditEvent::new(AuditKind::CacheInvalidation)
                    .tenant(tenant.as_str())
                    .graph(id.as_str(), Some(version.value()))
                    .detail(format!(
                        "{invalidated} cached families invalidated, {expired} snapshots expired"
                    )),
            );
        }

        let record = ReleaseRecord {
            graph: id,
            version,
            tenant: tenant.clone(),
            epsilon: self.config.epsilon_per_release,
            value: release.value(),
            true_components: snapshot.num_components(),
            time: snapshot.time(),
            mutations_applied: snapshot.mutations_applied(),
            trigger,
        };
        self.lock_log().push(record.clone());
        self.releases_total.inc();
        Ok(record)
    }

    /// Advances the per-stream policy state to `snapshot`.
    fn mark_released(&self, id: &GraphId, snapshot: &GraphSnapshot) {
        self.lock_state().insert(
            id.clone(),
            TriggerState {
                mutations_at_last: snapshot.mutations_applied(),
                components_at_last: snapshot.num_components(),
            },
        );
    }

    /// Deterministic per-release noise stream: the same (seed, graph,
    /// version) triple draws the same noise on any run.
    fn release_seed(&self, id: &GraphId, version: GraphVersion) -> u64 {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h.finish())
            .wrapping_add(version.value())
    }

    fn lock_state(&self) -> MutexGuard<'_, HashMap<GraphId, TriggerState>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_log(&self) -> MutexGuard<'_, Vec<ReleaseRecord>> {
        self.log.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl std::fmt::Debug for ReleaseScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseScheduler")
            .field("config", &self.config)
            .field("releases", &self.releases())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Mutation;

    fn infra() -> (Arc<GraphRegistry>, Arc<BudgetLedger>, Arc<ExtensionCache>) {
        let registry = Arc::new(GraphRegistry::new());
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 100.0).unwrap();
        let cache = Arc::new(ExtensionCache::new(64));
        (registry, ledger, cache)
    }

    fn grow_stream(id: &str, edges: usize) -> GraphStream {
        let mut s = GraphStream::new(id);
        for i in 0..edges {
            s.apply(&Mutation::insert(i as u64 + 1, i, i + 1)).unwrap();
        }
        s
    }

    #[test]
    fn every_k_mutations_fires_baseline_then_periodically() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::EveryKMutations(4)).with_epsilon(0.5),
            Arc::clone(&registry),
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 2);
        // First observation: baseline release at v0.
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Baseline);
        assert_eq!(r.version, GraphVersion::INITIAL);
        // Two more mutations: not yet.
        s.apply(&Mutation::insert(10, 3, 4)).unwrap();
        s.apply(&Mutation::insert(11, 4, 5)).unwrap();
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        // Two more reach k = 4.
        s.apply(&Mutation::insert(12, 5, 6)).unwrap();
        s.apply(&Mutation::insert(13, 6, 7)).unwrap();
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Mutations);
        assert_eq!(r.version, GraphVersion::new(1));
        assert_eq!(sched.releases(), 2);
        // The log is versioned and ordered.
        let log = sched.log();
        assert_eq!(log[0].version, GraphVersion::INITIAL);
        assert_eq!(log[1].version, GraphVersion::new(1));
        // Both snapshots live in the registry.
        assert_eq!(registry.num_versions(), 2);
    }

    #[test]
    fn drift_policy_fires_on_component_change() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnComponentDrift { threshold: 2 }),
            registry,
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 3); // path on 4 vertices, 1 component
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Baseline);
        assert_eq!(r.true_components, 1);
        // One extra component {4, 5} appears: drift 1 < 2.
        s.apply(&Mutation::insert(10, 4, 5)).unwrap();
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        // Break the path twice: {0}, {1,2}, {3}, {4,5} — drift ≥ 2 fires.
        s.apply(&Mutation::delete(11, 0, 1)).unwrap();
        s.apply(&Mutation::delete(12, 2, 3)).unwrap();
        let r = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Drift);
        assert_eq!(r.true_components, 4);
    }

    #[test]
    fn on_demand_only_fires_when_asked() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand),
            registry,
            ledger,
            cache,
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 5);
        assert!(sched.observe(&mut s, &tenant).unwrap().is_none());
        let r = sched.release_now(&mut s, &tenant).unwrap();
        assert_eq!(r.trigger, ReleaseTrigger::Demand);
        assert_eq!(sched.releases(), 1);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_refusal_and_spends_nothing_more() {
        let (registry, ledger, cache) = infra();
        ledger.register("poor", 0.6).unwrap();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand).with_epsilon(0.5),
            registry,
            ledger.clone(),
            cache,
        );
        let tenant = TenantId::new("poor");
        let mut s = grow_stream("g", 4);
        sched.release_now(&mut s, &tenant).unwrap();
        let err = sched.release_now(&mut s, &tenant).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Serve(ServeError::BudgetExhausted { .. })
        ));
        // The refusal charged nothing and logged nothing.
        assert_eq!(sched.releases(), 1);
        let view = ledger.account_view(&tenant).unwrap();
        assert!((view.spent_epsilon - 0.5).abs() < 1e-12);
        // The ledger audit trail names the snapshot.
        assert_eq!(view.grants, 1);
    }

    #[test]
    fn refused_releases_leave_all_shared_state_untouched() {
        // Regression: the budget check must come before any side effect. A
        // refused release may not burn a stream version, publish an unfunded
        // snapshot, invalidate cached families or expire registry history.
        let (registry, ledger, cache) = infra();
        ledger.register("poor", 0.5).unwrap();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.5)
                .with_retain_versions(2),
            Arc::clone(&registry),
            ledger,
            Arc::clone(&cache),
        );
        let tenant = TenantId::new("poor");
        let mut s = grow_stream("g", 4);
        sched.release_now(&mut s, &tenant).unwrap();
        let id = GraphId::new("g");
        let versions_before = registry.versions(&id);
        let cache_before = cache.stats();
        let next_before = s.next_version();
        for _ in 0..3 {
            let err = sched.release_now(&mut s, &tenant).unwrap_err();
            assert!(matches!(
                err,
                StreamError::Serve(ServeError::BudgetExhausted { .. })
            ));
        }
        assert_eq!(s.next_version(), next_before, "no version may be burned");
        assert_eq!(registry.versions(&id), versions_before);
        assert_eq!(cache.stats(), cache_before);
        assert_eq!(s.stats().snapshots, 1, "refusals never snapshot");
    }

    #[test]
    fn superseded_versions_are_invalidated_and_expired() {
        let (registry, ledger, cache) = infra();
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.25)
                .with_retain_versions(2),
            Arc::clone(&registry),
            ledger,
            Arc::clone(&cache),
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 3);
        for i in 0..5 {
            sched.release_now(&mut s, &tenant).unwrap();
            s.apply(&Mutation::insert(100 + i, 10 + i as usize, 11 + i as usize))
                .unwrap();
        }
        // Registry retains only the 2 newest versions.
        let id = GraphId::new("g");
        assert_eq!(registry.versions(&id).len(), 2);
        assert_eq!(registry.latest_version(&id), Some(GraphVersion::new(4)));
        // Every release evaluated its own version's family: 5 misses, no
        // cross-version replay, and superseded entries were invalidated.
        let stats = cache.stats();
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 0);
        assert!(stats.invalidations >= 4, "{stats:?}");
    }

    #[test]
    fn server_pool_releases_share_cache_ledger_and_log() {
        use ccdp_serve::ServeConfig;
        let registry = Arc::new(GraphRegistry::new());
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 100.0).unwrap();
        let server = Arc::new(Server::start(
            ServeConfig::new().with_workers(2).with_seed(5),
            Arc::clone(&registry),
            Arc::clone(&ledger),
        ));
        let sched = ReleaseScheduler::with_server(
            SchedulerConfig::new(ReleasePolicy::EveryKMutations(3)).with_epsilon(0.5),
            Arc::clone(&server),
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 2);
        let baseline = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(baseline.trigger, ReleaseTrigger::Baseline);
        assert_eq!(baseline.version, GraphVersion::INITIAL);
        for i in 0..3u64 {
            s.apply(&Mutation::insert(20 + i, 30 + i as usize, 31 + i as usize))
                .unwrap();
        }
        let next = sched.observe(&mut s, &tenant).unwrap().unwrap();
        assert_eq!(next.trigger, ReleaseTrigger::Mutations);
        assert_eq!(next.version, GraphVersion::new(1));
        // Both releases went through the pool: its stats counted them, its
        // cache holds their families, the shared ledger funded them.
        let snap = server.stats();
        assert_eq!(snap.completed, 2);
        assert_eq!(server.cache_stats().misses, 2);
        let view = ledger.account_view(&tenant).unwrap();
        assert!((view.spent_epsilon - 1.0).abs() < 1e-12);
        assert_eq!(sched.releases(), 2);
        assert_eq!(registry.versions(&GraphId::new("g")).len(), 2);
    }

    #[test]
    fn pool_backpressure_refuses_the_release_and_charges_nothing() {
        // Regression (wire-era invariant): a scheduler release that meets a
        // full worker queue must surface `QueueFull` as a typed refusal,
        // charge no budget and leave no resolvable snapshot behind.
        use ccdp_serve::ServeConfig;
        let registry = Arc::new(GraphRegistry::new());
        // A slow graph occupies the lone worker long enough for the 1-slot
        // queue to stay full behind it.
        registry.insert("slow", ccdp_graph::generators::caveman(6, 6));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("filler", 1e6).unwrap();
        ledger.register("acme", 100.0).unwrap();
        let server = Arc::new(Server::start(
            ServeConfig::new().with_workers(1).with_queue_capacity(1),
            Arc::clone(&registry),
            Arc::clone(&ledger),
        ));
        let sched = ReleaseScheduler::with_server(
            SchedulerConfig::new(ReleasePolicy::OnDemand).with_epsilon(0.5),
            Arc::clone(&server),
        );
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 4);
        let id = GraphId::new("g");

        let mut pending = Vec::new();
        let mut refused = false;
        for _ in 0..20 {
            // Saturate the pool: keep submitting slow filler work until the
            // bounded queue pushes back.
            loop {
                match server.submit(ccdp_serve::ServeRequest::new("filler", "slow", 0.001)) {
                    Ok(p) => pending.push(p),
                    Err(ServeError::QueueFull { .. }) => break,
                    Err(other) => panic!("unexpected filler refusal: {other:?}"),
                }
            }
            let spent_before = ledger.account_view(&tenant).unwrap().spent_epsilon;
            let releases_before = sched.releases();
            let refused_version = s.next_version();
            match sched.release_now(&mut s, &tenant) {
                Err(StreamError::Serve(ServeError::QueueFull { capacity })) => {
                    assert_eq!(capacity, 1);
                    let view = ledger.account_view(&tenant).unwrap();
                    assert_eq!(
                        view.spent_epsilon, spent_before,
                        "a refused release must charge nothing"
                    );
                    // The refused snapshot was unpublished and not logged.
                    assert!(registry.get_version(&id, refused_version).is_none());
                    assert_eq!(sched.releases(), releases_before);
                    refused = true;
                    break;
                }
                // The lone worker won the race and drained the queue first;
                // that release went through — re-saturate and try again.
                Ok(r) => {
                    assert_eq!(r.version, refused_version);
                    continue;
                }
                Err(other) => panic!("unexpected release failure: {other:?}"),
            }
        }
        assert!(refused, "a 1-slot queue never refused a release");
    }

    #[test]
    fn scheduler_decisions_land_in_the_audit_journal() {
        let (registry, ledger, cache) = infra();
        ledger.register("poor", 0.6).unwrap();
        let journal = Arc::new(AuditJournal::new());
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.5)
                .with_retain_versions(1),
            registry,
            Arc::clone(&ledger),
            cache,
        );
        sched.set_journal(Arc::clone(&journal));
        ledger.set_journal(Arc::clone(&journal));
        let tenant = TenantId::new("poor");
        let mut s = grow_stream("g", 3);
        sched.release_now(&mut s, &tenant).unwrap();
        s.apply(&Mutation::insert(10, 5, 6)).unwrap();
        // Second release: refused (0.1 ε left) — the fire decision is still
        // journaled, followed by the ledger's refusal.
        assert!(sched.release_now(&mut s, &tenant).is_err());
        let events = journal.events_for_tenant("poor");
        let kinds: Vec<AuditKind> = events.iter().map(|e| e.kind).collect();
        let fires = kinds
            .iter()
            .filter(|k| **k == AuditKind::SchedulerFire)
            .count();
        assert_eq!(fires, 2, "{kinds:?}");
        assert!(kinds.contains(&AuditKind::BudgetCharge));
        assert!(kinds.contains(&AuditKind::BudgetRefusal));
        let fire = events
            .iter()
            .find(|e| e.kind == AuditKind::SchedulerFire)
            .unwrap();
        assert_eq!(fire.detail, "demand");
        assert_eq!((fire.graph.as_str(), fire.version), ("g", Some(0)));
        // The inline stage name is `id@version`; replay still reconstructs
        // the account exactly from the journal.
        assert_eq!(ledger.verify_replay(&journal), Ok(2));
    }

    #[test]
    fn superseding_releases_journal_their_invalidations() {
        let (registry, ledger, cache) = infra();
        let journal = Arc::new(AuditJournal::new());
        let sched = ReleaseScheduler::new(
            SchedulerConfig::new(ReleasePolicy::OnDemand)
                .with_epsilon(0.1)
                .with_retain_versions(1),
            registry,
            ledger,
            cache,
        );
        sched.set_journal(Arc::clone(&journal));
        let tenant = TenantId::new("acme");
        let mut s = grow_stream("g", 3);
        sched.release_now(&mut s, &tenant).unwrap();
        s.apply(&Mutation::insert(10, 5, 6)).unwrap();
        sched.release_now(&mut s, &tenant).unwrap();
        let invalidations: Vec<_> = journal
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == AuditKind::CacheInvalidation)
            .collect();
        assert_eq!(invalidations.len(), 1, "{invalidations:?}");
        assert_eq!(invalidations[0].version, Some(1));
        assert!(invalidations[0].detail.contains("1 cached families"));
    }

    #[test]
    fn identical_seeds_replay_identical_release_values() {
        let run = || {
            let (registry, ledger, cache) = infra();
            let sched = ReleaseScheduler::new(
                SchedulerConfig::new(ReleasePolicy::EveryKMutations(3)).with_seed(42),
                registry,
                ledger,
                cache,
            );
            let tenant = TenantId::new("acme");
            let mut s = grow_stream("g", 2);
            let mut values = Vec::new();
            for i in 0..9u64 {
                s.apply(&Mutation::insert(50 + i, 20 + i as usize, 21 + i as usize))
                    .unwrap();
                if let Some(r) = sched.observe(&mut s, &tenant).unwrap() {
                    values.push((r.version, r.value.to_bits()));
                }
            }
            values
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "seeded schedulers must replay exactly");
    }
}
