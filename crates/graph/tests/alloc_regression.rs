//! Allocation regression guard for `induced_subgraph` at n = 10^5.
//!
//! The pre-CSR implementation binary-search-inserted every edge and cloned
//! adjacency per vertex, which made per-component extraction both quadratic
//! in row length and allocation-heavy. The rewrite builds each row with at
//! most one allocation, so extracting a subgraph on `k` vertices must stay
//! within `k` + a small constant number of heap allocations — this test pins
//! that bound with a counting global allocator so the behavior cannot
//! silently regress.
//!
//! This file deliberately holds a single `#[test]`: the counter is global,
//! and a sibling test running concurrently would pollute the measurement.

use ccdp_graph::subgraph::induced_subgraph;
use ccdp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation for the purpose of the bound: the
        // rewrite sizes every row up front precisely so none happen.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (out, after - before)
}

#[test]
fn induced_subgraph_allocates_linearly_at_scale() {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(4242);
    let g = generators::erdos_renyi(n, 3.0 / n as f64, &mut rng);

    // The per-component case: an ascending keep set of half the vertices.
    let keep: Vec<usize> = (0..n).step_by(2).collect();
    let ((sub, map), allocs) = allocations_during(|| induced_subgraph(&g, &keep));
    assert_eq!(sub.num_vertices(), keep.len());
    assert_eq!(map, keep);
    // One allocation per non-isolated kept vertex (its row) plus a handful
    // for the index, the adjacency spine and the returned map. The exact
    // happy-path count today is keep.len() + 3; the slack absorbs allocator
    // or stdlib drift without letting a quadratic/cloning regression through.
    assert!(
        allocs <= keep.len() + 64,
        "induced_subgraph made {allocs} allocations for {} kept vertices",
        keep.len()
    );

    // A non-ascending keep set pays the same bound (rows sort in place).
    let keep_rev: Vec<usize> = (0..1000).rev().collect();
    let ((sub, _), allocs) = allocations_during(|| induced_subgraph(&g, &keep_rev));
    assert_eq!(sub.num_vertices(), keep_rev.len());
    assert!(
        allocs <= keep_rev.len() + 64,
        "non-ascending keep made {allocs} allocations"
    );

    // And the extraction must agree with membership filtering on a sample.
    let in_keep = |v: usize| v.is_multiple_of(2);
    let mut expected = 0usize;
    for (u, v) in g.edges() {
        if in_keep(u) && in_keep(v) {
            expected += 1;
        }
    }
    let (full_half, _) = allocations_during(|| induced_subgraph(&g, &keep));
    assert_eq!(full_half.0.num_edges(), expected);
    let _ = Graph::new(0);
}
