//! Property-based tests for the CSR arena: `CsrGraph` must be a lossless,
//! structurally faithful view of `Graph` for every graph the generators can
//! produce, and the component partition must slice the arena exactly the way
//! induced subgraphs would.

use ccdp_graph::generators;
use ccdp_graph::subgraph::induced_subgraph;
use ccdp_graph::{CsrGraph, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random graph on at most `max_n` vertices given by an edge bitmask.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let num_pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), num_pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[idx] {
                        g.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

/// Strategy: one graph from every generator family, driven by a seed.
fn arb_generated_graph() -> impl Strategy<Value = Graph> {
    (0u64..1_000, 0usize..10).prop_map(|(seed, family)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 5 + (seed % 20) as usize;
        match family {
            0 => generators::erdos_renyi(n, 0.2, &mut rng),
            1 => generators::path(n),
            2 => generators::cycle(n),
            3 => generators::star(n),
            4 => generators::complete(2 + n / 3),
            5 => generators::grid(2 + n / 5, 2 + n / 5),
            6 => generators::caveman(2 + n / 8, 3),
            7 => generators::planted_star_forest(n / 2 + 1, 3, n / 4),
            8 => generators::barabasi_albert(n.max(4), 2, &mut rng),
            _ => generators::random_geometric(n, 0.4, &mut rng),
        }
    })
}

fn assert_csr_round_trips(g: &Graph) {
    let csr = CsrGraph::from_graph(g);
    // Scalar invariants.
    assert_eq!(csr.num_vertices(), g.num_vertices());
    assert_eq!(csr.num_edges(), g.num_edges());
    assert_eq!(csr.max_degree(), g.max_degree());
    assert_eq!(csr.num_components(), g.num_connected_components());
    assert_eq!(csr.spanning_forest_size(), g.spanning_forest_size());
    // Per-vertex structure.
    for v in g.vertices() {
        assert_eq!(csr.degree(v), g.degree(v));
        let from_csr: Vec<usize> = csr.neighbors(v).iter().map(|&w| w as usize).collect();
        let mut from_adj: Vec<usize> = g.neighbors(v).to_vec();
        from_adj.sort_unstable();
        assert_eq!(from_csr, from_adj);
    }
    // Full structural witness and exact graph round-trip.
    assert!(csr.matches_graph(g));
    let back = csr.to_graph();
    assert_eq!(back.num_vertices(), g.num_vertices());
    assert_eq!(back.edge_vec(), g.edge_vec());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_arbitrary_graphs(g in arb_graph(12)) {
        assert_csr_round_trips(&g);
    }

    #[test]
    fn csr_round_trips_every_generator_family(g in arb_generated_graph()) {
        assert_csr_round_trips(&g);
    }

    #[test]
    fn fingerprints_agree_exactly_when_graphs_agree(
        a in arb_graph(9),
        b in arb_graph(9),
    ) {
        let fa = CsrGraph::from_graph(&a).fingerprint();
        let fb = CsrGraph::from_graph(&b).fingerprint();
        if a.num_vertices() == b.num_vertices() && a.edge_vec() == b.edge_vec() {
            prop_assert_eq!(fa, fb);
        } else {
            // Not a guarantee in general (collisions exist), but on these
            // tiny instances a collision would almost surely be a bug.
            prop_assert!(fa != fb);
        }
    }

    #[test]
    fn partition_slices_match_induced_subgraphs(g in arb_graph(12)) {
        let csr = CsrGraph::from_graph(&g);
        let part = csr.partition_components();
        prop_assert_eq!(part.num_components(), g.num_connected_components());
        let mut seen = 0usize;
        for c in 0..part.num_components() {
            let comp = part.component(c);
            let vertices: Vec<usize> = part
                .component_vertices(c)
                .iter()
                .map(|&v| v as usize)
                .collect();
            seen += vertices.len();
            let (induced, _) = induced_subgraph(&g, &vertices);
            let local = comp.to_graph();
            prop_assert_eq!(local.num_vertices(), induced.num_vertices());
            prop_assert_eq!(local.edge_vec(), induced.edge_vec());
        }
        prop_assert_eq!(seen, g.num_vertices());
    }
}
