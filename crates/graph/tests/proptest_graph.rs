//! Property-based tests for the graph substrate.

use ccdp_graph::components::{connected_component_labels, num_connected_components};
use ccdp_graph::forest::{bfs_spanning_forest, bounded_degree_spanning_forest, delta_star_exact};
use ccdp_graph::generators;
use ccdp_graph::io::{from_edge_list, to_edge_list};
use ccdp_graph::sensitivity::{down_sensitivity_fsf, down_sensitivity_fsf_brute_force};
use ccdp_graph::stars::{induced_star_number, induced_star_number_brute_force};
use ccdp_graph::subgraph::{induced_subgraph, remove_vertex};
use ccdp_graph::Graph;
use proptest::prelude::*;

/// Strategy: a random graph on at most `max_n` vertices given by an edge bitmask.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let num_pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), num_pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[idx] {
                        g.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_after_construction(g in arb_graph(10)) {
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn fcc_plus_fsf_is_n(g in arb_graph(10)) {
        prop_assert_eq!(
            g.num_connected_components() + g.spanning_forest_size(),
            g.num_vertices()
        );
    }

    #[test]
    fn union_find_components_match_bfs_labels(g in arb_graph(12)) {
        let labels = connected_component_labels(&g);
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        prop_assert_eq!(num_connected_components(&g), k);
        // Vertices in the same labeled component must be connected by the BFS forest.
        let forest = bfs_spanning_forest(&g);
        prop_assert!(forest.is_spanning_forest_of(&g));
    }

    #[test]
    fn removing_a_vertex_changes_fcc_boundedly(g in arb_graph(10), v_idx in 0usize..10) {
        // Removing one vertex can decrease f_cc by at most 1 and increase it by at
        // most deg(v) - 1.
        let n = g.num_vertices();
        let v = v_idx % n;
        let before = g.num_connected_components() as i64;
        let (h, _) = remove_vertex(&g, v);
        let after = h.num_connected_components() as i64;
        prop_assert!(after >= before - 1);
        prop_assert!(after <= before + (g.degree(v) as i64 - 1).max(0));
    }

    #[test]
    fn fsf_is_monotone_under_vertex_removal(g in arb_graph(10), v_idx in 0usize..10) {
        // f_sf is monotone nondecreasing under node additions (Section 1.1).
        let v = v_idx % g.num_vertices();
        let (h, _) = remove_vertex(&g, v);
        prop_assert!(h.spanning_forest_size() <= g.spanning_forest_size());
    }

    #[test]
    fn star_number_matches_brute_force(g in arb_graph(8)) {
        let fast = induced_star_number(&g);
        prop_assert!(fast.is_exact());
        prop_assert_eq!(fast.value(), induced_star_number_brute_force(&g));
    }

    #[test]
    fn lemma_1_7_down_sensitivity_equals_star_number(g in arb_graph(7)) {
        prop_assert_eq!(down_sensitivity_fsf(&g).value(), down_sensitivity_fsf_brute_force(&g));
    }

    #[test]
    fn lemma_1_8_no_delta_star_implies_spanning_delta_forest(g in arb_graph(9)) {
        let s = induced_star_number(&g).value();
        let delta = (s + 1).max(1);
        let f = bounded_degree_spanning_forest(&g, delta);
        prop_assert!(f.is_some(), "repair failed with delta = s(G)+1 = {}", delta);
        let f = f.unwrap();
        prop_assert!(f.is_spanning_forest_of(&g));
        prop_assert!(f.max_degree() <= delta);
    }

    #[test]
    fn lemma_1_6_delta_star_at_most_ds_plus_one(g in arb_graph(8)) {
        let exact = delta_star_exact(&g, 1 << 22);
        prop_assume!(exact.is_some());
        let ds = down_sensitivity_fsf(&g).value();
        prop_assert!(exact.unwrap() <= ds + 1, "Δ*={} > DS+1={}", exact.unwrap(), ds + 1);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(9), keep_bits in proptest::collection::vec(any::<bool>(), 9)) {
        let keep: Vec<usize> = (0..g.num_vertices()).filter(|&v| keep_bits[v]).collect();
        let (h, map) = induced_subgraph(&g, &keep);
        prop_assert!(h.check_invariants().is_ok());
        for i in 0..h.num_vertices() {
            for j in (i + 1)..h.num_vertices() {
                prop_assert_eq!(h.has_edge(i, j), g.has_edge(map[i], map[j]));
            }
        }
    }

    #[test]
    fn edge_list_round_trip(g in arb_graph(10)) {
        let text = to_edge_list(&g);
        let parsed = from_edge_list(&text).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn geometric_graphs_never_have_large_induced_stars(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_geometric(80, 0.2, &mut rng);
        prop_assert!(induced_star_number(&g).value() <= 5);
    }
}
