//! Down-sensitivity (Definition 1.4) of graph statistics.
//!
//! The down-sensitivity of a function `f` at `G` is the maximum change of `f`
//! between two node-neighboring induced subgraphs of `G`. It characterizes the
//! largest monotone anchor set for a Δ-Lipschitz extension (Lemma A.3) and bounds
//! the error of the paper's algorithm (Theorem 1.5).
//!
//! For the spanning-forest size, Lemma 1.7 gives the exact combinatorial
//! characterization `DS_{f_sf}(G) = s(G)` (the induced star number), which we use
//! as the fast path. Brute-force evaluation over all induced subgraph pairs is
//! provided for validation on small graphs.

use crate::csr::CsrGraph;
use crate::graph::Graph;
use crate::stars::{induced_star_number, induced_star_number_csr, StarNumber};
use crate::subgraph::{all_vertex_subsets, induced_subgraph};

/// Down-sensitivity of `f_sf` at `g`, computed via Lemma 1.7 as the induced star
/// number `s(G)`. The result carries an exactness flag (see [`StarNumber`]).
pub fn down_sensitivity_fsf(g: &Graph) -> StarNumber {
    induced_star_number(g)
}

/// Down-sensitivity of `f_cc` at `g`.
///
/// Since `f_cc(H) = |V(H)| - f_sf(H)` and `|V|` changes by exactly 1 between
/// node-neighbors, `DS_{f_cc}(G)` differs from `DS_{f_sf}(G)` by at most 1. This
/// function computes it exactly for graphs small enough for brute force and
/// otherwise returns the `s(G) ± 1` envelope midpoint `max(s(G), 1)` which is the
/// exact value for every graph with at least one edge dominated by a star
/// structure; callers that need exactness should use
/// [`down_sensitivity_brute_force`].
pub fn down_sensitivity_fcc(g: &Graph) -> usize {
    // f_cc decreases by k-1 ≥ 0 when removing a vertex joining k components and
    // increases by 1 when removing a leaf-ish vertex; the maximum absolute change
    // over induced subgraph pairs is max(s(G) - 1, 1) for graphs with at least one
    // edge, and 1 for graphs with vertices but no edges, 0 for the empty graph.
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    if n == 1 {
        return 1;
    }
    let s = induced_star_number(g).value();
    s.saturating_sub(1).max(1)
}

/// [`down_sensitivity_fsf`] on the flat CSR arena.
pub fn down_sensitivity_fsf_csr(g: &CsrGraph) -> StarNumber {
    induced_star_number_csr(g)
}

/// [`down_sensitivity_fcc`] on the flat CSR arena — same formula, same values.
pub fn down_sensitivity_fcc_csr(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    if n == 1 {
        return 1;
    }
    let s = induced_star_number_csr(g).value();
    s.saturating_sub(1).max(1)
}

/// Brute-force down-sensitivity of an arbitrary real-valued graph function.
///
/// Evaluates `max |f(G[S]) - f(G[S \ {v}])|` over all vertex subsets `S ⊆ V(G)` and
/// `v ∈ S`. Exponential in `|V(G)|`; limited to 20 vertices.
pub fn down_sensitivity_brute_force<F>(g: &Graph, f: F) -> f64
where
    F: Fn(&Graph) -> f64,
{
    let mut best: f64 = 0.0;
    for subset in all_vertex_subsets(g) {
        if subset.is_empty() {
            continue;
        }
        let (h_prime, _) = induced_subgraph(g, &subset);
        let f_prime = f(&h_prime);
        for (i, _) in subset.iter().enumerate() {
            let mut smaller = subset.clone();
            smaller.remove(i);
            let (h, _) = induced_subgraph(g, &smaller);
            best = best.max((f_prime - f(&h)).abs());
        }
    }
    best
}

/// Brute-force down-sensitivity of `f_sf` (for validating Lemma 1.7 on small graphs).
pub fn down_sensitivity_fsf_brute_force(g: &Graph) -> usize {
    down_sensitivity_brute_force(g, |h| h.spanning_forest_size() as f64).round() as usize
}

/// Brute-force down-sensitivity of `f_cc`.
pub fn down_sensitivity_fcc_brute_force(g: &Graph) -> usize {
    down_sensitivity_brute_force(g, |h| h.num_connected_components() as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lemma_1_7_on_named_graphs() {
        for (g, expected) in [
            (generators::star(5), 5),
            (generators::path(6), 2),
            (generators::complete(5), 1),
            (generators::cycle(6), 2),
            (Graph::new(4), 0),
        ] {
            assert_eq!(down_sensitivity_fsf(&g).value(), expected);
            assert_eq!(down_sensitivity_fsf_brute_force(&g), expected);
        }
    }

    #[test]
    fn lemma_1_7_on_random_graphs() {
        // DS_{f_sf}(G) = s(G) for random small graphs.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let g = generators::erdos_renyi(8, 0.3, &mut rng);
            assert_eq!(
                down_sensitivity_fsf(&g).value(),
                down_sensitivity_fsf_brute_force(&g),
                "Lemma 1.7 violated on {:?}",
                g.edge_vec()
            );
        }
    }

    #[test]
    fn fsf_and_fcc_down_sensitivities_differ_by_at_most_one() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let g = generators::erdos_renyi(7, 0.35, &mut rng);
            let dsf = down_sensitivity_fsf_brute_force(&g) as i64;
            let dcc = down_sensitivity_fcc_brute_force(&g) as i64;
            assert!((dsf - dcc).abs() <= 1, "DS_fsf={dsf} DS_fcc={dcc}");
        }
    }

    #[test]
    fn fcc_down_sensitivity_formula_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..25 {
            let g = generators::erdos_renyi(7, 0.3, &mut rng);
            assert_eq!(
                down_sensitivity_fcc(&g),
                down_sensitivity_fcc_brute_force(&g),
                "f_cc down-sensitivity mismatch on {:?}",
                g.edge_vec()
            );
        }
    }

    #[test]
    fn csr_down_sensitivities_match_adjacency_path() {
        let mut rng = StdRng::seed_from_u64(37);
        for _ in 0..10 {
            let g = generators::erdos_renyi(20, 0.2, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            assert_eq!(down_sensitivity_fsf(&g), down_sensitivity_fsf_csr(&csr));
            assert_eq!(down_sensitivity_fcc(&g), down_sensitivity_fcc_csr(&csr));
        }
    }

    #[test]
    fn brute_force_handles_isolated_vertices() {
        let g = Graph::new(3);
        assert_eq!(down_sensitivity_fsf_brute_force(&g), 0);
        assert_eq!(down_sensitivity_fcc_brute_force(&g), 1);
        assert_eq!(down_sensitivity_fcc(&g), 1);
    }

    #[test]
    fn empty_graph_down_sensitivity() {
        let g = Graph::new(0);
        assert_eq!(down_sensitivity_fsf(&g).value(), 0);
        assert_eq!(down_sensitivity_fcc(&g), 0);
    }
}
