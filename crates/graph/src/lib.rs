//! Graph substrate for the node-differentially private connected-components library.
//!
//! This crate provides everything the paper's algorithm needs from a graph:
//!
//! * a simple undirected, unweighted [`Graph`] representation ([`graph`]),
//! * connected components and spanning-forest size (`f_cc`, `f_sf`) ([`components`]),
//! * spanning forests, the local-repair procedure of Algorithm 3 and
//!   degree-bounded spanning forests (Lemma 1.8) ([`forest`]),
//! * the induced star number `s(G)` (Lemma 1.7) ([`stars`]),
//! * down-sensitivity of `f_sf` and `f_cc` ([`sensitivity`]),
//! * induced subgraphs and node distance ([`subgraph`]),
//! * random and structured graph generators used by the paper's analysis
//!   ([`generators`]),
//! * plain-text edge-list I/O ([`io`]).
//!
//! Vertices are `usize` indices in `0..n`. Graphs are undirected, simple
//! (no self-loops, no parallel edges) and unweighted, exactly as in the paper.

pub mod components;
pub mod csr;
pub mod forest;
pub mod generators;
pub mod graph;
pub mod io;
pub mod sensitivity;
pub mod stars;
pub mod subgraph;
pub mod traversal;
pub mod unionfind;
pub mod version;

pub use components::{component_sizes, components, num_connected_components, spanning_forest_size};
pub use csr::{ComponentPartition, CsrComponent, CsrGraph};
pub use forest::{
    bfs_spanning_forest, bounded_degree_spanning_forest, bounded_degree_spanning_forest_csr,
    SpanningForest,
};
pub use graph::Graph;
pub use sensitivity::{down_sensitivity_fcc, down_sensitivity_fsf};
pub use stars::induced_star_number;
pub use unionfind::{UnionFind, UnionFind32};
pub use version::GraphVersion;
