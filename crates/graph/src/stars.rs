//! Induced stars and the star number `s(G)`.
//!
//! An induced `k`-star centered at `v₀` is a set `{v₀, v₁, …, v_k}` such that `v₀`
//! is adjacent to every `vᵢ` and the `vᵢ` are pairwise non-adjacent. The star
//! number `s(G)` is the largest `k` such that `G` has an induced `k`-star.
//! Lemma 1.7 of the paper shows `DS_{f_sf}(G) = s(G)`, which is how the paper's
//! accuracy guarantee connects to the structure of the input graph.
//!
//! Computing `s(G)` requires a maximum independent set inside each neighborhood,
//! which is NP-hard in general. This module provides an exact branch-and-bound
//! search for neighborhoods of at most 128 vertices (more than enough for the
//! sparse workloads evaluated in the paper) and falls back to a greedy lower bound
//! for larger neighborhoods, reporting which one was used.

use crate::csr::CsrGraph;
use crate::graph::Graph;

/// Result of a star-number computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StarNumber {
    value: usize,
    exact: bool,
}

impl StarNumber {
    /// The computed star number (a lower bound if `!is_exact()`).
    pub fn value(&self) -> usize {
        self.value
    }

    /// Whether the value is exact.
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// Largest independent set size of the small graph described by `adj_masks`,
/// where vertex `i`'s neighbors are the set bits of `adj_masks[i]`.
///
/// Exact branch-and-bound, suitable for up to 128 vertices.
pub fn max_independent_set_size(adj_masks: &[u128]) -> usize {
    let n = adj_masks.len();
    assert!(n <= 128, "bitset MIS limited to 128 vertices");
    let all: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    fn mis(candidates: u128, adj: &[u128], best: &mut usize, current: usize) {
        if candidates == 0 {
            *best = (*best).max(current);
            return;
        }
        // Bound: even taking every candidate cannot beat the best.
        if current + candidates.count_ones() as usize <= *best {
            return;
        }
        // Pick the candidate with the largest degree within the candidate set; we
        // branch on taking it or discarding it.
        let mut pick = u32::MAX;
        let mut pick_deg = 0u32;
        let mut c = candidates;
        while c != 0 {
            let v = c.trailing_zeros();
            c &= c - 1;
            let d = (adj[v as usize] & candidates).count_ones();
            if pick == u32::MAX || d > pick_deg {
                pick = v;
                pick_deg = d;
            }
        }
        let v = pick as usize;
        // Branch 1: take v.
        mis(candidates & !(1u128 << v) & !adj[v], adj, best, current + 1);
        // Branch 2: discard v.
        mis(candidates & !(1u128 << v), adj, best, current);
    }
    let mut best = 0;
    mis(all, adj_masks, &mut best, 0);
    best
}

/// Greedy (minimum-degree) independent set: a lower bound on the MIS size.
fn greedy_independent_set_size(adj_masks: &[Vec<usize>]) -> usize {
    let n = adj_masks.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut deg: Vec<usize> = adj_masks.iter().map(Vec::len).collect();
    let mut size = 0;
    while let Some(v) = (0..n).filter(|&v| alive[v]).min_by_key(|&v| deg[v]) {
        size += 1;
        alive[v] = false;
        for &w in &adj_masks[v] {
            if alive[w] {
                alive[w] = false;
                for &x in &adj_masks[w] {
                    deg[x] = deg[x].saturating_sub(1);
                }
            }
        }
    }
    size
}

/// Largest induced star centered at `center`: the MIS size of the subgraph induced
/// by the neighborhood of `center`. Returns the value and whether it is exact.
pub fn induced_star_at(g: &Graph, center: usize) -> StarNumber {
    let nbrs = g.neighbors(center);
    let k = nbrs.len();
    if k == 0 {
        return StarNumber {
            value: 0,
            exact: true,
        };
    }
    // Count edges inside the neighborhood; if there are none, the whole
    // neighborhood is an induced star.
    let internal_edges = g.edges_within(nbrs);
    if internal_edges == 0 {
        return StarNumber {
            value: k,
            exact: true,
        };
    }
    if k <= 128 {
        let index_of = |v: usize| nbrs.binary_search(&v).unwrap();
        let mut masks = vec![0u128; k];
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in g.neighbors(u) {
                if w != center && nbrs.binary_search(&w).is_ok() {
                    masks[i] |= 1u128 << index_of(w);
                }
            }
        }
        StarNumber {
            value: max_independent_set_size(&masks),
            exact: true,
        }
    } else {
        let mut local_adj = vec![Vec::new(); k];
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in g.neighbors(u) {
                if w != center {
                    if let Ok(j) = nbrs.binary_search(&w) {
                        local_adj[i].push(j);
                    }
                }
            }
        }
        StarNumber {
            value: greedy_independent_set_size(&local_adj),
            exact: false,
        }
    }
}

/// The star number `s(G)`: the largest `k` such that `G` has an induced `k`-star.
///
/// Exact whenever every neighborhood has at most 128 vertices (the result reports
/// exactness). A graph with no edges has `s(G) = 0`.
pub fn induced_star_number(g: &Graph) -> StarNumber {
    let mut value = 0;
    let mut exact = true;
    for v in g.vertices() {
        // A vertex whose degree is not larger than the current best cannot improve it.
        if g.degree(v) <= value {
            continue;
        }
        let s = induced_star_at(g, v);
        if s.value() > value {
            value = s.value();
            exact = s.is_exact();
        } else if !s.is_exact() {
            // A non-exact neighborhood might have hidden a larger star.
            exact = false;
        }
    }
    StarNumber { value, exact }
}

/// [`induced_star_at`] on the flat CSR arena: same branch-and-bound over the
/// neighborhood, reading rows straight out of the arena.
pub fn induced_star_at_csr(g: &CsrGraph, center: usize) -> StarNumber {
    let nbrs = g.neighbors(center);
    let k = nbrs.len();
    if k == 0 {
        return StarNumber {
            value: 0,
            exact: true,
        };
    }
    let center = center as u32;
    if k <= 128 {
        let mut masks = vec![0u128; k];
        let mut any_internal = false;
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in g.neighbors(u as usize) {
                if w != center {
                    if let Ok(j) = nbrs.binary_search(&w) {
                        masks[i] |= 1u128 << j;
                        any_internal = true;
                    }
                }
            }
        }
        if !any_internal {
            return StarNumber {
                value: k,
                exact: true,
            };
        }
        StarNumber {
            value: max_independent_set_size(&masks),
            exact: true,
        }
    } else {
        let mut local_adj = vec![Vec::new(); k];
        let mut any_internal = false;
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in g.neighbors(u as usize) {
                if w != center {
                    if let Ok(j) = nbrs.binary_search(&w) {
                        local_adj[i].push(j);
                        any_internal = true;
                    }
                }
            }
        }
        if !any_internal {
            return StarNumber {
                value: k,
                exact: true,
            };
        }
        StarNumber {
            value: greedy_independent_set_size(&local_adj),
            exact: false,
        }
    }
}

/// [`induced_star_number`] on the flat CSR arena — identical values and
/// exactness flags (same center pruning, same per-neighborhood computation).
pub fn induced_star_number_csr(g: &CsrGraph) -> StarNumber {
    let mut value = 0;
    let mut exact = true;
    for v in 0..g.num_vertices() {
        if g.degree(v) <= value {
            continue;
        }
        let s = induced_star_at_csr(g, v);
        if s.value() > value {
            value = s.value();
            exact = s.is_exact();
        } else if !s.is_exact() {
            exact = false;
        }
    }
    StarNumber { value, exact }
}

/// Brute-force star number by checking all center/leaf subsets. Exponential; only
/// for validation on tiny graphs (≤ 20 vertices).
pub fn induced_star_number_brute_force(g: &Graph) -> usize {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force limited to 20 vertices");
    let mut best = 0;
    for center in 0..n {
        let nbrs = g.neighbors(center);
        let k = nbrs.len();
        for mask in 0u32..(1 << k) {
            let leaves: Vec<usize> = (0..k)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| nbrs[i])
                .collect();
            if leaves.len() <= best {
                continue;
            }
            let independent = leaves
                .iter()
                .enumerate()
                .all(|(i, &u)| leaves.iter().skip(i + 1).all(|&v| !g.has_edge(u, v)));
            if independent {
                best = leaves.len();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_has_no_stars() {
        let g = Graph::new(5);
        let s = induced_star_number(&g);
        assert_eq!(s.value(), 0);
        assert!(s.is_exact());
    }

    #[test]
    fn single_edge_is_a_one_star() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(induced_star_number(&g).value(), 1);
    }

    #[test]
    fn star_graph_has_full_star() {
        let g = generators::star(6);
        assert_eq!(induced_star_number(&g).value(), 6);
    }

    #[test]
    fn complete_graph_has_only_one_stars() {
        let g = generators::complete(6);
        assert_eq!(induced_star_number(&g).value(), 1);
    }

    #[test]
    fn path_has_two_stars() {
        let g = generators::path(6);
        assert_eq!(induced_star_number(&g).value(), 2);
    }

    #[test]
    fn cycle_four_has_two_star() {
        let g = generators::cycle(4);
        assert_eq!(induced_star_number(&g).value(), 2);
        let g5 = generators::cycle(5);
        assert_eq!(induced_star_number(&g5).value(), 2);
        let g3 = generators::cycle(3);
        assert_eq!(induced_star_number(&g3).value(), 1);
    }

    #[test]
    fn mis_on_small_graphs() {
        // Triangle: MIS = 1.
        let tri = vec![0b110u128, 0b101, 0b011];
        assert_eq!(max_independent_set_size(&tri), 1);
        // Path on 4 vertices: MIS = 2.
        let p4 = vec![0b0010u128, 0b0101, 0b1010, 0b0100];
        assert_eq!(max_independent_set_size(&p4), 2);
        // Empty graph on 5 vertices: MIS = 5.
        let e5 = vec![0u128; 5];
        assert_eq!(max_independent_set_size(&e5), 5);
    }

    #[test]
    fn star_number_matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let g = generators::erdos_renyi(9, 0.3, &mut rng);
            let fast = induced_star_number(&g);
            assert!(fast.is_exact());
            assert_eq!(fast.value(), induced_star_number_brute_force(&g));
        }
    }

    #[test]
    fn geometric_graphs_have_no_induced_six_stars() {
        // Section 1.1.4: a geometric graph has no induced 6-star (six points within
        // distance r of a center must contain two points within distance r of each
        // other).
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = generators::random_geometric(200, 0.12, &mut rng);
            let s = induced_star_number(&g);
            assert!(
                s.value() <= 5,
                "geometric graph had an induced {}-star",
                s.value()
            );
        }
    }

    #[test]
    fn csr_star_number_matches_adjacency_path() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..15 {
            let g = generators::erdos_renyi(25, 0.15, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            let a = induced_star_number(&g);
            let b = induced_star_number_csr(&csr);
            assert_eq!(a, b);
            for v in 0..g.num_vertices() {
                assert_eq!(induced_star_at(&g, v), induced_star_at_csr(&csr, v));
            }
        }
    }

    #[test]
    fn star_at_specific_center() {
        // Center 0 adjacent to 1,2,3; edge (1,2) present, so best star at 0 is {1,3} or {2,3}.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(induced_star_at(&g, 0).value(), 2);
        assert_eq!(induced_star_at(&g, 3).value(), 1);
        assert_eq!(induced_star_number(&g).value(), 2);
    }
}
