//! Flat compressed-sparse-row (CSR) graph arena — the hot-path memory layout.
//!
//! [`Graph`] keeps one heap-allocated `Vec<usize>` per vertex, which is
//! convenient for mutation but hostile to the cache once n reaches 10^5–10^6:
//! every neighbor scan chases a fresh pointer and every vertex id costs eight
//! bytes. [`CsrGraph`] is the immutable counterpart used by the solving hot
//! path: all adjacency lives in two contiguous arrays of `u32`,
//!
//! ```text
//! offsets: [0, d(0), d(0)+d(1), …, 2m]        (n + 1 entries)
//! targets: [nbrs(0)…, nbrs(1)…, …, nbrs(n-1)…] (2m entries, each row sorted)
//! ```
//!
//! so `degree` is one subtraction, neighbor iteration is a linear scan of one
//! slice, and the whole structure is `Send + Sync` without locks. Construction
//! from a [`Graph`] is a single O(n + m) copy.
//!
//! [`CsrGraph::partition_components`] goes one step further: it relabels the
//! vertices so every connected component occupies a *contiguous* range of the
//! arena. Per-component subproblems then borrow slices of the shared arrays
//! ([`CsrComponent`]) instead of re-allocating adjacency per component — the
//! allocation that used to dominate repeated `induced_subgraph` extraction.

use crate::graph::Graph;
use crate::unionfind::UnionFind32;

/// An immutable, flat CSR view of an undirected simple graph.
///
/// Vertex ids are `u32` (the arena refuses graphs with ≥ 2^32 − 1 vertices or
/// half-edges, far beyond the 10^6–10^7 target scale). Neighbor rows are
/// sorted ascending, mirroring [`Graph`]'s invariant, so `has_edge` stays a
/// binary search and row-wise comparisons against a [`Graph`] are linear.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds the flat arena from an adjacency-list graph in O(n + m).
    ///
    /// # Panics
    /// Panics if the graph has too many vertices or half-edges for `u32`
    /// indexing.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let half_edges = 2 * g.num_edges();
        assert!(
            n < u32::MAX as usize && half_edges < u32::MAX as usize,
            "graph exceeds u32 CSR indexing"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for v in 0..n {
            for &w in g.neighbors(v) {
                targets.push(w as u32);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets }
    }

    /// Builds the arena directly from a re-playable edge stream in two
    /// counting passes, never materializing an adjacency-list [`Graph`].
    ///
    /// `edges` is called twice and must yield the same multiset of edges both
    /// times (a deterministic generator, or a re-read of an edge list). Pass
    /// one counts degrees, pass two scatters the half-edges into the arena;
    /// rows are then sorted and exact duplicates removed. Self-loops are
    /// rejected. Peak memory is the arena itself plus one `u32` cursor per
    /// vertex — this is what unlocks n = 10⁷, where building the intermediate
    /// `Vec<Vec<usize>>` adjacency first costs more than the whole solve.
    ///
    /// # Panics
    /// Panics on an endpoint `>= n`, a self-loop, a stream that yields a
    /// different edge count on the second pass, or a graph too large for
    /// `u32` indexing.
    pub fn from_edge_stream<I, F>(n: usize, mut edges: F) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
        F: FnMut() -> I,
    {
        assert!(n < u32::MAX as usize, "graph exceeds u32 CSR indexing");
        let nu = n as u32;
        // Pass 1: degree counts.
        let mut degree = vec![0u32; n];
        let mut half_edges = 0usize;
        for (u, v) in edges() {
            assert!(u < nu && v < nu, "edge ({u}, {v}) out of range for n = {n}");
            assert!(u != v, "self-loop ({u}, {v}) is not a simple-graph edge");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
            half_edges += 2;
        }
        assert!(
            half_edges < u32::MAX as usize,
            "graph exceeds u32 CSR indexing"
        );
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        // Pass 2: scatter half-edges; `degree` becomes the per-row cursor.
        degree.iter_mut().for_each(|d| *d = 0);
        let mut targets = vec![0u32; half_edges];
        let mut seen = 0usize;
        for (u, v) in edges() {
            targets[(offsets[u as usize] + degree[u as usize]) as usize] = v;
            degree[u as usize] += 1;
            targets[(offsets[v as usize] + degree[v as usize]) as usize] = u;
            degree[v as usize] += 1;
            seen += 2;
        }
        assert_eq!(seen, half_edges, "edge stream changed between passes");
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        let csr = CsrGraph { offsets, targets };
        if csr.has_duplicate_half_edges() {
            csr.deduplicated()
        } else {
            csr
        }
    }

    /// `true` if any sorted row contains a repeated target (duplicate edge).
    fn has_duplicate_half_edges(&self) -> bool {
        (0..self.num_vertices()).any(|v| self.neighbors(v).windows(2).any(|w| w[0] == w[1]))
    }

    /// Rebuilds the arena with duplicate edges collapsed (rows stay sorted).
    fn deduplicated(&self) -> Self {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0u32);
        for v in 0..n {
            let row = self.neighbors(v);
            for (i, &w) in row.iter().enumerate() {
                if i == 0 || row[i - 1] != w {
                    targets.push(w);
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// `true` if the graph has no edges.
    #[inline]
    pub fn has_no_edges(&self) -> bool {
        self.targets.is_empty()
    }

    /// Degree of vertex `v` — one subtraction, no pointer chase.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Sorted slice of the neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// `true` if the edge `(u, v)` is present (binary search over one row).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over edges as `(u, v)` pairs with `u < v`, in the same
    /// canonical order as [`Graph::edges`].
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v as usize)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Converts back to an adjacency-list [`Graph`] in O(n + m) (exact-size
    /// row allocations, no binary-search insertion).
    pub fn to_graph(&self) -> Graph {
        let n = self.num_vertices();
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| self.neighbors(v).iter().map(|&w| w as usize).collect())
            .collect();
        Graph::from_sorted_adjacency(adj, self.num_edges())
    }

    /// Structural equality against an adjacency-list graph, allocation-free:
    /// same vertex count, same sorted neighbor rows.
    pub fn matches_graph(&self, g: &Graph) -> bool {
        if g.num_vertices() != self.num_vertices() || g.num_edges() != self.num_edges() {
            return false;
        }
        (0..self.num_vertices()).all(|v| {
            let row = self.neighbors(v);
            let nbrs = g.neighbors(v);
            row.len() == nbrs.len() && row.iter().zip(nbrs).all(|(&a, &b)| a as usize == b)
        })
    }

    /// A 128-bit structural fingerprint (FNV-1a over the offset and target
    /// arrays), streamed with zero allocation. Used by cache keys: two equal
    /// graphs always fingerprint equally; collisions between distinct graphs
    /// are guarded by a full [`CsrGraph::matches_graph`] witness check.
    pub fn fingerprint(&self) -> u128 {
        let mut h = fingerprint_seed(self.num_vertices());
        for &o in &self.offsets {
            h = fnv1a_128(h, o);
        }
        for &t in &self.targets {
            h = fnv1a_128(h, t);
        }
        h
    }

    /// Labels every vertex with its connected component, numbered `0..k` in
    /// order of smallest vertex — identical numbering to
    /// [`connected_component_labels`](crate::components::connected_component_labels).
    pub fn component_labels(&self) -> Vec<u32> {
        let n = self.num_vertices();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            label[start] = next;
            stack.push(start as u32);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u as usize) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Number of connected components, via the compact `u32` union-find.
    pub fn num_components(&self) -> usize {
        let n = self.num_vertices();
        let mut uf = UnionFind32::new(n);
        for u in 0..n {
            for &v in self.neighbors(u) {
                if (v as usize) > u {
                    uf.union(u as u32, v);
                }
            }
        }
        uf.num_sets()
    }

    /// Spanning-forest size `f_sf = n − f_cc`.
    pub fn spanning_forest_size(&self) -> usize {
        self.num_vertices() - self.num_components()
    }

    /// Vertex sets of the components, ordered by smallest vertex, vertices
    /// ascending within each — identical to
    /// [`components`](crate::components::components) on the same graph.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let labels = self.component_labels();
        let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut comps = vec![Vec::new(); k];
        for (v, &l) in labels.iter().enumerate() {
            comps[l as usize].push(v);
        }
        comps
    }

    /// Re-labels the graph so every connected component occupies a contiguous
    /// vertex range of one shared arena. One O(n + m) pass; afterwards each
    /// component's adjacency is a borrowed slice ([`CsrComponent`]) — no
    /// per-component allocation.
    pub fn partition_components(&self) -> ComponentPartition {
        let n = self.num_vertices();
        let labels = self.component_labels();
        let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);

        // New order: vertices sorted by (component, old id). Since labels are
        // assigned in order of smallest vertex, a counting pass in old-id
        // order lands every component's vertices ascending — the same local
        // numbering `induced_subgraph` would assign.
        let mut comp_sizes = vec![0u32; k];
        for &l in &labels {
            comp_sizes[l as usize] += 1;
        }
        let mut comp_starts = vec![0u32; k + 1];
        for c in 0..k {
            comp_starts[c + 1] = comp_starts[c] + comp_sizes[c];
        }
        let mut order = vec![0u32; n]; // new position -> old vertex
        let mut new_of = vec![0u32; n]; // old vertex -> new position
        let mut cursor = comp_starts[..k].to_vec();
        for (old, &l) in labels.iter().enumerate() {
            let pos = cursor[l as usize];
            cursor[l as usize] += 1;
            order[pos as usize] = old as u32;
            new_of[old] = pos;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0u32);
        for &old in &order {
            // Old rows are sorted by old id; within one component the
            // relabeling is monotone (ascending old ids -> ascending new
            // positions), so the new row stays sorted without a sort.
            for &w in self.neighbors(old as usize) {
                targets.push(new_of[w as usize]);
            }
            offsets.push(targets.len() as u32);
        }

        ComponentPartition {
            arena: CsrGraph { offsets, targets },
            comp_starts,
            order,
        }
    }
}

/// A component-contiguous relabeling of a [`CsrGraph`]: one shared arena plus
/// the ranges and the permutation needed to map results back to original ids.
#[derive(Clone, Debug)]
pub struct ComponentPartition {
    arena: CsrGraph,
    /// `comp_starts[c]..comp_starts[c + 1]` is component `c`'s vertex range.
    comp_starts: Vec<u32>,
    /// New position → original vertex id.
    order: Vec<u32>,
}

impl ComponentPartition {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.comp_starts.len() - 1
    }

    /// The shared relabeled arena.
    pub fn arena(&self) -> &CsrGraph {
        &self.arena
    }

    /// Borrowed view of component `c` — slices of the shared arena, no
    /// allocation.
    pub fn component(&self, c: usize) -> CsrComponent<'_> {
        let start = self.comp_starts[c];
        let end = self.comp_starts[c + 1];
        CsrComponent {
            arena: &self.arena,
            start,
            len: (end - start) as usize,
        }
    }

    /// Original vertex ids of component `c`, ascending (identical to the
    /// corresponding entry of [`components`](crate::components::components)).
    pub fn component_vertices(&self, c: usize) -> &[u32] {
        &self.order[self.comp_starts[c] as usize..self.comp_starts[c + 1] as usize]
    }
}

/// A borrowed, zero-allocation view of one connected component inside a
/// [`ComponentPartition`]. Local vertex ids are `0..len`, ordered by original
/// id, matching what `induced_subgraph` on the component's vertex set would
/// produce.
#[derive(Clone, Copy, Debug)]
pub struct CsrComponent<'a> {
    arena: &'a CsrGraph,
    start: u32,
    len: usize,
}

impl<'a> CsrComponent<'a> {
    /// Number of vertices in the component.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.len
    }

    /// Number of edges in the component.
    pub fn num_edges(&self) -> usize {
        let s = self.arena.offsets[self.start as usize] as usize;
        let e = self.arena.offsets[self.start as usize + self.len] as usize;
        (e - s) / 2
    }

    /// Degree of local vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.arena.degree(self.start as usize + v)
    }

    /// Iterator over the local-id neighbors of local vertex `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + 'a {
        let start = self.start;
        self.arena
            .neighbors(start as usize + v)
            .iter()
            .map(move |&w| (w - start) as usize)
    }

    /// Materializes the component as an adjacency-list [`Graph`] with local
    /// ids, using exact-size sorted row copies (no binary-search insertion).
    /// This is what the polytope solver pieces consume.
    pub fn to_graph(&self) -> Graph {
        let adj: Vec<Vec<usize>> = (0..self.len).map(|v| self.neighbors(v).collect()).collect();
        Graph::from_sorted_adjacency(adj, self.num_edges())
    }
}

/// FNV-1a offset basis folded with the vertex count, so graphs differing only
/// in trailing isolated vertices fingerprint differently even with equal
/// arrays... (they don't have equal arrays — `offsets` length differs — but
/// seeding with n keeps the property obvious).
fn fingerprint_seed(n: usize) -> u128 {
    fnv1a_128(0x6c62_272e_07bb_0142_62b8_2175_6295_c58d, n as u32)
}

#[inline]
fn fnv1a_128(mut h: u128, word: u32) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    for byte in word.to_le_bytes() {
        h ^= byte as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graphs() -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            Graph::new(0),
            Graph::new(5),
            generators::path(9),
            generators::cycle(6),
            generators::star(7),
            generators::complete(5),
            generators::planted_star_forest(6, 2, 3),
            generators::erdos_renyi(40, 0.08, &mut rng),
            generators::erdos_renyi(60, 2.5 / 60.0, &mut rng),
        ]
    }

    #[test]
    fn round_trips_every_sample_graph() {
        for g in sample_graphs() {
            let csr = CsrGraph::from_graph(&g);
            assert_eq!(csr.num_vertices(), g.num_vertices());
            assert_eq!(csr.num_edges(), g.num_edges());
            assert_eq!(csr.max_degree(), g.max_degree());
            for v in g.vertices() {
                assert_eq!(csr.degree(v), g.degree(v));
                let row: Vec<usize> = csr.neighbors(v).iter().map(|&w| w as usize).collect();
                assert_eq!(row, g.neighbors(v));
            }
            assert!(csr.matches_graph(&g));
            assert_eq!(csr.to_graph(), g);
            assert_eq!(csr.edges().collect::<Vec<_>>(), g.edge_vec());
        }
    }

    #[test]
    fn component_structure_matches_adjacency_path() {
        for g in sample_graphs() {
            let csr = CsrGraph::from_graph(&g);
            assert_eq!(
                csr.num_components(),
                components::num_connected_components(&g)
            );
            assert_eq!(
                csr.spanning_forest_size(),
                components::spanning_forest_size(&g)
            );
            assert_eq!(csr.components(), components::components(&g));
            let labels: Vec<usize> = csr.component_labels().iter().map(|&l| l as usize).collect();
            assert_eq!(labels, components::connected_component_labels(&g));
        }
    }

    #[test]
    fn partition_slices_agree_with_induced_subgraphs() {
        for g in sample_graphs() {
            let csr = CsrGraph::from_graph(&g);
            let part = csr.partition_components();
            let comps = components::components(&g);
            assert_eq!(part.num_components(), comps.len());
            for (c, comp) in comps.iter().enumerate() {
                let verts: Vec<usize> = part
                    .component_vertices(c)
                    .iter()
                    .map(|&v| v as usize)
                    .collect();
                assert_eq!(&verts, comp, "component {c} vertex set");
                let view = part.component(c);
                let (expected, map) = crate::subgraph::induced_subgraph(&g, comp);
                assert_eq!(map, *comp);
                assert_eq!(view.num_vertices(), expected.num_vertices());
                assert_eq!(view.num_edges(), expected.num_edges());
                assert_eq!(view.to_graph(), expected, "component {c} adjacency");
            }
        }
    }

    #[test]
    fn fingerprints_separate_structurally_distinct_graphs() {
        let graphs = sample_graphs();
        let prints: Vec<u128> = graphs
            .iter()
            .map(|g| CsrGraph::from_graph(g).fingerprint())
            .collect();
        for i in 0..graphs.len() {
            for j in i + 1..graphs.len() {
                if graphs[i] != graphs[j] {
                    assert_ne!(prints[i], prints[j], "graphs {i} and {j} collided");
                }
            }
        }
        // Deterministic across constructions.
        let g = generators::cycle(12);
        assert_eq!(
            CsrGraph::from_graph(&g).fingerprint(),
            CsrGraph::from_graph(&g).fingerprint()
        );
    }

    #[test]
    fn isolated_vertices_change_the_fingerprint() {
        let a = Graph::from_edges(2, &[(0, 1)]);
        let b = Graph::from_edges(3, &[(0, 1)]);
        assert_ne!(
            CsrGraph::from_graph(&a).fingerprint(),
            CsrGraph::from_graph(&b).fingerprint()
        );
    }

    #[test]
    fn edge_stream_build_matches_from_graph() {
        for g in sample_graphs() {
            let edges: Vec<(u32, u32)> = g
                .edge_vec()
                .iter()
                .map(|&(u, v)| (u as u32, v as u32))
                .collect();
            let streamed = CsrGraph::from_edge_stream(g.num_vertices(), || edges.iter().copied());
            assert_eq!(streamed, CsrGraph::from_graph(&g));
        }
    }

    #[test]
    fn edge_stream_build_sorts_unordered_input() {
        // Reversed endpoints and shuffled order must land in the same arena.
        let edges = [(4u32, 0u32), (2, 1), (0, 1), (3, 4)];
        let csr = CsrGraph::from_edge_stream(5, || edges.iter().copied());
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 4), (3, 4)]);
        assert!(csr.matches_graph(&g));
    }

    #[test]
    fn edge_stream_build_collapses_duplicates() {
        let edges = [(0u32, 1u32), (1, 0), (0, 1), (1, 2)];
        let csr = CsrGraph::from_edge_stream(3, || edges.iter().copied());
        assert_eq!(csr.num_edges(), 2);
        assert!(csr.matches_graph(&Graph::from_edges(3, &[(0, 1), (1, 2)])));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_stream_build_rejects_self_loops() {
        let edges = [(1u32, 1u32)];
        let _ = CsrGraph::from_edge_stream(3, || edges.iter().copied());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_stream_build_rejects_out_of_range_endpoints() {
        let edges = [(0u32, 7u32)];
        let _ = CsrGraph::from_edge_stream(3, || edges.iter().copied());
    }

    #[test]
    fn has_edge_matches_graph() {
        let g = generators::erdos_renyi(25, 0.15, &mut StdRng::seed_from_u64(3));
        let csr = CsrGraph::from_graph(&g);
        for u in 0..25 {
            for v in 0..25 {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v));
            }
        }
        assert!(!csr.has_edge(0, 99));
    }
}
