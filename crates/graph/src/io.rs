//! Plain-text edge-list serialization.
//!
//! The format is the one used by most public graph repositories: an optional
//! header line `# n m`, followed by one `u v` pair per line. Lines starting with
//! `#` (other than the header) and blank lines are ignored.

use crate::graph::Graph;

/// Error produced when parsing an edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be parsed as two vertex indices.
    MalformedLine { line_number: usize, content: String },
    /// An endpoint was out of range for the declared vertex count.
    VertexOutOfRange {
        line_number: usize,
        vertex: usize,
        num_vertices: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MalformedLine {
                line_number,
                content,
            } => {
                write!(f, "line {line_number}: malformed edge `{content}`")
            }
            ParseError::VertexOutOfRange {
                line_number,
                vertex,
                num_vertices,
            } => write!(
                f,
                "line {line_number}: vertex {vertex} out of range for {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph as `# n m` followed by one `u v` line per edge.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} {}\n", g.num_vertices(), g.num_edges()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`] or a plain `u v` list.
///
/// If no `# n m` header is present, the vertex count is inferred as the maximum
/// endpoint plus one.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_vertex = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if declared_n.is_none() {
                let mut parts = rest.split_whitespace();
                if let (Some(n), Some(_m)) = (parts.next(), parts.next()) {
                    if let Ok(n) = n.parse::<usize>() {
                        declared_n = Some(n);
                    }
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(ParseError::MalformedLine {
                    line_number: i + 1,
                    content: line.to_string(),
                })
            }
        };
        let u: usize = u.parse().map_err(|_| ParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        })?;
        let v: usize = v.parse().map_err(|_| ParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        })?;
        if let Some(n) = declared_n {
            for &x in &[u, v] {
                if x >= n {
                    return Err(ParseError::VertexOutOfRange {
                        line_number: i + 1,
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    Ok(Graph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        let g = generators::grid(3, 3);
        let text = to_edge_list(&g);
        let parsed = from_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn round_trip_with_isolated_vertices() {
        let mut g = generators::path(3);
        g.add_vertex();
        g.add_vertex();
        let parsed = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(parsed.num_vertices(), 5);
        assert_eq!(parsed, g);
    }

    #[test]
    fn parse_without_header_infers_vertex_count() {
        let g = from_edge_list("0 1\n2 3\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let g = from_edge_list("# 5 2\n\n# a comment\n0 4\n1 2\n").unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_rejected() {
        let err = from_edge_list("0 1\nnot-an-edge\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::MalformedLine { line_number: 2, .. }
        ));
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let err = from_edge_list("# 3 1\n0 7\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::VertexOutOfRange { vertex: 7, .. }
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = from_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
