//! Plain-text edge-list serialization.
//!
//! The format is the one used by most public graph repositories: an optional
//! header line `# n m`, followed by one `u v` pair per line. Lines starting with
//! `#` (other than the header) and blank lines are ignored.

use crate::csr::CsrGraph;
use crate::graph::Graph;

/// Error produced when parsing an edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be parsed as two vertex indices.
    MalformedLine { line_number: usize, content: String },
    /// An endpoint was out of range for the declared vertex count.
    VertexOutOfRange {
        line_number: usize,
        vertex: usize,
        num_vertices: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MalformedLine {
                line_number,
                content,
            } => {
                write!(f, "line {line_number}: malformed edge `{content}`")
            }
            ParseError::VertexOutOfRange {
                line_number,
                vertex,
                num_vertices,
            } => write!(
                f,
                "line {line_number}: vertex {vertex} out of range for {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph as `# n m` followed by one `u v` line per edge.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} {}\n", g.num_vertices(), g.num_edges()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`] or a plain `u v` list.
///
/// If no `# n m` header is present, the vertex count is inferred as the maximum
/// endpoint plus one.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_vertex = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if declared_n.is_none() {
                let mut parts = rest.split_whitespace();
                if let (Some(n), Some(_m)) = (parts.next(), parts.next()) {
                    if let Ok(n) = n.parse::<usize>() {
                        declared_n = Some(n);
                    }
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(ParseError::MalformedLine {
                    line_number: i + 1,
                    content: line.to_string(),
                })
            }
        };
        let u: usize = u.parse().map_err(|_| ParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        })?;
        let v: usize = v.parse().map_err(|_| ParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        })?;
        if let Some(n) = declared_n {
            for &x in &[u, v] {
                if x >= n {
                    return Err(ParseError::VertexOutOfRange {
                        line_number: i + 1,
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    Ok(Graph::from_edges(n, &edges))
}

/// Streaming counterpart of [`from_edge_list`]: parses the same format
/// directly into a [`CsrGraph`] arena without materializing the adjacency-list
/// [`Graph`] or an intermediate edge vector.
///
/// One validation pass checks every line and determines the vertex count, then
/// [`CsrGraph::from_edge_stream`] re-reads the text for its two counting
/// passes. Peak memory is the arena plus one cursor per vertex, which is what
/// makes 10⁷-scale edge lists loadable.
pub fn from_edge_list_csr(text: &str) -> Result<CsrGraph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut max_vertex = 0usize;
    let mut any_edge = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if declared_n.is_none() {
                let mut parts = rest.split_whitespace();
                if let (Some(n), Some(_m)) = (parts.next(), parts.next()) {
                    if let Ok(n) = n.parse::<usize>() {
                        declared_n = Some(n);
                    }
                }
            }
            continue;
        }
        let (u, v) = parse_edge_line(line).ok_or_else(|| ParseError::MalformedLine {
            line_number: i + 1,
            content: line.to_string(),
        })?;
        if let Some(n) = declared_n {
            for &x in &[u, v] {
                if x >= n {
                    return Err(ParseError::VertexOutOfRange {
                        line_number: i + 1,
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
        }
        max_vertex = max_vertex.max(u).max(v);
        any_edge = true;
    }
    let n = declared_n.unwrap_or(if any_edge { max_vertex + 1 } else { 0 });
    Ok(CsrGraph::from_edge_stream(n, || {
        // Every line was validated above, so the quiet re-parse is total.
        text.lines().filter_map(|raw| {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            parse_edge_line(line).map(|(u, v)| (u as u32, v as u32))
        })
    }))
}

fn parse_edge_line(line: &str) -> Option<(usize, usize)> {
    let mut parts = line.split_whitespace();
    let u: usize = parts.next()?.parse().ok()?;
    let v: usize = parts.next()?.parse().ok()?;
    Some((u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        let g = generators::grid(3, 3);
        let text = to_edge_list(&g);
        let parsed = from_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn round_trip_with_isolated_vertices() {
        let mut g = generators::path(3);
        g.add_vertex();
        g.add_vertex();
        let parsed = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(parsed.num_vertices(), 5);
        assert_eq!(parsed, g);
    }

    #[test]
    fn parse_without_header_infers_vertex_count() {
        let g = from_edge_list("0 1\n2 3\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let g = from_edge_list("# 5 2\n\n# a comment\n0 4\n1 2\n").unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_rejected() {
        let err = from_edge_list("0 1\nnot-an-edge\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::MalformedLine { line_number: 2, .. }
        ));
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let err = from_edge_list("# 3 1\n0 7\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::VertexOutOfRange { vertex: 7, .. }
        ));
    }

    #[test]
    fn csr_parse_agrees_with_graph_parse() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi(60, 0.07, &mut rng);
        let text = to_edge_list(&g);
        let csr = from_edge_list_csr(&text).unwrap();
        assert!(csr.matches_graph(&from_edge_list(&text).unwrap()));
        // Headerless + comments + blanks.
        let csr = from_edge_list_csr("# a note\n\n0 4\n1 2\n").unwrap();
        assert!(csr.matches_graph(&from_edge_list("# a note\n\n0 4\n1 2\n").unwrap()));
        assert_eq!(from_edge_list_csr("").unwrap().num_vertices(), 0);
    }

    #[test]
    fn csr_parse_rejects_malformed_and_out_of_range_lines() {
        assert!(matches!(
            from_edge_list_csr("0 1\nnope\n"),
            Err(ParseError::MalformedLine { line_number: 2, .. })
        ));
        assert!(matches!(
            from_edge_list_csr("# 3 1\n0 7\n"),
            Err(ParseError::VertexOutOfRange { vertex: 7, .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = from_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
