//! Core undirected graph representation.
//!
//! The representation is adjacency lists with sorted neighbor vectors, which keeps
//! `has_edge` at `O(log deg)` and iteration allocation-free. All graphs in this
//! library are simple and undirected, matching the databases of the paper.

/// An undirected, unweighted, simple graph on vertices `0..n`.
///
/// Neighbor lists are kept sorted; there are no self-loops or parallel edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` vertices and the given edges.
    ///
    /// Self-loops and duplicate edges are silently ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds a graph directly from already-sorted, already-symmetric
    /// adjacency rows, skipping per-edge binary-search insertion. Used by the
    /// CSR arena and fast subgraph extraction, which construct rows in sorted
    /// order by design. Debug builds verify the invariants.
    pub(crate) fn from_sorted_adjacency(adj: Vec<Vec<usize>>, num_edges: usize) -> Self {
        let g = Graph { adj, num_edges };
        debug_assert_eq!(g.check_invariants(), Ok(()));
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Returns `true` if the graph has no edges.
    pub fn has_no_edges(&self) -> bool {
        self.num_edges == 0
    }

    /// Adds a new isolated vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed or
    /// `u == v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "vertex out of range"
        );
        if u == v {
            return false;
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u].insert(pos_u, v);
                let pos_v = self.adj[v].binary_search(&u).unwrap_err();
                self.adj[v].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `(u, v)`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() || u == v {
            return false;
        }
        match self.adj[u].binary_search(&v) {
            Ok(pos_u) => {
                self.adj[u].remove(pos_u);
                let pos_v = self.adj[v].binary_search(&u).unwrap();
                self.adj[v].remove(pos_v);
                self.num_edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Returns `true` if the edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        self.adj[u].binary_search(&v).is_ok()
    }

    /// Sorted slice of neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<usize> {
        0..self.adj.len()
    }

    /// Iterator over edges as pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Collects all edges `(u, v)` with `u < v` into a vector.
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges().collect()
    }

    /// Number of edges in the subgraph induced by `set` (i.e. `|E[S]|`).
    pub fn edges_within(&self, set: &[usize]) -> usize {
        let mut member = vec![false; self.num_vertices()];
        for &v in set {
            member[v] = true;
        }
        let mut count = 0;
        for &u in set {
            for &v in &self.adj[u] {
                if v > u && member[v] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of connected components of the graph (`f_cc`).
    pub fn num_connected_components(&self) -> usize {
        crate::components::num_connected_components(self)
    }

    /// Number of edges in any spanning forest of the graph (`f_sf = |V| - f_cc`).
    pub fn spanning_forest_size(&self) -> usize {
        crate::components::spanning_forest_size(self)
    }

    /// Consistency check used by tests and debug assertions: neighbor lists are
    /// sorted, symmetric, loop-free and the edge count matches.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if nbrs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbor list of {u} is not strictly sorted"));
            }
            for &v in nbrs {
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if v >= self.adj.len() {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if self.adj[v].binary_search(&u).is_err() {
                    return Err(format!("edge ({u},{v}) is not symmetric"));
                }
                count += 1;
            }
        }
        if count != 2 * self.num_edges {
            return Err(format!(
                "edge count mismatch: counted {} half-edges, expected {}",
                count,
                2 * self.num_edges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_no_edges());
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(1, 0), "duplicate edge must be rejected");
        assert!(!g.add_edge(2, 2), "self-loop must be rejected");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn remove_edges() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn from_edges_ignores_duplicates_and_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(2, 1), (3, 0), (0, 1)]);
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edges_within_subset() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        assert_eq!(g.edges_within(&[0, 1, 2]), 2);
        assert_eq!(g.edges_within(&[0, 2, 4]), 1);
        assert_eq!(g.edges_within(&[1]), 0);
        assert_eq!(g.edges_within(&[]), 0);
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = Graph::new(2);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        assert!(g.add_edge(v, 0));
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    #[should_panic]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
