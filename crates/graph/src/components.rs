//! Connected components and the two central graph statistics of the paper:
//! `f_cc(G)` (number of connected components) and `f_sf(G)` (size of a spanning
//! forest), related by `f_cc(G) = |V(G)| - f_sf(G)` (Equation (1) of the paper).

use crate::graph::Graph;
use crate::unionfind::UnionFind;

/// Labels every vertex with the index of its connected component.
///
/// Components are numbered `0..k` in order of their smallest vertex.
pub fn connected_component_labels(g: &Graph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components, `f_cc(G)`.
///
/// The empty graph has 0 components.
pub fn num_connected_components(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.num_sets()
}

/// Number of edges in any spanning forest, `f_sf(G) = |V(G)| - f_cc(G)`.
pub fn spanning_forest_size(g: &Graph) -> usize {
    g.num_vertices() - num_connected_components(g)
}

/// Sizes of the connected components, ordered by their smallest vertex.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let labels = connected_component_labels(g);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    sizes
}

/// Vertex sets of the connected components, ordered by their smallest vertex.
pub fn components(g: &Graph) -> Vec<Vec<usize>> {
    let labels = connected_component_labels(g);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut comps = vec![Vec::new(); k];
    for (v, &l) in labels.iter().enumerate() {
        comps[l].push(v);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_zero_components() {
        let g = Graph::new(0);
        assert_eq!(num_connected_components(&g), 0);
        assert_eq!(spanning_forest_size(&g), 0);
        assert!(components(&g).is_empty());
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::new(7);
        assert_eq!(num_connected_components(&g), 7);
        assert_eq!(spanning_forest_size(&g), 0);
        assert_eq!(component_sizes(&g), vec![1; 7]);
    }

    #[test]
    fn path_is_connected() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(num_connected_components(&g), 1);
        assert_eq!(spanning_forest_size(&g), 4);
    }

    #[test]
    fn two_triangles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(num_connected_components(&g), 2);
        assert_eq!(spanning_forest_size(&g), 4);
        assert_eq!(component_sizes(&g), vec![3, 3]);
        let comps = components(&g);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
    }

    #[test]
    fn labels_agree_with_components() {
        let g = Graph::from_edges(6, &[(0, 3), (1, 4)]);
        let labels = connected_component_labels(&g);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[5]);
        assert_eq!(num_connected_components(&g), 4);
    }

    #[test]
    fn identity_fcc_plus_fsf_equals_n() {
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (5, 7)]);
        assert_eq!(
            num_connected_components(&g) + spanning_forest_size(&g),
            g.num_vertices()
        );
    }

    #[test]
    fn adding_a_dominating_vertex_makes_graph_connected() {
        // The obstacle discussed in the introduction: every graph is a node-neighbor
        // of a connected graph.
        let mut g = Graph::new(6);
        assert_eq!(num_connected_components(&g), 6);
        let hub = g.add_vertex();
        for v in 0..6 {
            g.add_edge(hub, v);
        }
        assert_eq!(num_connected_components(&g), 1);
    }
}
