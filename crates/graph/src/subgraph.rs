//! Induced subgraphs and node distance.
//!
//! Node-differential privacy is defined over node-neighboring graphs
//! (Definition 1.1): `G` and `G'` are neighbors if one is obtained from the other
//! by removing a vertex and its adjacent edges. The node distance between a graph
//! and an induced subgraph is simply the number of removed vertices, which is what
//! the paper's Lipschitz extensions and the down-sensitivity use.

use crate::graph::Graph;

/// Induced subgraph on the vertex set `keep`.
///
/// Returns the new graph (with vertices renumbered `0..keep.len()` in the order of
/// `keep`) and the mapping from new indices to original indices.
///
/// # Panics
/// Panics if `keep` contains duplicates or out-of-range vertices.
pub fn induced_subgraph(g: &Graph, keep: &[usize]) -> (Graph, Vec<usize>) {
    let n = g.num_vertices();
    let mut new_index = vec![usize::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        assert!(old < n, "vertex {old} out of range");
        assert!(
            new_index[old] == usize::MAX,
            "duplicate vertex {old} in keep set"
        );
        new_index[old] = new;
    }
    // Build each adjacency row in one pass with at most one allocation,
    // instead of binary-search-inserting every edge twice (which made
    // repeated per-component extraction quadratic in row length and
    // allocation-heavy at n = 10^5). When `keep` is ascending — the
    // per-component case — the relabeling is monotone, so rows come out
    // sorted for free; otherwise one sort per row restores the invariant.
    let ascending = keep.windows(2).all(|w| w[0] < w[1]);
    let mut adj: Vec<Vec<usize>> = Vec::with_capacity(keep.len());
    let mut half_edges = 0usize;
    for &old_u in keep {
        let mut row = Vec::with_capacity(g.degree(old_u));
        for &old_v in g.neighbors(old_u) {
            let new_v = new_index[old_v];
            if new_v != usize::MAX {
                row.push(new_v);
            }
        }
        if !ascending {
            row.sort_unstable();
        }
        half_edges += row.len();
        adj.push(row);
    }
    (
        Graph::from_sorted_adjacency(adj, half_edges / 2),
        keep.to_vec(),
    )
}

/// Induced subgraph obtained by removing vertex `v` (a node-neighbor of `g`).
///
/// Returns the new graph and the mapping from new indices to original indices.
pub fn remove_vertex(g: &Graph, v: usize) -> (Graph, Vec<usize>) {
    let keep: Vec<usize> = (0..g.num_vertices()).filter(|&u| u != v).collect();
    induced_subgraph(g, &keep)
}

/// Node distance between `g` and the induced subgraph on `keep ⊆ V(g)`,
/// i.e. the number of removed vertices.
pub fn node_distance_to_induced(g: &Graph, keep: &[usize]) -> usize {
    g.num_vertices() - keep.len()
}

/// Enumerates all induced subgraphs of `g` as vertex subsets (bitmask order).
///
/// Intended for brute-force validation on small graphs only.
///
/// # Panics
/// Panics if the graph has more than 20 vertices.
pub fn all_vertex_subsets(g: &Graph) -> impl Iterator<Item = Vec<usize>> + '_ {
    let n = g.num_vertices();
    assert!(n <= 20, "subset enumeration is limited to 20 vertices");
    (0u32..(1u32 << n)).map(move |mask| (0..n).filter(|&v| mask >> v & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (h, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
        assert!(!h.has_edge(0, 2));
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_respects_keep_order() {
        let g = Graph::from_edges(4, &[(0, 3)]);
        let (h, map) = induced_subgraph(&g, &[3, 0]);
        assert!(h.has_edge(0, 1));
        assert_eq!(map, vec![3, 0]);
    }

    #[test]
    fn remove_vertex_drops_adjacent_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 3)]);
        let (h, map) = remove_vertex(&g, 0);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(map, vec![1, 2, 3]);
        // vertices 2 and 3 map to new indices 1 and 2
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn node_distance_counts_removed_vertices() {
        let g = Graph::new(6);
        assert_eq!(node_distance_to_induced(&g, &[0, 1, 2]), 3);
        assert_eq!(node_distance_to_induced(&g, &[0, 1, 2, 3, 4, 5]), 0);
    }

    #[test]
    fn all_subsets_count() {
        let g = Graph::new(4);
        assert_eq!(all_vertex_subsets(&g).count(), 16);
    }

    #[test]
    #[should_panic]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::new(3);
        induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn empty_keep_set_gives_empty_graph() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let (h, _) = induced_subgraph(&g, &[]);
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
    }
}
