//! Monotonic graph-snapshot versions.
//!
//! A mutating graph (see the `ccdp_stream` crate) publishes a sequence of
//! immutable snapshots; [`GraphVersion`] is the ordinal that names one of
//! them. Versions are totally ordered and only ever move forward — a
//! registry entry, cache key or release record stamped with a version can
//! therefore never be confused with an earlier or later state of the same
//! graph.

/// Monotonically increasing version of one graph's snapshot sequence.
///
/// Plain value type: `Copy`, ordered, hashable, starts at
/// [`GraphVersion::INITIAL`] and advances with [`GraphVersion::next`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphVersion(u64);

impl GraphVersion {
    /// The version of a graph's first published snapshot.
    pub const INITIAL: GraphVersion = GraphVersion(0);

    /// A version with the given ordinal.
    pub fn new(version: u64) -> Self {
        GraphVersion(version)
    }

    /// The ordinal of this version.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The version immediately after this one.
    ///
    /// # Panics
    /// Panics on overflow of the `u64` ordinal (2^64 snapshots).
    pub fn next(self) -> Self {
        GraphVersion(self.0.checked_add(1).expect("graph version overflow"))
    }
}

impl std::fmt::Display for GraphVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for GraphVersion {
    fn from(v: u64) -> Self {
        GraphVersion(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_ordered_and_advance() {
        let v0 = GraphVersion::INITIAL;
        let v1 = v0.next();
        assert!(v0 < v1);
        assert_eq!(v1.value(), 1);
        assert_eq!(v1, GraphVersion::new(1));
        assert_eq!(GraphVersion::from(7).value(), 7);
        assert_eq!(v1.to_string(), "v1");
        assert_eq!(GraphVersion::default(), GraphVersion::INITIAL);
    }
}
