//! Disjoint-set (union-find) data structure with path compression and union by rank.

/// Union-find over elements `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently maintained.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Grows the universe to `n` elements, adding the new ones as singleton
    /// sets. A no-op when `n` is not larger than the current length.
    pub fn grow(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len());
            self.rank.push(0);
            self.num_sets += 1;
        }
    }

    /// Representative of the set containing `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`. Returns `true` if they were distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }
}

/// Compact union-find over `u32` elements — half the memory traffic of
/// [`UnionFind`] on the CSR hot path (parent array is `u32`, rank stays `u8`).
#[derive(Clone, Debug)]
pub struct UnionFind32 {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind32 {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    /// Panics if `n` exceeds `u32` indexing.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "UnionFind32 universe exceeds u32");
        UnionFind32 {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently maintained.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x` (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`. Returns `true` if they were distinct.
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx as usize] >= self.rank[ry as usize] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn connected(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(2, 3));
        uf.union(2, 3);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn grow_adds_singletons() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        uf.grow(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 4));
        uf.union(2, 4);
        assert_eq!(uf.num_sets(), 3);
        // Shrinking requests are no-ops.
        uf.grow(3);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn chain_path_compression() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn compact_variant_matches_wide_variant() {
        let mut wide = UnionFind::new(64);
        let mut narrow = UnionFind32::new(64);
        assert!(!narrow.is_empty());
        assert_eq!(narrow.len(), 64);
        // Deterministic pseudo-random union sequence.
        let mut x = 0x243f_6a88u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as usize % 64;
            let b = (x >> 12) as usize % 64;
            assert_eq!(wide.union(a, b), narrow.union(a as u32, b as u32));
            assert_eq!(wide.num_sets(), narrow.num_sets());
        }
        for a in 0..64 {
            for b in 0..64 {
                assert_eq!(wide.connected(a, b), narrow.connected(a as u32, b as u32));
            }
        }
    }
}
